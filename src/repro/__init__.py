"""Distributed Bayesian Probabilistic Matrix Factorization — reproduction.

A pure-Python reproduction of *"Distributed Bayesian Probabilistic Matrix
Factorization"* (Vander Aa, Chakroun, Haber — IEEE CLUSTER 2016): the BPMF
Gibbs sampler, its shared-memory parallelization (work stealing + hybrid
per-item kernels) and its distributed, asynchronously-communicating MPI
formulation, together with the simulated multicore and cluster substrates
needed to regenerate every figure of the paper's evaluation on a single
offline machine.

Quickstart
----------
>>> from repro import BPMFConfig, GibbsSampler, make_low_rank_dataset
>>> data = make_low_rank_dataset(n_users=100, n_movies=80, density=0.2, seed=0)
>>> result = GibbsSampler(BPMFConfig(num_latent=8, burn_in=5, n_samples=10)).run(
...     data.split.train, data.split, seed=0)
>>> round(result.final_rmse, 2) > 0
True

Package map
-----------
``repro.core``          the BPMF Gibbs sampler and its update kernels
``repro.sparse``        sparse rating-matrix substrate
``repro.datasets``      synthetic ChEMBL-like / MovieLens-like workloads
``repro.baselines``     ALS and SGD matrix factorization
``repro.parallel``      simulated multicore machine + schedulers
``repro.multicore``     shared-memory parallel BPMF (Figure 3)
``repro.mpi``           simulated MPI world, network model, tracing
``repro.distributed``   distributed BPMF and the strong-scaling model (Figures 4-5)
``repro.serving``       posterior snapshots, exact resume, online serving
``repro.bench``         one driver per figure/claim of the paper
"""

from repro.core import (
    BPMF,
    BPMFConfig,
    BPMFResult,
    GibbsSampler,
    HybridUpdatePolicy,
    MacauGibbsSampler,
    SamplerOptions,
    SideInfo,
    UpdateMethod,
    recommend_for_user,
    run_chains,
)
from repro.baselines import ALSConfig, SGDConfig, run_als, run_sgd
from repro.datasets import (
    make_chembl_like,
    make_low_rank_dataset,
    make_movielens_like,
    make_scaling_workload,
    load_dataset,
    available_datasets,
)
from repro.distributed import (
    DistributedGibbsSampler,
    DistributedOptions,
    strong_scaling_study,
)
from repro.multicore import MulticoreGibbsSampler, MulticoreOptions, multicore_thread_sweep
from repro.serving import (
    CheckpointConfig,
    PredictionService,
    Snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_from_result,
)
from repro.sparse import RatingMatrix, train_test_split

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BPMF",
    "BPMFConfig",
    "BPMFResult",
    "GibbsSampler",
    "SamplerOptions",
    "HybridUpdatePolicy",
    "UpdateMethod",
    "MacauGibbsSampler",
    "SideInfo",
    "recommend_for_user",
    "run_chains",
    "ALSConfig",
    "SGDConfig",
    "run_als",
    "run_sgd",
    "make_low_rank_dataset",
    "make_chembl_like",
    "make_movielens_like",
    "make_scaling_workload",
    "load_dataset",
    "available_datasets",
    "DistributedGibbsSampler",
    "DistributedOptions",
    "strong_scaling_study",
    "MulticoreGibbsSampler",
    "MulticoreOptions",
    "multicore_thread_sweep",
    "CheckpointConfig",
    "PredictionService",
    "Snapshot",
    "load_snapshot",
    "save_snapshot",
    "snapshot_from_result",
    "RatingMatrix",
    "train_test_split",
]
