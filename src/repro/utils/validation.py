"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_shape",
    "check_in",
]


class ValidationError(ValueError):
    """Raised when a public-API argument fails validation."""


def check_positive(name: str, value) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value) -> None:
    """Require ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> None:
    """Require an exact array shape; ``-1`` in ``shape`` matches any extent."""
    actual = np.asarray(array).shape
    if len(actual) != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got shape {actual}"
        )
    for want, got in zip(shape, actual):
        if want != -1 and want != got:
            raise ValidationError(f"{name} must have shape {shape}, got {actual}")


def check_in(name: str, value, allowed: Iterable) -> None:
    """Require membership in an allowed set (reported sorted for stable messages)."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValidationError(
            f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}"
        )
