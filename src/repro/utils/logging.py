"""Minimal logging facade.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace so applications embedding it keep full control of
handlers; ``set_verbosity`` is a convenience for scripts and examples.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger in the library namespace (``repro`` or ``repro.<name>``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int | str = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stream handler to the library root logger at ``level``.

    Safe to call repeatedly; only one handler is installed.
    """
    global _configured
    logger = logging.getLogger(_ROOT_NAME)
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
        _configured = True
    return logger
