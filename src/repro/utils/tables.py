"""Plain-text table rendering for the benchmark harness.

The paper's figures are line plots; the reproduction prints the underlying
series as aligned text tables (one row per x-value, one column per series)
so the "who wins, by what factor, where is the crossover" shape can be read
directly from benchmark output without plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

__all__ = ["format_float", "render_table", "Table"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly: fixed-point for mid magnitudes, scientific otherwise."""
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10 ** (digits + 2) or magnitude < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format_float(cell))
            else:
                cells.append(str(cell))
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Table:
    """A small mutable table builder used by the experiment drivers."""

    headers: List[str]
    title: str | None = None
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))
        return self

    def column(self, name: str) -> List[object]:
        """Return one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
