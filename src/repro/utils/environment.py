"""Machine metadata stamped into recorded benchmark/smoke JSON documents.

Recorded timings are only interpretable next to the machine that produced
them (the committed baselines come from a single-core container); every
``BENCH_*.json``-writing surface embeds this one dictionary.
"""

from __future__ import annotations

import os
import platform
from typing import Dict

import numpy as np

__all__ = ["machine_environment"]


def machine_environment() -> Dict[str, object]:
    """CPU count, platform, Python/numpy versions, mp start method."""
    # Imported lazily: utils must not depend on core at import time.
    from repro.core.shared_engine import default_start_method

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mp_start_method": default_start_method(),
    }
