"""Shared utilities for the BPMF reproduction.

This package collects small, dependency-free helpers used across the
library: deterministic random-number handling, wall-clock timing,
lightweight logging, plain-text table rendering and argument validation.
"""

from repro.utils.rng import RngRegistry, as_generator, spawn_generators
from repro.utils.timing import Stopwatch, Timer, time_call
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.tables import Table, format_float, render_table
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_shape,
    check_in,
    ValidationError,
)

__all__ = [
    "RngRegistry",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "Timer",
    "time_call",
    "get_logger",
    "set_verbosity",
    "Table",
    "format_float",
    "render_table",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_shape",
    "check_in",
    "ValidationError",
]
