"""Wall-clock timing helpers used by the calibration and benchmark code."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = ["Stopwatch", "Timer", "time_call"]


class Stopwatch:
    """A resettable stopwatch measuring elapsed wall-clock seconds.

    The stopwatch accumulates time across multiple ``start``/``stop`` pairs,
    which is how the tracing code accounts compute time that is interleaved
    with message progression.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including the running segment)."""
        extra = 0.0 if self._start is None else time.perf_counter() - self._start
        return self._elapsed + extra

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class Timer:
    """Named accumulating timers, e.g. ``timer.add("compute", 0.8)``.

    Used by the samplers to produce the compute / communicate / both
    breakdown of Figure 5 and by the benchmark harness for per-phase
    reporting.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for {name!r}: {seconds}")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def measure(self, name: str):
        """Context manager measuring a block and adding it under ``name``."""
        timer = self

        class _Ctx:
            def __enter__(self_inner):
                self_inner._sw = Stopwatch().start()
                return self_inner

            def __exit__(self_inner, *exc):
                timer.add(name, self_inner._sw.stop())

        return _Ctx()

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        count = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / count if count else 0.0

    def merge(self, other: "Timer") -> "Timer":
        """Return a new Timer with the sums of both operands."""
        merged = Timer(dict(self.totals), dict(self.counts))
        for name, seconds in other.totals.items():
            merged.totals[name] = merged.totals.get(name, 0.0) + seconds
        for name, count in other.counts.items():
            merged.counts[name] = merged.counts.get(name, 0) + count
        return merged

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)


def time_call(func: Callable, *args, repeats: int = 1, **kwargs) -> Tuple[float, object]:
    """Call ``func`` ``repeats`` times and return ``(best_seconds, last_result)``.

    The *minimum* over repeats is returned because it is the least noisy
    estimator of the cost of a deterministic kernel (the same convention
    ``timeit`` uses); the calibration code in :mod:`repro.parallel.cost_model`
    relies on this.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result
