"""Deterministic random-number management.

BPMF is a Monte-Carlo method: every experiment in the paper depends on a
stream of Gaussian / Wishart draws.  For reproducibility — and so that the
sequential, multicore and distributed samplers can be compared on exactly
the same random streams — every component of this library receives its
randomness through :class:`numpy.random.Generator` objects produced here.

Two idioms are supported:

* ``as_generator(seed_or_generator)`` — normalise an ``int`` seed, ``None``
  or an existing generator into a :class:`numpy.random.Generator`.
* ``spawn_generators(root, n)`` — derive ``n`` statistically independent
  child generators from a root generator, used to give each simulated
  thread or MPI rank its own stream (mirroring what the C++ implementation
  does with one RNG per worker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "as_generator", "spawn_generators", "RngRegistry"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(root: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent generators from a root seed/generator.

    The children are produced with ``SeedSequence.spawn`` semantics so that
    streams do not overlap.  When ``root`` is already a generator its bit
    generator's seed sequence is spawned; this keeps the parent usable.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(root, np.random.Generator):
        seed_seq = root.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seed_seq is None:  # pragma: no cover - exotic bit generators
            seed_seq = np.random.SeedSequence(root.integers(0, 2**63 - 1))
    elif isinstance(root, np.random.SeedSequence):
        seed_seq = root
    else:
        seed_seq = np.random.SeedSequence(root)
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]


@dataclass
class RngRegistry:
    """Named random streams with lazy, deterministic creation.

    The registry hands out one generator per *name* (e.g. ``"hyper_users"``,
    ``"rank_3"``), derived deterministically from the registry seed, so that
    adding a new consumer of randomness does not perturb the streams of
    existing consumers.  This mirrors the per-worker RNG design of the
    reference C++ implementation.
    """

    seed: int = 0
    _streams: Dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, name: str) -> np.random.Generator:
        """Return the generator registered under ``name``, creating it if new."""
        if name not in self._streams:
            # Hash the name into a stable 64-bit value so stream identity
            # depends only on (seed, name), never on creation order.
            digest = np.uint64(0xCBF29CE484222325)
            for ch in name.encode("utf8"):
                digest = np.uint64((int(digest) ^ ch) * 0x100000001B3 % (2**64))
            seq = np.random.SeedSequence([self.seed, int(digest)])
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def names(self) -> Iterable[str]:
        """Names of all streams created so far."""
        return tuple(self._streams)

    def reset(self, name: Optional[str] = None) -> None:
        """Forget one stream (or all of them) so it restarts from its seed."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)
