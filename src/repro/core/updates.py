"""Per-item conditional updates — the inner loops of Algorithm 1.

Updating one user ``u`` (symmetrically one movie) requires sampling from
its conditional Gaussian

.. math::

    U_u \\mid \\cdot \\sim \\mathcal{N}\\big(\\Lambda_*^{-1} m_*, \\Lambda_*^{-1}\\big),
    \\quad
    \\Lambda_* = \\Lambda_U + \\alpha \\sum_{j \\in R(u)} V_j V_j^\\top,
    \\quad
    m_* = \\Lambda_U \\mu_U + \\alpha \\sum_{j \\in R(u)} R_{uj} V_j .

The paper (Section III, Figure 2) considers three algorithms for this
``K x K`` problem and picks between them based on the item's rating count:

* **rank-one update** — keep a Cholesky factor of the precision and apply
  one rank-1 Cholesky update per rating; cheapest for items with only a
  handful of ratings because it never forms the Gram matrix;
* **serial Cholesky** — form the Gram matrix with one BLAS ``syrk``-style
  product and factorise once; wins for moderately rated items;
* **parallel Cholesky** — split the Gram accumulation into blocks that can
  be computed by several workers, then factorise; wins for the very heavy
  items (>= ~1000 ratings), and — crucially for load balance — turns one
  huge task into several smaller ones.

All three produce samples from exactly the same distribution; tests verify
they agree to floating-point accuracy when fed the same Gaussian noise.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_solve, solve_triangular

from repro.core.priors import GaussianPrior
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "UpdateMethod",
    "HybridUpdatePolicy",
    "cholesky_rank_one_update",
    "conditional_distribution",
    "sample_item_rank_one",
    "sample_item_serial_cholesky",
    "sample_item_parallel_cholesky",
    "sample_item",
]


class UpdateMethod(enum.Enum):
    """The three item-update algorithms compared in Figure 2."""

    RANK_ONE = "rank_one"
    SERIAL_CHOLESKY = "serial_cholesky"
    PARALLEL_CHOLESKY = "parallel_cholesky"


# ---------------------------------------------------------------------------
# low-level linear algebra
# ---------------------------------------------------------------------------

def cholesky_rank_one_update(chol: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Return the Cholesky factor of ``L L^T + v v^T`` given lower ``L``.

    Implements the classic Givens-rotation based update in O(K^2); this is
    the building block of the rank-one item update method.
    """
    chol = np.array(chol, dtype=np.float64, copy=True)
    vector = np.array(vector, dtype=np.float64, copy=True)
    k = vector.shape[0]
    if chol.shape != (k, k):
        raise ValidationError(f"chol must be ({k}, {k}), got {chol.shape}")
    for i in range(k):
        diag = chol[i, i]
        r = math.hypot(diag, vector[i])
        c = r / diag
        s = vector[i] / diag
        chol[i, i] = r
        if i + 1 < k:
            chol[i + 1:, i] = (chol[i + 1:, i] + s * vector[i + 1:]) / c
            vector[i + 1:] = c * vector[i + 1:] - s * chol[i + 1:, i]
    return chol


def _sample_from_chol_precision(mean: np.ndarray, chol_precision: np.ndarray,
                                noise: np.ndarray) -> np.ndarray:
    """Sample ``N(mean, (L L^T)^-1)`` given lower Cholesky ``L`` and z ~ N(0, I)."""
    return mean + solve_triangular(chol_precision.T, noise, lower=False)


def conditional_distribution(
    neighbour_factors: np.ndarray,
    ratings: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and precision Cholesky factor of one item's conditional Gaussian.

    Parameters
    ----------
    neighbour_factors:
        ``(n, K)`` factor rows of the rating partners (movies the user rated
        or users that rated the movie).
    ratings:
        The ``n`` observed rating values.
    prior:
        Current Gaussian prior ``(mu, Lambda)`` for this entity class.
    alpha:
        Observation precision.

    Returns
    -------
    ``(mean, chol_precision)`` with ``chol_precision`` lower triangular.
    """
    check_positive("alpha", alpha)
    neighbour_factors = np.asarray(neighbour_factors, dtype=np.float64)
    ratings = np.asarray(ratings, dtype=np.float64)
    if neighbour_factors.ndim != 2:
        raise ValidationError("neighbour_factors must be 2-D (n x K)")
    if ratings.shape[0] != neighbour_factors.shape[0]:
        raise ValidationError("ratings and neighbour_factors disagree on n")

    precision = prior.precision + alpha * (neighbour_factors.T @ neighbour_factors)
    rhs = prior.precision @ prior.mean + alpha * (neighbour_factors.T @ ratings)
    chol = np.linalg.cholesky(precision)
    mean = cho_solve((chol, True), rhs)
    return mean, chol


# ---------------------------------------------------------------------------
# the three update kernels
# ---------------------------------------------------------------------------

def sample_item_rank_one(
    neighbour_factors: np.ndarray,
    ratings: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    rng: SeedLike = None,
    noise: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample one item's factor using incremental rank-one Cholesky updates.

    The precision Cholesky factor is built by starting from ``chol(Lambda)``
    and applying one rank-1 update per rating with ``sqrt(alpha) * V_j``.
    Cost is ``O(n K^2)`` with a small constant and no Gram matrix, which is
    why it wins for low-degree items in Figure 2.
    """
    neighbour_factors = np.asarray(neighbour_factors, dtype=np.float64)
    ratings = np.asarray(ratings, dtype=np.float64)
    rng = as_generator(rng)
    k = prior.num_latent
    chol = np.linalg.cholesky(prior.precision)
    sqrt_alpha = math.sqrt(alpha)
    for row in neighbour_factors:
        chol = cholesky_rank_one_update(chol, sqrt_alpha * row)
    rhs = prior.precision @ prior.mean + alpha * (neighbour_factors.T @ ratings) \
        if neighbour_factors.size else prior.precision @ prior.mean
    mean = cho_solve((chol, True), rhs)
    if noise is None:
        noise = rng.standard_normal(k)
    return _sample_from_chol_precision(mean, chol, noise)


def sample_item_serial_cholesky(
    neighbour_factors: np.ndarray,
    ratings: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    rng: SeedLike = None,
    noise: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample one item's factor with a single Gram product + Cholesky solve."""
    rng = as_generator(rng)
    mean, chol = conditional_distribution(neighbour_factors, ratings, prior, alpha)
    if noise is None:
        noise = rng.standard_normal(prior.num_latent)
    return _sample_from_chol_precision(mean, chol, noise)


def sample_item_parallel_cholesky(
    neighbour_factors: np.ndarray,
    ratings: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    rng: SeedLike = None,
    noise: Optional[np.ndarray] = None,
    n_blocks: int = 4,
) -> np.ndarray:
    """Sample one item's factor with a block-decomposed Gram accumulation.

    The neighbour matrix is split into ``n_blocks`` row blocks whose partial
    Gram matrices / partial right-hand sides can be computed independently
    (by different cores in the C++ implementation; by the simulated machine
    in :mod:`repro.parallel`), then reduced and factorised.  Numerically the
    result is identical to the serial Cholesky method up to floating-point
    summation order.
    """
    check_positive("n_blocks", n_blocks)
    neighbour_factors = np.asarray(neighbour_factors, dtype=np.float64)
    ratings = np.asarray(ratings, dtype=np.float64)
    rng = as_generator(rng)
    k = prior.num_latent

    n = neighbour_factors.shape[0]
    precision = prior.precision.copy()
    rhs = prior.precision @ prior.mean
    if n:
        blocks = np.array_split(np.arange(n), min(n_blocks, n))
        for block in blocks:
            sub = neighbour_factors[block]
            precision += alpha * (sub.T @ sub)
            rhs += alpha * (sub.T @ ratings[block])
    chol = np.linalg.cholesky(precision)
    mean = cho_solve((chol, True), rhs)
    if noise is None:
        noise = rng.standard_normal(k)
    return _sample_from_chol_precision(mean, chol, noise)


# ---------------------------------------------------------------------------
# hybrid policy and dispatch
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HybridUpdatePolicy:
    """The paper's load-balancing rule for choosing an update algorithm.

    *"To ensure a good load balance, we use a cheaper but serial algorithm
    for items with less than 1000 ratings.  For items with more ratings, we
    use a parallel algorithm containing a full Cholesky decomposition."*

    Parameters
    ----------
    parallel_threshold:
        Rating count at or above which the parallel Cholesky is used
        (1000 in the paper).
    rank_one_threshold:
        Rating count below which the rank-one update is cheaper than
        forming the Gram matrix; between the two thresholds the serial
        Cholesky is used.
    block_grain:
        Target number of ratings per sub-task when a heavy item is split
        for parallel execution.
    """

    parallel_threshold: int = 1000
    rank_one_threshold: int = 32
    block_grain: int = 512

    def __post_init__(self):
        check_positive("parallel_threshold", self.parallel_threshold)
        check_positive("rank_one_threshold", self.rank_one_threshold)
        check_positive("block_grain", self.block_grain)
        if self.rank_one_threshold > self.parallel_threshold:
            raise ValidationError(
                "rank_one_threshold must not exceed parallel_threshold")

    def choose(self, n_ratings: int) -> UpdateMethod:
        """Pick the update algorithm for an item with ``n_ratings`` ratings."""
        if n_ratings >= self.parallel_threshold:
            return UpdateMethod.PARALLEL_CHOLESKY
        if n_ratings < self.rank_one_threshold:
            return UpdateMethod.RANK_ONE
        return UpdateMethod.SERIAL_CHOLESKY

    def n_subtasks(self, n_ratings: int) -> int:
        """Number of parallel sub-tasks a heavy item is split into."""
        if n_ratings < self.parallel_threshold:
            return 1
        return max(2, math.ceil(n_ratings / self.block_grain))


def sample_item(
    neighbour_factors: np.ndarray,
    ratings: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    rng: SeedLike = None,
    noise: Optional[np.ndarray] = None,
    method: UpdateMethod | None = None,
    policy: HybridUpdatePolicy | None = None,
) -> np.ndarray:
    """Sample one item's factor, dispatching on ``method`` or the hybrid policy.

    When neither ``method`` nor ``policy`` is given the hybrid policy with
    paper defaults is used.
    """
    n_ratings = int(np.asarray(ratings).shape[0])
    if method is None:
        policy = policy or HybridUpdatePolicy()
        method = policy.choose(n_ratings)
    if method is UpdateMethod.RANK_ONE:
        return sample_item_rank_one(neighbour_factors, ratings, prior, alpha,
                                    rng=rng, noise=noise)
    if method is UpdateMethod.SERIAL_CHOLESKY:
        return sample_item_serial_cholesky(neighbour_factors, ratings, prior,
                                           alpha, rng=rng, noise=noise)
    if method is UpdateMethod.PARALLEL_CHOLESKY:
        n_blocks = (policy or HybridUpdatePolicy()).n_subtasks(n_ratings)
        return sample_item_parallel_cholesky(neighbour_factors, ratings, prior,
                                             alpha, rng=rng, noise=noise,
                                             n_blocks=n_blocks)
    raise ValidationError(f"unknown update method: {method!r}")
