"""Side-information extension (Macau-style linear feature links).

The paper highlights that BPMF "easily incorporates confidence intervals
and side-information [5], [6]" — reference [6] being Macau (Simm et al.),
the follow-up model from the same group in which entity features (compound
fingerprints, movie genres, …) shift the prior mean of each entity's latent
factor through a learned link matrix:

.. math::

    U_i \\sim \\mathcal{N}(\\mu_U + B_U^\\top x_i, \\Lambda_U^{-1}),
    \\qquad B_U \\in \\mathbb{R}^{F \\times K}

with a Gaussian prior on the link matrix.  This module implements that
extension on top of the existing Gibbs machinery:

* :func:`sample_link_matrix` — the matrix-normal conditional draw of the
  link matrix given the factors, the prior mean/precision and the features;
* :class:`MacauGibbsSampler` — a drop-in sampler that accepts optional
  per-entity feature matrices and falls back to plain BPMF behaviour for
  entity classes without features.

The practical pay-off reproduced in the tests: items with *no ratings at
all* (cold start) are predicted from their features instead of from the
global prior alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_solve, solve_triangular

from repro.core.gibbs import BPMFResult, GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.state import BPMFState
from repro.core.updates import sample_item
from repro.core.wishart import sample_hyperparameters
from repro.sparse.csr import RatingMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = ["SideInfo", "sample_link_matrix", "MacauGibbsSampler"]


@dataclass
class SideInfo:
    """Feature matrix for one entity class plus the link-matrix prior strength.

    Parameters
    ----------
    features:
        ``(n_entities, n_features)`` array; rows are per-entity feature
        vectors (standardising them to zero mean / unit variance is the
        caller's responsibility and usually a good idea).
    lambda_link:
        Precision of the zero-mean Gaussian prior on the link matrix
        entries (larger values shrink the feature effect towards zero).
    """

    features: np.ndarray
    lambda_link: float = 5.0

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValidationError("side-information features must be 2-D")
        check_positive("lambda_link", self.lambda_link)

    @property
    def n_entities(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])


def sample_link_matrix(
    factors: np.ndarray,
    prior_mean: np.ndarray,
    precision: np.ndarray,
    side: SideInfo,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw the link matrix ``B`` from its matrix-normal conditional.

    With centred factors ``Z = U - mu`` and features ``X``, the model is
    ``Z = X B + E`` with row noise ``N(0, Lambda^{-1})`` and prior
    ``B_{fk} ~ N(0, lambda_link^{-1})``.  The conditional is

    ``B | Z ~ MatrixNormal(M, (X^T X + lambda_link I)^{-1}, Lambda^{-1})``
    with ``M = (X^T X + lambda_link I)^{-1} X^T Z``.
    """
    rng = as_generator(rng)
    factors = np.asarray(factors, dtype=np.float64)
    n, k = factors.shape
    if side.n_entities != n:
        raise ValidationError(
            f"features have {side.n_entities} rows but there are {n} factors")

    features = side.features
    centred = factors - prior_mean
    row_precision = features.T @ features + side.lambda_link * np.eye(side.n_features)
    row_chol = np.linalg.cholesky(row_precision)
    mean = cho_solve((row_chol, True), features.T @ centred)

    # Row covariance factor: A A^T = (X^T X + lambda I)^{-1}  =>  A = L^{-T}.
    row_factor = solve_triangular(row_chol.T, np.eye(side.n_features), lower=False)
    # Column side: the perturbation rows need covariance Lambda^{-1}, i.e. a
    # right-multiplier R with R^T R = Lambda^{-1}, which is R = Lc^{-1} for
    # the lower Cholesky factor Lc of Lambda.
    col_chol = np.linalg.cholesky(precision)
    gaussian = rng.standard_normal((side.n_features, k))
    perturbation = row_factor @ gaussian
    perturbation = solve_triangular(col_chol.T, perturbation.T, lower=False).T
    return mean + perturbation


class MacauGibbsSampler(GibbsSampler):
    """BPMF with optional Macau-style side information per entity class.

    Entity classes without features behave exactly as in plain BPMF (and the
    sampler is bit-for-bit identical to :class:`GibbsSampler` when neither
    side is given features and the same seed is used).
    """

    def __init__(self, config: BPMFConfig | None = None,
                 options: SamplerOptions | None = None,
                 user_side: Optional[SideInfo] = None,
                 movie_side: Optional[SideInfo] = None):
        super().__init__(config, options)
        self.user_side = user_side
        self.movie_side = movie_side
        self.user_link: Optional[np.ndarray] = None
        self.movie_link: Optional[np.ndarray] = None

    # -- helpers -----------------------------------------------------------

    def _check_sides(self, ratings: RatingMatrix) -> None:
        if self.user_side is not None and self.user_side.n_entities != ratings.n_users:
            raise ValidationError("user side information does not match n_users")
        if (self.movie_side is not None
                and self.movie_side.n_entities != ratings.n_movies):
            raise ValidationError("movie side information does not match n_movies")

    def _phase(self, state: BPMFState, ratings: RatingMatrix, entity: str,
               rng: np.random.Generator) -> None:
        """Hyperparameters, link matrix and item updates for one entity class."""
        if entity == "movies":
            factors = state.movie_factors
            side = self.movie_side
            hyperprior = self.config.movie_hyperprior
            neighbours_of = ratings.movie_ratings
            source = state.user_factors
        else:
            factors = state.user_factors
            side = self.user_side
            hyperprior = self.config.user_hyperprior
            neighbours_of = ratings.user_ratings
            source = state.movie_factors

        link = None
        if side is not None:
            # Residual-based hyperparameter update, then the link-matrix draw.
            previous_link = (self.movie_link if entity == "movies" else self.user_link)
            residual = factors - side.features @ previous_link \
                if previous_link is not None else factors
            prior = sample_hyperparameters(residual, hyperprior, rng)
            link = sample_link_matrix(factors, prior.mean, prior.precision, side, rng)
            feature_means = prior.mean + side.features @ link
        else:
            prior = sample_hyperparameters(factors, hyperprior, rng)
            feature_means = None

        if entity == "movies":
            state.movie_prior = prior
            self.movie_link = link
        else:
            state.user_prior = prior
            self.user_link = link

        for item in range(factors.shape[0]):
            idx, values = neighbours_of(item)
            item_prior = prior if feature_means is None else GaussianPrior(
                mean=feature_means[item], precision=prior.precision)
            factors[item] = sample_item(
                source[idx], values, item_prior, self.config.alpha, rng=rng,
                method=self.options.update_method, policy=self.options.policy)

    # -- GibbsSampler interface --------------------------------------------

    def sweep(self, state: BPMFState, ratings: RatingMatrix,
              rng: np.random.Generator) -> int:
        self._check_sides(ratings)
        self._phase(state, ratings, "movies", rng)
        self._phase(state, ratings, "users", rng)
        state.iteration += 1
        return ratings.n_movies + ratings.n_users

    # run() is inherited unchanged from GibbsSampler.

    def cold_start_means(self, entity: str = "movies") -> np.ndarray:
        """Prior predictive factor means from features alone (cold start).

        Only meaningful after :meth:`run`; returns ``mu + X B`` for the
        requested entity class.
        """
        if entity == "movies":
            side, link, prior_attr = self.movie_side, self.movie_link, "movie_prior"
        else:
            side, link, prior_attr = self.user_side, self.user_link, "user_prior"
        if side is None or link is None:
            raise ValidationError(
                f"no side information / fitted link matrix for {entity}")
        if self._last_state is None:
            raise ValidationError("cold_start_means requires a completed run")
        prior = getattr(self._last_state, prior_attr)
        return prior.mean + side.features @ link

    def run(self, train: RatingMatrix, split=None, seed: SeedLike = 0,
            state: BPMFState | None = None) -> BPMFResult:
        result = super().run(train, split, seed=seed, state=state)
        self._last_state = result.state
        return result

    _last_state: Optional[BPMFState] = None
