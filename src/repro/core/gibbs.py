"""The sequential BPMF Gibbs sampler (Algorithm 1 of the paper).

This is the reference implementation every parallel variant is validated
against.  One sweep:

1. resample the movie hyperparameters from ``V``;
2. update every movie's factor from the users that rated it;
3. resample the user hyperparameters from ``U``;
4. update every user's factor from the movies they rated;
5. predict all test points and record RMSE (per-sample and posterior-mean).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Union

import numpy as np

from repro.core.batch_engine import UpdateEngine, make_update_engine
from repro.core.metrics import rmse
from repro.core.predict import FactorMeanAccumulator, PosteriorPredictor
from repro.core.priors import BPMFConfig
from repro.core.state import BPMFState, initialize_state
from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.core.wishart import sample_hyperparameters
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving -> core)
    from repro.serving.checkpoint import CheckpointConfig, Snapshot

__all__ = ["SamplerOptions", "BPMFResult", "GibbsSampler"]

#: A resume source: an in-memory snapshot or a path to a saved one.
ResumeLike = Union["Snapshot", str, "os.PathLike"]

logger = get_logger("core.gibbs")


@dataclass
class SamplerOptions:
    """Execution options orthogonal to the statistical model.

    ``update_method`` forces one of the three kernels for every item;
    ``None`` (default) uses the hybrid policy, as the paper does.  Under
    the ``"reference"`` engine the forced kernel is executed literally;
    the ``"batched"`` engine always factorises the stacked Gram matrices
    and honours the method only as accumulation structure (blocked for
    ``PARALLEL_CHOLESKY``, single-pass otherwise — a forced ``RANK_ONE``
    runs the single-pass Gram path).  All kernels sample the same
    distribution, so this changes cost profile, never statistics; use
    ``engine="reference"`` when per-kernel timing fidelity matters (as
    the Figure 2 driver does).

    ``engine`` selects how a phase's item updates are *executed*:
    ``"batched"`` (default) runs them through the stacked-BLAS
    :class:`repro.core.batch_engine.BatchedUpdateEngine`, ``"reference"``
    keeps the historical per-item loop, and ``"shared"`` maps the degree
    buckets across a pool of ``n_workers`` processes over shared memory
    (:class:`repro.core.shared_engine.SharedMemoryUpdateEngine`).  All
    engines consume the same random stream, so they sample from identical
    chains up to floating-point rounding (bit-identical for
    batched/shared; see ``tests/test_batch_engine_parity.py``).

    ``compute_dtype`` selects the kernel precision of the batched/shared
    engines (``"float32"`` trades exact parity for halved memory
    bandwidth); ``n_workers`` sizes the shared engine's process pool and
    is rejected for engines that cannot use it.

    ``checkpoint`` (a :class:`repro.serving.checkpoint.CheckpointConfig`)
    enables save-every-k-sweeps posterior snapshots; a run resumed from one
    (``run(..., resume=...)``) is bit-identical to an uninterrupted run.
    """

    update_method: Optional[UpdateMethod] = None
    policy: HybridUpdatePolicy = field(default_factory=HybridUpdatePolicy)
    engine: str = "batched"
    compute_dtype: str = "float64"
    n_workers: Optional[int] = None
    keep_sample_predictions: bool = False
    verbose: bool = False
    callback: Optional[Callable[["BPMFState", int], None]] = None
    checkpoint: Optional["CheckpointConfig"] = None

    def make_engine(self) -> UpdateEngine:
        """Build the configured :class:`UpdateEngine` instance."""
        return make_update_engine(self.engine, update_method=self.update_method,
                                  policy=self.policy,
                                  compute_dtype=self.compute_dtype,
                                  n_workers=self.n_workers)


@dataclass
class BPMFResult:
    """Output of a BPMF run.

    Attributes
    ----------
    state:
        Final sampler state (last Gibbs sample).
    rmse_per_sample:
        Test RMSE of each individual post-burn-in sample.
    rmse_running_mean:
        Test RMSE of the running posterior-mean prediction after each
        post-burn-in sweep (this is the curve the paper's "same level of
        prediction accuracy" claim refers to).
    rmse_burn_in:
        Test RMSE trace during burn-in (single-sample predictions).
    predictions:
        Final posterior-mean predictions for the test points.
    sample_predictions:
        Per-sample prediction matrix when requested, else ``None``.
    factor_means:
        Running posterior-mean factor accumulator over the post-burn-in
        samples — what a snapshot serves from; ``None`` when no sample was
        accumulated (burn-in-only runs).
    """

    config: BPMFConfig
    state: BPMFState
    rmse_per_sample: List[float]
    rmse_running_mean: List[float]
    rmse_burn_in: List[float]
    predictions: np.ndarray
    sample_predictions: Optional[np.ndarray] = None
    items_updated: int = 0
    factor_means: Optional[FactorMeanAccumulator] = None

    @property
    def final_rmse(self) -> float:
        """Test RMSE of the posterior-mean prediction after all sweeps."""
        if not self.rmse_running_mean:
            raise ValidationError("no post-burn-in samples were accumulated")
        return self.rmse_running_mean[-1]


class GibbsSampler:
    """Sequential BPMF Gibbs sampler.

    Parameters
    ----------
    config:
        Model and sweep configuration.
    options:
        Execution options (kernel selection, logging, callbacks).

    Example
    -------
    >>> from repro.datasets import make_low_rank_dataset
    >>> from repro.core import BPMFConfig, GibbsSampler
    >>> data = make_low_rank_dataset(n_users=50, n_movies=40, density=0.3, seed=1)
    >>> sampler = GibbsSampler(BPMFConfig(num_latent=4, burn_in=2, n_samples=4))
    >>> result = sampler.run(data.split.train, data.split, seed=0)
    >>> result.final_rmse > 0
    True
    """

    def __init__(self, config: BPMFConfig | None = None,
                 options: SamplerOptions | None = None):
        self.config = config or BPMFConfig()
        self.options = options or SamplerOptions()
        self._engine = self.options.make_engine()

    @property
    def engine(self) -> UpdateEngine:
        """The update engine executing this sampler's item phases."""
        return self._engine

    # -- single building blocks --------------------------------------------

    def resample_hyperparameters(self, state: BPMFState,
                                 rng: np.random.Generator) -> None:
        """Resample both Gaussian priors from their Normal–Wishart posteriors."""
        state.movie_prior = sample_hyperparameters(
            state.movie_factors, self.config.movie_hyperprior, rng)
        state.user_prior = sample_hyperparameters(
            state.user_factors, self.config.user_hyperprior, rng)

    def sweep(self, state: BPMFState, ratings: RatingMatrix,
              rng: np.random.Generator) -> int:
        """One full Gibbs sweep over hyperparameters, movies and users.

        Returns the number of item updates performed (used for the
        items/second throughput metric of Figures 3 and 4).

        The phase noise is pre-drawn in canonical item order before the
        engine runs, so the random stream (and hence the chain) is the same
        for every engine and execution backend.
        """
        k = self.config.num_latent
        # Movies first, as in Algorithm 1 of the paper.
        state.movie_prior = sample_hyperparameters(
            state.movie_factors, self.config.movie_hyperprior, rng)
        movie_noise = rng.standard_normal((ratings.n_movies, k))
        self._engine.update_items(
            state.movie_factors, state.user_factors, ratings.by_movie,
            state.movie_prior, self.config.alpha, movie_noise)
        state.user_prior = sample_hyperparameters(
            state.user_factors, self.config.user_hyperprior, rng)
        user_noise = rng.standard_normal((ratings.n_users, k))
        self._engine.update_items(
            state.user_factors, state.movie_factors, ratings.by_user,
            state.user_prior, self.config.alpha, user_noise)
        state.iteration += 1
        return ratings.n_movies + ratings.n_users

    # -- full run -----------------------------------------------------------

    def run(self, train: RatingMatrix, split: RatingSplit | None = None,
            seed: SeedLike = 0, state: BPMFState | None = None,
            resume: Optional[ResumeLike] = None) -> BPMFResult:
        """Run burn-in plus sampling sweeps and return the result bundle.

        Parameters
        ----------
        train:
            Training rating matrix.
        split:
            Optional split providing held-out test points; when omitted the
            training entries themselves are used for the RMSE traces (useful
            for smoke tests but not a generalisation measure).
        seed:
            Random seed or generator.
        state:
            Optional pre-initialised state (used by warm-start experiments).
        resume:
            Snapshot (or path to one) to continue from: the chain restarts
            at the checkpointed sweep with the checkpointed generator state
            and accumulators, so the completed run is bit-identical to one
            that never stopped.  ``keep_sample_predictions`` only collects
            post-resume samples (per-sample vectors are not checkpointed).
        """
        # Imported lazily: repro.serving depends on repro.core, so the
        # checkpoint layer cannot be a module-level import here.
        from repro.serving.checkpoint import TrainingCheckpointer

        rng = as_generator(seed)
        snapshot, state, rng = TrainingCheckpointer.open_resume(resume, state, rng)
        if state is None:
            state = initialize_state(train, self.config, rng)
        if state.n_users != train.n_users or state.n_movies != train.n_movies:
            raise ValidationError("state shape does not match the rating matrix")

        if split is not None and split.n_test > 0:
            test_users, test_movies, test_values = split.test_triplets()
        else:
            test_users, test_movies, test_values = train.triplets()

        predictor = PosteriorPredictor(
            test_users, test_movies,
            keep_samples=self.options.keep_sample_predictions)
        checkpointer = TrainingCheckpointer(self.config, self.options.checkpoint,
                                            snapshot, state, predictor)

        # The engine may own worker processes and shared-memory segments
        # (engine="shared"); closing in a finally guarantees they are
        # released even when a sweep raises or the run is interrupted.
        try:
            for iteration in range(checkpointer.start_iteration,
                                   self.config.total_iterations):
                checkpointer.items_updated += self.sweep(state, train, rng)
                sample_pred = state.predict(test_users, test_movies)
                if iteration >= self.config.burn_in:
                    predictor.accumulate(state)
                    mean_rmse = rmse(predictor.mean_prediction(), test_values)
                else:
                    mean_rmse = None
                checkpointer.record(iteration, state,
                                    rmse(sample_pred, test_values), mean_rmse)
                if self.options.verbose:
                    phase = ("burn-in" if iteration < self.config.burn_in
                             else "sample")
                    latest = (checkpointer.rmse_burn_in
                              if iteration < self.config.burn_in
                              else checkpointer.rmse_running_mean)[-1]
                    logger.info("iter %d (%s): rmse=%.4f",
                                iteration, phase, latest)
                if self.options.callback is not None:
                    self.options.callback(state, iteration)
                checkpointer.maybe_save(iteration, state, rng, predictor)
        finally:
            self._engine.close()

        return BPMFResult(
            config=self.config,
            state=state,
            rmse_per_sample=checkpointer.rmse_per_sample,
            rmse_running_mean=checkpointer.rmse_running_mean,
            rmse_burn_in=checkpointer.rmse_burn_in,
            predictions=predictor.mean_prediction(),
            sample_predictions=(predictor.sample_matrix()
                                if self.options.keep_sample_predictions else None),
            items_updated=checkpointer.items_updated,
            factor_means=(checkpointer.factor_means
                          if checkpointer.factor_means.n_samples else None),
        )
