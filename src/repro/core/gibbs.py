"""The sequential BPMF Gibbs sampler (Algorithm 1 of the paper).

This is the reference implementation every parallel variant is validated
against.  One sweep:

1. resample the movie hyperparameters from ``V``;
2. update every movie's factor from the users that rated it;
3. resample the user hyperparameters from ``U``;
4. update every user's factor from the movies they rated;
5. predict all test points and record RMSE (per-sample and posterior-mean).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.metrics import rmse
from repro.core.predict import PosteriorPredictor
from repro.core.priors import BPMFConfig
from repro.core.state import BPMFState, initialize_state
from repro.core.updates import HybridUpdatePolicy, UpdateMethod, sample_item
from repro.core.wishart import sample_hyperparameters
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError

__all__ = ["SamplerOptions", "BPMFResult", "GibbsSampler"]

logger = get_logger("core.gibbs")


@dataclass
class SamplerOptions:
    """Execution options orthogonal to the statistical model.

    ``update_method`` forces one of the three kernels for every item;
    ``None`` (default) uses the hybrid policy, as the paper does.
    """

    update_method: Optional[UpdateMethod] = None
    policy: HybridUpdatePolicy = field(default_factory=HybridUpdatePolicy)
    keep_sample_predictions: bool = False
    verbose: bool = False
    callback: Optional[Callable[["BPMFState", int], None]] = None


@dataclass
class BPMFResult:
    """Output of a BPMF run.

    Attributes
    ----------
    state:
        Final sampler state (last Gibbs sample).
    rmse_per_sample:
        Test RMSE of each individual post-burn-in sample.
    rmse_running_mean:
        Test RMSE of the running posterior-mean prediction after each
        post-burn-in sweep (this is the curve the paper's "same level of
        prediction accuracy" claim refers to).
    rmse_burn_in:
        Test RMSE trace during burn-in (single-sample predictions).
    predictions:
        Final posterior-mean predictions for the test points.
    sample_predictions:
        Per-sample prediction matrix when requested, else ``None``.
    """

    config: BPMFConfig
    state: BPMFState
    rmse_per_sample: List[float]
    rmse_running_mean: List[float]
    rmse_burn_in: List[float]
    predictions: np.ndarray
    sample_predictions: Optional[np.ndarray] = None
    items_updated: int = 0

    @property
    def final_rmse(self) -> float:
        """Test RMSE of the posterior-mean prediction after all sweeps."""
        if not self.rmse_running_mean:
            raise ValidationError("no post-burn-in samples were accumulated")
        return self.rmse_running_mean[-1]


class GibbsSampler:
    """Sequential BPMF Gibbs sampler.

    Parameters
    ----------
    config:
        Model and sweep configuration.
    options:
        Execution options (kernel selection, logging, callbacks).

    Example
    -------
    >>> from repro.datasets import make_low_rank_dataset
    >>> from repro.core import BPMFConfig, GibbsSampler
    >>> data = make_low_rank_dataset(n_users=50, n_movies=40, density=0.3, seed=1)
    >>> sampler = GibbsSampler(BPMFConfig(num_latent=4, burn_in=2, n_samples=4))
    >>> result = sampler.run(data.split.train, data.split, seed=0)
    >>> result.final_rmse > 0
    True
    """

    def __init__(self, config: BPMFConfig | None = None,
                 options: SamplerOptions | None = None):
        self.config = config or BPMFConfig()
        self.options = options or SamplerOptions()

    # -- single building blocks (reused by parallel samplers) --------------

    def resample_hyperparameters(self, state: BPMFState,
                                 rng: np.random.Generator) -> None:
        """Resample both Gaussian priors from their Normal–Wishart posteriors."""
        state.movie_prior = sample_hyperparameters(
            state.movie_factors, self.config.movie_hyperprior, rng)
        state.user_prior = sample_hyperparameters(
            state.user_factors, self.config.user_hyperprior, rng)

    def update_movie(self, state: BPMFState, ratings: RatingMatrix, movie: int,
                     rng: np.random.Generator,
                     noise: Optional[np.ndarray] = None) -> None:
        """Resample one movie's factor from the users that rated it."""
        user_idx, values = ratings.movie_ratings(movie)
        state.movie_factors[movie] = sample_item(
            state.user_factors[user_idx], values, state.movie_prior,
            self.config.alpha, rng=rng, noise=noise,
            method=self.options.update_method, policy=self.options.policy)

    def update_user(self, state: BPMFState, ratings: RatingMatrix, user: int,
                    rng: np.random.Generator,
                    noise: Optional[np.ndarray] = None) -> None:
        """Resample one user's factor from the movies they rated."""
        movie_idx, values = ratings.user_ratings(user)
        state.user_factors[user] = sample_item(
            state.movie_factors[movie_idx], values, state.user_prior,
            self.config.alpha, rng=rng, noise=noise,
            method=self.options.update_method, policy=self.options.policy)

    def sweep(self, state: BPMFState, ratings: RatingMatrix,
              rng: np.random.Generator) -> int:
        """One full Gibbs sweep over hyperparameters, movies and users.

        Returns the number of item updates performed (used for the
        items/second throughput metric of Figures 3 and 4).
        """
        # Movies first, as in Algorithm 1 of the paper.
        state.movie_prior = sample_hyperparameters(
            state.movie_factors, self.config.movie_hyperprior, rng)
        for movie in range(ratings.n_movies):
            self.update_movie(state, ratings, movie, rng)
        state.user_prior = sample_hyperparameters(
            state.user_factors, self.config.user_hyperprior, rng)
        for user in range(ratings.n_users):
            self.update_user(state, ratings, user, rng)
        state.iteration += 1
        return ratings.n_movies + ratings.n_users

    # -- full run -----------------------------------------------------------

    def run(self, train: RatingMatrix, split: RatingSplit | None = None,
            seed: SeedLike = 0, state: BPMFState | None = None) -> BPMFResult:
        """Run burn-in plus sampling sweeps and return the result bundle.

        Parameters
        ----------
        train:
            Training rating matrix.
        split:
            Optional split providing held-out test points; when omitted the
            training entries themselves are used for the RMSE traces (useful
            for smoke tests but not a generalisation measure).
        seed:
            Random seed or generator.
        state:
            Optional pre-initialised state (used by warm-start experiments).
        """
        rng = as_generator(seed)
        if state is None:
            state = initialize_state(train, self.config, rng)
        if state.n_users != train.n_users or state.n_movies != train.n_movies:
            raise ValidationError("state shape does not match the rating matrix")

        if split is not None and split.n_test > 0:
            test_users, test_movies, test_values = split.test_triplets()
        else:
            test_users, test_movies, test_values = train.triplets()

        predictor = PosteriorPredictor(
            test_users, test_movies,
            keep_samples=self.options.keep_sample_predictions)
        rmse_burn_in: List[float] = []
        rmse_per_sample: List[float] = []
        rmse_running_mean: List[float] = []
        items_updated = 0

        for iteration in range(self.config.total_iterations):
            items_updated += self.sweep(state, train, rng)
            sample_pred = state.predict(test_users, test_movies)
            if iteration < self.config.burn_in:
                rmse_burn_in.append(rmse(sample_pred, test_values))
            else:
                predictor.accumulate(state)
                rmse_per_sample.append(rmse(sample_pred, test_values))
                rmse_running_mean.append(
                    rmse(predictor.mean_prediction(), test_values))
            if self.options.verbose:
                phase = "burn-in" if iteration < self.config.burn_in else "sample"
                latest = (rmse_burn_in or rmse_running_mean)[-1] \
                    if iteration < self.config.burn_in else rmse_running_mean[-1]
                logger.info("iter %d (%s): rmse=%.4f", iteration, phase, latest)
            if self.options.callback is not None:
                self.options.callback(state, iteration)

        return BPMFResult(
            config=self.config,
            state=state,
            rmse_per_sample=rmse_per_sample,
            rmse_running_mean=rmse_running_mean,
            rmse_burn_in=rmse_burn_in,
            predictions=predictor.mean_prediction(),
            sample_predictions=(predictor.sample_matrix()
                                if self.options.keep_sample_predictions else None),
            items_updated=items_updated,
        )
