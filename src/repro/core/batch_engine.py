"""Update engines: batched (stacked-BLAS) and reference per-item execution.

The three conditional-update kernels in :mod:`repro.core.updates` answer
the paper's Figure 2 question — *which algorithm* updates one item fastest
— but executing them one item at a time from Python caps every sampler on
interpreter overhead long before the linear algebra matters.  This module
factors the *execution strategy* out of the samplers behind a shared
:class:`UpdateEngine` interface with two implementations:

* :class:`ReferenceUpdateEngine` — the original per-item loop calling
  :func:`repro.core.updates.sample_item`.  Kept as the semantic oracle for
  the parity harness and for per-item thread scheduling experiments.
* :class:`BatchedUpdateEngine` — groups items into exact-degree buckets
  (:mod:`repro.sparse.buckets`), forms every bucket's Gram matrices with
  one stacked ``matmul``, factorises them with one stacked
  ``np.linalg.cholesky`` and draws all conditional samples with batched
  solves.  The paper's hybrid method selection survives as *bucket-boundary
  policy*: a bucket whose degree falls in the parallel-Cholesky regime has
  its Gram accumulation split into the same row blocks the parallel kernel
  would use, so the blocked summation structure (and its parallelism
  opportunity) is preserved at bucket granularity.

Both engines consume a pre-drawn ``(n_items, K)`` noise matrix in
canonical item order.  Because ``rng.standard_normal((n, k))`` reads the
underlying bit stream exactly like ``n`` successive ``standard_normal(k)``
calls, a sampler that pre-draws the phase noise and then runs *either*
engine sees the same random stream as the historical per-item loop — this
is the pre-drawn-noise parity trick extended to the batched order.

Per-item arithmetic inside the batched engine uses only per-slice LAPACK
operations (stacked ``matmul``/``cholesky``/``solve`` apply one routine per
slice), so an item's sample does not depend on which other items share its
bucket.  The distributed sampler exploits this: per-rank subsets produce
bitwise-identical rows to the full-matrix plan.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.priors import GaussianPrior
from repro.core.updates import HybridUpdatePolicy, UpdateMethod, sample_item
from repro.sparse.buckets import BucketPlan, DegreeBucket, build_bucket_plan
from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError

__all__ = [
    "UpdateEngine",
    "ReferenceUpdateEngine",
    "BatchedUpdateEngine",
    "available_engines",
    "make_update_engine",
]

#: ``parallel_map(func, items)`` calls ``func(item)`` for every item; the
#: multicore sampler passes its thread backend's ``map_items`` here.
ParallelMap = Callable[[Callable[[int], None], Sequence[int]], object]


class UpdateEngine:
    """Executes one full phase of conditional factor updates.

    A *phase* resamples every item of one entity class (all movies, or all
    users) from its conditional Gaussian, holding the other class's factors
    fixed.  Engines differ only in execution strategy; all draw from the
    same distribution and consume the same noise rows.

    Subclasses implement :meth:`update_items`.
    """

    #: Registry name (``SamplerOptions.engine`` value selecting this engine).
    name: str = ""

    def __init__(self, update_method: Optional[UpdateMethod] = None,
                 policy: Optional[HybridUpdatePolicy] = None):
        self.update_method = update_method
        self.policy = policy or HybridUpdatePolicy()

    def update_items(self, target: np.ndarray, source: np.ndarray,
                     axis: CompressedAxis, prior: GaussianPrior, alpha: float,
                     noise: np.ndarray, items: Optional[np.ndarray] = None,
                     parallel_map: Optional[ParallelMap] = None) -> int:
        """Resample factor rows of ``target`` in place; returns items updated.

        Parameters
        ----------
        target:
            ``(n_items, K)`` factor matrix being resampled (written).
        source:
            The other entity class's factor matrix (read-only this phase).
        axis:
            Compressed view mapping each target item to its rating partners
            (``ratings.by_movie`` for the movie phase, ``by_user`` for users).
        prior:
            Current Gaussian prior of the target entity class.
        alpha:
            Observation precision.
        noise:
            ``(n_items, K)`` standard-normal rows, indexed by *global* item
            id — item ``i`` always consumes ``noise[i]`` regardless of
            execution order, which is what makes every engine/backend
            combination reproduce the same chain.
        items:
            Optional subset of item indices to update (the distributed
            sampler passes each rank's owned items); default all.
        parallel_map:
            Optional ``map(func, indices)`` used to execute independent
            units (items for the reference engine, buckets for the batched
            engine) concurrently.  Default: a plain loop.
        """
        raise NotImplementedError

    def _choose_method(self, degree: int) -> UpdateMethod:
        if self.update_method is not None:
            return self.update_method
        return self.policy.choose(degree)


class ReferenceUpdateEngine(UpdateEngine):
    """The original per-item Python loop (semantic oracle for parity tests)."""

    name = "reference"

    def update_items(self, target, source, axis, prior, alpha, noise,
                     items=None, parallel_map=None):
        if items is None:
            items = range(axis.n)

        def update(item: int) -> None:
            idx, values = axis.slice(item)
            target[item] = sample_item(
                source[idx], values, prior, alpha, noise=noise[item],
                method=self.update_method, policy=self.policy)

        if parallel_map is None:
            for item in items:
                update(int(item))
        else:
            parallel_map(update, items)
        return len(items)


class BatchedUpdateEngine(UpdateEngine):
    """Stacked-BLAS execution: one LAPACK pass per exact-degree bucket.

    For a bucket of ``m`` items of degree ``d`` the engine gathers the
    ``(m, d, K)`` neighbour factor tensor ``X`` and computes, for all items
    at once::

        precision = Lambda + alpha * X^T X          (stacked matmul)
        rhs       = Lambda mu + alpha * X^T r       (stacked matmul)
        L         = cholesky(precision)             (stacked potrf)
        mean      = solve(precision, rhs)           (stacked solve)
        sample    = mean + solve(L^T, z)            (stacked solve)

    Buckets in the parallel-Cholesky regime (degree >=
    ``policy.parallel_threshold``) accumulate ``X^T X`` over the same row
    blocks :func:`repro.core.updates.sample_item_parallel_cholesky` uses,
    preserving the paper's blocked-Gram structure at bucket granularity.
    The method selection (forced or policy-chosen) controls *only* that
    accumulation structure: this engine never runs the incremental
    rank-one kernel — a bucket in the rank-one regime (or with a forced
    ``RANK_ONE``) takes the single-pass Gram path, which samples the same
    distribution at lower cost.  Experiments that need the literal
    per-kernel execution (e.g. Figure 2 timings) must use the reference
    engine.

    Bucket plans are structural (sparsity-only) and cached per
    ``(axis, items)`` pair, so repeated sweeps pay no planning cost.
    """

    name = "batched"

    #: Most-recently-used (axis, subset) plans kept per engine.  Large
    #: enough for any one sampler's working set (two axes x the ranks of a
    #: simulated world); bounds memory when one engine is reused across
    #: many datasets (e.g. a cross-validation loop), since every cached
    #: plan pins its axis plus ~2x that axis's rating data in gathers.
    MAX_CACHED_PLANS = 64

    def __init__(self, update_method: Optional[UpdateMethod] = None,
                 policy: Optional[HybridUpdatePolicy] = None):
        super().__init__(update_method, policy)
        # Cache entries keep a reference to the axis alongside the plan:
        # id() values are only unique while the object is alive, so holding
        # the axis prevents a garbage-collected axis's id from being reused
        # and silently serving a stale plan.
        self._plans: Dict[Tuple[int, Optional[bytes]],
                          Tuple[CompressedAxis, BucketPlan]] = {}

    # -- planning ---------------------------------------------------------

    def _plan_for(self, axis: CompressedAxis,
                  items: Optional[np.ndarray]) -> BucketPlan:
        key = (id(axis),
               None if items is None else np.asarray(items, np.int64).tobytes())
        entry = self._plans.get(key)
        if entry is None or entry[0] is not axis:
            entry = (axis, build_bucket_plan(axis, items))
            while len(self._plans) >= self.MAX_CACHED_PLANS:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = entry
        else:
            # Refresh recency so the eviction above is LRU, not FIFO.
            self._plans.pop(key)
            self._plans[key] = entry
        return entry[1]

    # -- the batched kernel ----------------------------------------------

    def _update_bucket(self, bucket: DegreeBucket, target: np.ndarray,
                       source: np.ndarray, prior: GaussianPrior, alpha: float,
                       noise: np.ndarray) -> None:
        m, d = bucket.n_items, bucket.degree
        k = prior.num_latent
        # (m, d, K) neighbour factor blocks and (m, d, 1) rating columns.
        blocks = source[bucket.neighbours]
        values = bucket.values[:, :, None]

        precision = np.broadcast_to(prior.precision, (m, k, k)).copy()
        rhs = np.broadcast_to(prior.precision @ prior.mean, (m, k)).copy()
        if d:
            method = self._choose_method(d)
            if method is UpdateMethod.PARALLEL_CHOLESKY:
                # Mirror the parallel kernel's blocked Gram accumulation.
                n_blocks = min(self.policy.n_subtasks(d), d)
                for rows in np.array_split(np.arange(d), n_blocks):
                    sub = blocks[:, rows, :]
                    precision += alpha * (sub.transpose(0, 2, 1) @ sub)
                    rhs += alpha * (sub.transpose(0, 2, 1)
                                    @ values[:, rows, :])[:, :, 0]
            else:
                precision += alpha * (blocks.transpose(0, 2, 1) @ blocks)
                rhs += alpha * (blocks.transpose(0, 2, 1) @ values)[:, :, 0]

        chol = np.linalg.cholesky(precision)
        # mean + L^-T z  ==  L^-T (L^-1 rhs + z): two stacked triangular
        # solves reusing the factor just computed, instead of refactorising
        # `precision` for the mean.
        z = noise[bucket.items][:, :, None]
        half = np.linalg.solve(chol, rhs[:, :, None])
        sample = np.linalg.solve(chol.transpose(0, 2, 1), half + z)
        target[bucket.items] = sample[:, :, 0]

    def update_items(self, target, source, axis, prior, alpha, noise,
                     items=None, parallel_map=None):
        plan = self._plan_for(axis, items)

        def run_bucket(index: int) -> None:
            self._update_bucket(plan.buckets[index], target, source,
                                prior, alpha, noise)

        if parallel_map is None:
            for index in range(plan.n_buckets):
                run_bucket(index)
        else:
            # Buckets touch disjoint target rows, so they are race-free units.
            parallel_map(run_bucket, range(plan.n_buckets))
        return plan.n_planned_items


_ENGINES = {
    ReferenceUpdateEngine.name: ReferenceUpdateEngine,
    BatchedUpdateEngine.name: BatchedUpdateEngine,
}


def available_engines() -> Tuple[str, ...]:
    """Names accepted by ``SamplerOptions.engine`` and friends."""
    return tuple(_ENGINES)


def make_update_engine(engine: str,
                       update_method: Optional[UpdateMethod] = None,
                       policy: Optional[HybridUpdatePolicy] = None) -> UpdateEngine:
    """Instantiate an update engine by registry name.

    ``engine`` is ``"batched"`` (default everywhere) or ``"reference"``.
    """
    if engine not in _ENGINES:
        raise ValidationError(
            f"unknown update engine {engine!r}; "
            f"available: {', '.join(available_engines())}")
    return _ENGINES[engine](update_method=update_method, policy=policy)
