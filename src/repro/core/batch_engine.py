"""Update engines: batched (stacked-BLAS) and reference per-item execution.

The three conditional-update kernels in :mod:`repro.core.updates` answer
the paper's Figure 2 question — *which algorithm* updates one item fastest
— but executing them one item at a time from Python caps every sampler on
interpreter overhead long before the linear algebra matters.  This module
factors the *execution strategy* out of the samplers behind a shared
:class:`UpdateEngine` interface with two implementations:

* :class:`ReferenceUpdateEngine` — the original per-item loop calling
  :func:`repro.core.updates.sample_item`.  Kept as the semantic oracle for
  the parity harness and for per-item thread scheduling experiments.
* :class:`BatchedUpdateEngine` — groups items into exact-degree buckets
  (:mod:`repro.sparse.buckets`), forms every bucket's Gram matrices with
  one stacked ``matmul``, factorises them with one stacked
  ``np.linalg.cholesky`` and draws all conditional samples with batched
  solves.  The paper's hybrid method selection survives as *bucket-boundary
  policy*: a bucket whose degree falls in the parallel-Cholesky regime has
  its Gram accumulation split into the same row blocks the parallel kernel
  would use, so the blocked summation structure (and its parallelism
  opportunity) is preserved at bucket granularity.

Both engines consume a pre-drawn ``(n_items, K)`` noise matrix in
canonical item order.  Because ``rng.standard_normal((n, k))`` reads the
underlying bit stream exactly like ``n`` successive ``standard_normal(k)``
calls, a sampler that pre-draws the phase noise and then runs *either*
engine sees the same random stream as the historical per-item loop — this
is the pre-drawn-noise parity trick extended to the batched order.

Per-item arithmetic inside the batched engine uses only per-slice LAPACK
operations (stacked ``matmul``/``cholesky``/``solve`` apply one routine per
slice), so an item's sample does not depend on which other items share its
bucket.  The distributed sampler exploits this: per-rank subsets produce
bitwise-identical rows to the full-matrix plan.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.priors import GaussianPrior
from repro.core.updates import HybridUpdatePolicy, UpdateMethod, sample_item
from repro.sparse.buckets import BucketPlan, DegreeBucket, cached_bucket_plan
from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError

__all__ = [
    "UpdateEngine",
    "ReferenceUpdateEngine",
    "BatchedUpdateEngine",
    "available_engines",
    "make_update_engine",
]

#: Dtypes an engine may compute in.  ``float64`` (default) preserves the
#: bit-exact parity guarantees; ``float32`` halves memory bandwidth on the
#: stacked kernels at the cost of ~1e-4-relative agreement with the
#: reference chain.
COMPUTE_DTYPES = ("float64", "float32")

#: ``parallel_map(func, items)`` calls ``func(item)`` for every item; the
#: multicore sampler passes its thread backend's ``map_items`` here.
ParallelMap = Callable[[Callable[[int], None], Sequence[int]], object]


class UpdateEngine:
    """Executes one full phase of conditional factor updates.

    A *phase* resamples every item of one entity class (all movies, or all
    users) from its conditional Gaussian, holding the other class's factors
    fixed.  Engines differ only in execution strategy; all draw from the
    same distribution and consume the same noise rows.

    Subclasses implement :meth:`update_items`.
    """

    #: Registry name (``SamplerOptions.engine`` value selecting this engine).
    name: str = ""

    #: True when the engine schedules its own parallel execution (the
    #: shared-memory process backend); samplers must then pass
    #: ``parallel_map=None`` instead of wrapping it in a thread pool.
    manages_parallelism: bool = False

    def __init__(self, update_method: Optional[UpdateMethod] = None,
                 policy: Optional[HybridUpdatePolicy] = None,
                 compute_dtype: str = "float64"):
        if compute_dtype not in COMPUTE_DTYPES:
            raise ValidationError(
                f"compute_dtype must be one of {COMPUTE_DTYPES}, "
                f"got {compute_dtype!r}")
        self.update_method = update_method
        self.policy = policy or HybridUpdatePolicy()
        self.compute_dtype = compute_dtype
        self._dtype = np.dtype(compute_dtype)

    def close(self) -> None:
        """Release engine-owned resources (worker pools, shared memory).

        A no-op for in-process engines.  Safe to call repeatedly; an engine
        remains usable after ``close`` (resources are re-acquired lazily).
        The samplers call this in a ``finally`` around their sweep loop so
        an interrupted run never leaks.
        """

    def __enter__(self) -> "UpdateEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def update_items(self, target: np.ndarray, source: np.ndarray,
                     axis: CompressedAxis, prior: GaussianPrior, alpha: float,
                     noise: np.ndarray, items: Optional[np.ndarray] = None,
                     parallel_map: Optional[ParallelMap] = None) -> int:
        """Resample factor rows of ``target`` in place; returns items updated.

        Parameters
        ----------
        target:
            ``(n_items, K)`` factor matrix being resampled (written).
        source:
            The other entity class's factor matrix (read-only this phase).
        axis:
            Compressed view mapping each target item to its rating partners
            (``ratings.by_movie`` for the movie phase, ``by_user`` for users).
        prior:
            Current Gaussian prior of the target entity class.
        alpha:
            Observation precision.
        noise:
            ``(n_items, K)`` standard-normal rows, indexed by *global* item
            id — item ``i`` always consumes ``noise[i]`` regardless of
            execution order, which is what makes every engine/backend
            combination reproduce the same chain.
        items:
            Optional subset of item indices to update (the distributed
            sampler passes each rank's owned items); default all.
        parallel_map:
            Optional ``map(func, indices)`` used to execute independent
            units (items for the reference engine, buckets for the batched
            engine) concurrently.  Default: a plain loop.
        """
        raise NotImplementedError

    def _choose_method(self, degree: int) -> UpdateMethod:
        if self.update_method is not None:
            return self.update_method
        return self.policy.choose(degree)


class ReferenceUpdateEngine(UpdateEngine):
    """The original per-item Python loop (semantic oracle for parity tests)."""

    name = "reference"

    def __init__(self, update_method: Optional[UpdateMethod] = None,
                 policy: Optional[HybridUpdatePolicy] = None,
                 compute_dtype: str = "float64"):
        if compute_dtype != "float64":
            # The per-item kernels are float64-only; a silently ignored
            # reduced-precision request would invalidate parity baselines.
            raise ValidationError(
                "the reference engine always computes in float64; "
                f"got compute_dtype={compute_dtype!r}")
        super().__init__(update_method, policy, compute_dtype)

    def update_items(self, target, source, axis, prior, alpha, noise,
                     items=None, parallel_map=None):
        if items is None:
            items = range(axis.n)

        def update(item: int) -> None:
            idx, values = axis.slice(item)
            target[item] = sample_item(
                source[idx], values, prior, alpha, noise=noise[item],
                method=self.update_method, policy=self.policy)

        if parallel_map is None:
            for item in items:
                update(int(item))
        else:
            parallel_map(update, items)
        return len(items)


class BatchedUpdateEngine(UpdateEngine):
    """Stacked-BLAS execution: one LAPACK pass per exact-degree bucket.

    For a bucket of ``m`` items of degree ``d`` the engine gathers the
    ``(m, d, K)`` neighbour factor tensor ``X`` and computes, for all items
    at once::

        precision = Lambda + alpha * X^T X          (stacked matmul)
        rhs       = Lambda mu + alpha * X^T r       (stacked matmul)
        L         = cholesky(precision)             (stacked potrf)
        mean      = solve(precision, rhs)           (stacked solve)
        sample    = mean + solve(L^T, z)            (stacked solve)

    Buckets in the parallel-Cholesky regime (degree >=
    ``policy.parallel_threshold``) accumulate ``X^T X`` over the same row
    blocks :func:`repro.core.updates.sample_item_parallel_cholesky` uses,
    preserving the paper's blocked-Gram structure at bucket granularity.
    The method selection (forced or policy-chosen) controls *only* that
    accumulation structure: this engine never runs the incremental
    rank-one kernel — a bucket in the rank-one regime (or with a forced
    ``RANK_ONE``) takes the single-pass Gram path, which samples the same
    distribution at lower cost.  Experiments that need the literal
    per-kernel execution (e.g. Figure 2 timings) must use the reference
    engine.

    Bucket plans are structural (sparsity-only) and cached per
    ``(axis, items)`` pair in the module-level cache of
    :mod:`repro.sparse.buckets`, so repeated sweeps — and *other* engine
    instances touching the same axis — pay no planning cost.

    ``compute_dtype`` selects the arithmetic precision of the stacked
    kernels.  ``float64`` (default) is bit-identical to the historical
    behaviour; ``float32`` halves the memory traffic of the gather and
    matmul passes and agrees with the float64 chain to single-precision
    tolerance (factor rows are cast back to the target's dtype on store).
    """

    name = "batched"

    # -- planning ---------------------------------------------------------

    def _plan_for(self, axis: CompressedAxis,
                  items: Optional[np.ndarray]) -> BucketPlan:
        return cached_bucket_plan(axis, items, value_dtype=self._dtype)

    # -- the batched kernel ----------------------------------------------

    def _update_bucket(self, bucket: DegreeBucket, target: np.ndarray,
                       source: np.ndarray, prior: GaussianPrior, alpha: float,
                       noise: np.ndarray) -> None:
        """One stacked update; ``source`` and ``bucket.values`` must already
        be in the compute dtype (``update_items`` and the shared-memory
        workers guarantee this)."""
        m, d = bucket.n_items, bucket.degree
        k = prior.num_latent
        dtype = self._dtype
        # (m, d, K) neighbour factor blocks and (m, d, 1) rating columns.
        blocks = source[bucket.neighbours]
        values = bucket.values[:, :, None]

        prior_precision = np.asarray(prior.precision, dtype=dtype)
        prior_mean = np.asarray(prior.mean, dtype=dtype)
        alpha = dtype.type(alpha)
        precision = np.broadcast_to(prior_precision, (m, k, k)).copy()
        rhs = np.broadcast_to(prior_precision @ prior_mean, (m, k)).copy()
        if d:
            method = self._choose_method(d)
            if method is UpdateMethod.PARALLEL_CHOLESKY:
                # Mirror the parallel kernel's blocked Gram accumulation.
                n_blocks = min(self.policy.n_subtasks(d), d)
                for rows in np.array_split(np.arange(d), n_blocks):
                    sub = blocks[:, rows, :]
                    precision += alpha * (sub.transpose(0, 2, 1) @ sub)
                    rhs += alpha * (sub.transpose(0, 2, 1)
                                    @ values[:, rows, :])[:, :, 0]
            else:
                precision += alpha * (blocks.transpose(0, 2, 1) @ blocks)
                rhs += alpha * (blocks.transpose(0, 2, 1) @ values)[:, :, 0]

        chol = np.linalg.cholesky(precision)
        # mean + L^-T z  ==  L^-T (L^-1 rhs + z): two stacked triangular
        # solves reusing the factor just computed, instead of refactorising
        # `precision` for the mean.
        z = np.asarray(noise[bucket.items], dtype=dtype)[:, :, None]
        half = np.linalg.solve(chol, rhs[:, :, None])
        sample = np.linalg.solve(chol.transpose(0, 2, 1), half + z)
        target[bucket.items] = sample[:, :, 0]

    def update_items(self, target, source, axis, prior, alpha, noise,
                     items=None, parallel_map=None):
        plan = self._plan_for(axis, items)
        source = np.asarray(source, dtype=self._dtype)

        def run_bucket(index: int) -> None:
            self._update_bucket(plan.buckets[index], target, source,
                                prior, alpha, noise)

        if parallel_map is None:
            for index in range(plan.n_buckets):
                run_bucket(index)
        else:
            # Buckets touch disjoint target rows, so they are race-free units.
            parallel_map(run_bucket, range(plan.n_buckets))
        return plan.n_planned_items


def _engine_registry():
    # The shared-memory engine subclasses BatchedUpdateEngine, so its module
    # imports this one; resolving the registry lazily breaks that cycle.
    from repro.core.shared_engine import SharedMemoryUpdateEngine

    return {
        ReferenceUpdateEngine.name: ReferenceUpdateEngine,
        BatchedUpdateEngine.name: BatchedUpdateEngine,
        SharedMemoryUpdateEngine.name: SharedMemoryUpdateEngine,
    }


def available_engines() -> Tuple[str, ...]:
    """Names accepted by ``SamplerOptions.engine`` and friends."""
    return tuple(_engine_registry())


def make_update_engine(engine: str,
                       update_method: Optional[UpdateMethod] = None,
                       policy: Optional[HybridUpdatePolicy] = None,
                       compute_dtype: str = "float64",
                       n_workers: Optional[int] = None) -> UpdateEngine:
    """Instantiate an update engine by registry name.

    ``engine`` is ``"batched"`` (default everywhere), ``"reference"`` (the
    per-item oracle) or ``"shared"`` (the zero-copy shared-memory process
    backend).  ``compute_dtype`` selects the kernel precision (rejected by
    the float64-only reference engine); ``n_workers`` is only meaningful
    for ``"shared"`` and is rejected otherwise rather than silently
    ignored.
    """
    registry = _engine_registry()
    if engine not in registry:
        raise ValidationError(
            f"unknown update engine {engine!r}; "
            f"available: {', '.join(registry)}")
    kwargs = dict(update_method=update_method, policy=policy,
                  compute_dtype=compute_dtype)
    if registry[engine].manages_parallelism:
        kwargs["n_workers"] = n_workers
    elif n_workers is not None:
        raise ValidationError(
            f"engine {engine!r} does not take n_workers "
            "(only the 'shared' process backend does)")
    return registry[engine](**kwargs)
