"""Model configuration and prior parameterisation for BPMF.

The generative model (Salakhutdinov & Mnih 2008, Section 3):

.. math::

    R_{ij} \\mid U_i, V_j \\sim \\mathcal{N}(U_i^\\top V_j, \\alpha^{-1}) \\\\
    U_i \\sim \\mathcal{N}(\\mu_U, \\Lambda_U^{-1}), \\quad
    V_j \\sim \\mathcal{N}(\\mu_V, \\Lambda_V^{-1}) \\\\
    (\\mu_U, \\Lambda_U), (\\mu_V, \\Lambda_V) \\sim
        \\mathcal{NW}(\\mu_0, \\beta_0, W_0, \\nu_0)

with fixed, uninformative Normal–Wishart hyperparameters — the paper keeps
the original paper's defaults (``mu_0 = 0``, ``beta_0 = 2``, ``nu_0 = K``,
``W_0 = I``) and a fixed observation precision ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import ValidationError, check_positive

__all__ = ["GaussianPrior", "NormalWishartPrior", "BPMFConfig"]


@dataclass
class GaussianPrior:
    """A multivariate Gaussian prior ``N(mean, precision^-1)`` over item factors.

    One instance exists per entity class (one for users, one for movies);
    the Gibbs sampler resamples it every iteration from the Normal–Wishart
    posterior given the current factor matrix.
    """

    mean: np.ndarray
    precision: np.ndarray

    def __post_init__(self):
        self.mean = np.asarray(self.mean, dtype=np.float64)
        self.precision = np.asarray(self.precision, dtype=np.float64)
        if self.mean.ndim != 1:
            raise ValidationError("GaussianPrior.mean must be a vector")
        k = self.mean.shape[0]
        if self.precision.shape != (k, k):
            raise ValidationError(
                f"GaussianPrior.precision must be ({k}, {k}), got {self.precision.shape}")

    @property
    def num_latent(self) -> int:
        return int(self.mean.shape[0])

    @classmethod
    def standard(cls, num_latent: int) -> "GaussianPrior":
        """The ``N(0, I)`` prior used to initialise the sampler."""
        check_positive("num_latent", num_latent)
        return cls(mean=np.zeros(num_latent), precision=np.eye(num_latent))

    def copy(self) -> "GaussianPrior":
        return GaussianPrior(self.mean.copy(), self.precision.copy())


@dataclass
class NormalWishartPrior:
    """Fixed Normal–Wishart hyperprior ``NW(mu0, beta0, W0, nu0)``.

    ``W0`` is the scale matrix of the Wishart over the precision and ``nu0``
    its degrees of freedom (must be >= num_latent); ``beta0`` scales the
    precision of the conditional Gaussian over the mean.
    """

    mu0: np.ndarray
    beta0: float
    W0: np.ndarray
    nu0: float

    def __post_init__(self):
        self.mu0 = np.asarray(self.mu0, dtype=np.float64)
        self.W0 = np.asarray(self.W0, dtype=np.float64)
        k = self.mu0.shape[0]
        if self.mu0.ndim != 1:
            raise ValidationError("mu0 must be a vector")
        if self.W0.shape != (k, k):
            raise ValidationError(f"W0 must be ({k}, {k}), got {self.W0.shape}")
        check_positive("beta0", self.beta0)
        if self.nu0 < k:
            raise ValidationError(
                f"nu0 must be >= num_latent ({k}) for a proper Wishart, got {self.nu0}")

    @property
    def num_latent(self) -> int:
        return int(self.mu0.shape[0])

    @classmethod
    def uninformative(cls, num_latent: int, beta0: float = 2.0) -> "NormalWishartPrior":
        """The paper's fixed uninformative hyperprior: mu0=0, W0=I, nu0=K."""
        check_positive("num_latent", num_latent)
        return cls(mu0=np.zeros(num_latent), beta0=beta0,
                   W0=np.eye(num_latent), nu0=float(num_latent))


@dataclass
class BPMFConfig:
    """Top-level BPMF model and sampler configuration.

    Parameters
    ----------
    num_latent:
        Number of latent features ``K``.  The paper uses K in the tens; the
        Figure 2 experiments effectively fix ``K = 32``-sized dense kernels.
    alpha:
        Observation precision (inverse variance of the rating noise).
    burn_in:
        Gibbs sweeps discarded before accumulating posterior predictions.
    n_samples:
        Gibbs sweeps accumulated into the posterior-mean prediction.
    beta0:
        Normal–Wishart strength for both the user and movie hyperpriors.
    init_std:
        Standard deviation of the random initial factor matrices.
    """

    num_latent: int = 16
    alpha: float = 2.0
    burn_in: int = 10
    n_samples: int = 40
    beta0: float = 2.0
    init_std: float = 1.0
    user_hyperprior: Optional[NormalWishartPrior] = None
    movie_hyperprior: Optional[NormalWishartPrior] = None

    def __post_init__(self):
        check_positive("num_latent", self.num_latent)
        check_positive("alpha", self.alpha)
        check_positive("n_samples", self.n_samples)
        if self.burn_in < 0:
            raise ValidationError("burn_in must be >= 0")
        check_positive("init_std", self.init_std)
        if self.user_hyperprior is None:
            self.user_hyperprior = NormalWishartPrior.uninformative(
                self.num_latent, self.beta0)
        if self.movie_hyperprior is None:
            self.movie_hyperprior = NormalWishartPrior.uninformative(
                self.num_latent, self.beta0)
        for name, prior in (("user_hyperprior", self.user_hyperprior),
                            ("movie_hyperprior", self.movie_hyperprior)):
            if prior.num_latent != self.num_latent:
                raise ValidationError(
                    f"{name} dimensionality {prior.num_latent} does not match "
                    f"num_latent={self.num_latent}")

    @property
    def total_iterations(self) -> int:
        """Burn-in plus accumulation sweeps."""
        return self.burn_in + self.n_samples
