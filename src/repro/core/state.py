"""Shared sampler state.

The sequential, multicore and distributed samplers all operate on the same
state object — the two factor matrices plus the two resampled Gaussian
priors — and mutate it with the same functions, which is what makes their
outputs statistically interchangeable (the paper's accuracy-parity claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.priors import BPMFConfig, GaussianPrior
from repro.sparse.csr import RatingMatrix
from repro.utils.rng import SeedLike, as_generator

__all__ = ["BPMFState", "initialize_state"]


@dataclass
class BPMFState:
    """Mutable Gibbs-sampler state.

    Attributes
    ----------
    user_factors:
        ``(n_users, K)`` matrix ``U`` — one row per user.
    movie_factors:
        ``(n_movies, K)`` matrix ``V`` — one row per movie.
    user_prior, movie_prior:
        The per-entity Gaussian priors, resampled every iteration from
        their Normal–Wishart posteriors.
    iteration:
        Number of completed Gibbs sweeps.
    """

    user_factors: np.ndarray
    movie_factors: np.ndarray
    user_prior: GaussianPrior
    movie_prior: GaussianPrior
    iteration: int = 0

    @property
    def num_latent(self) -> int:
        return int(self.user_factors.shape[1])

    @property
    def n_users(self) -> int:
        return int(self.user_factors.shape[0])

    @property
    def n_movies(self) -> int:
        return int(self.movie_factors.shape[0])

    def predict(self, users: np.ndarray, movies: np.ndarray) -> np.ndarray:
        """Predicted ratings ``U_u · V_m`` for parallel index arrays."""
        return np.einsum("ij,ij->i",
                         self.user_factors[np.asarray(users, dtype=np.int64)],
                         self.movie_factors[np.asarray(movies, dtype=np.int64)])

    def copy(self) -> "BPMFState":
        return BPMFState(
            user_factors=self.user_factors.copy(),
            movie_factors=self.movie_factors.copy(),
            user_prior=self.user_prior.copy(),
            movie_prior=self.movie_prior.copy(),
            iteration=self.iteration,
        )


def initialize_state(ratings: RatingMatrix, config: BPMFConfig,
                     rng: SeedLike = None) -> BPMFState:
    """Draw the random initial state used by every sampler variant.

    Factors are initialised i.i.d. ``N(0, init_std^2 / K)`` so the initial
    predictions have roughly unit scale regardless of ``K``, and both priors
    start as standard Gaussians.
    """
    rng = as_generator(rng)
    k = config.num_latent
    scale = config.init_std / np.sqrt(k)
    user_factors = rng.normal(0.0, scale, size=(ratings.n_users, k))
    movie_factors = rng.normal(0.0, scale, size=(ratings.n_movies, k))
    return BPMFState(
        user_factors=user_factors,
        movie_factors=movie_factors,
        user_prior=GaussianPrior.standard(k),
        movie_prior=GaussianPrior.standard(k),
    )
