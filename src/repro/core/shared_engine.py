"""Zero-copy shared-memory process backend for the batched update engine.

:class:`~repro.core.batch_engine.BatchedUpdateEngine` removed the
per-item interpreter overhead but still executes every stacked LAPACK pass
on one core.  This module maps the same degree-bucket decomposition across
*real processes*:

* the factor matrices, the pre-drawn phase noise and the bucket gather
  blocks (indices and rating values) live in
  :mod:`multiprocessing.shared_memory` segments, so workers operate on
  zero-copy views — the only per-phase copies are staging the current
  source/noise into the segments and reading the updated rows back;
* a persistent worker pool is spawned once (lazily, at the first shared
  phase) and reused across every sweep of a run; plan segments are
  registered with the workers once per axis and cached on both sides;
* small exact-degree buckets are fused into degree-padded super-buckets
  (:func:`repro.sparse.buckets.fuse_bucket_plan`), so per-task dispatch
  overhead is amortised over many items while each member bucket is still
  computed at its exact degree — the arithmetic, and therefore the sampled
  chain, is bit-identical to the single-process batched engine;
* super-buckets are assigned to workers with a deterministic
  longest-processing-time rule: the same phase always runs the same work
  on the same worker, independent of timing.

Combined with the canonical-order pre-drawn noise (item ``i`` always
consumes ``noise[i]``), every sampler that selects ``engine="shared"``
reproduces the sequential chain exactly.

Ownership and teardown: the engine owns every segment it creates and is a
context manager; ``close()`` stops the workers and unlinks all shared
memory, and the samplers call it in a ``finally`` so an exception (or
``KeyboardInterrupt``) mid-sweep cannot leak segments.  A closed engine is
restartable — the pool and segments are re-created lazily on next use.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import sys
import traceback
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.batch_engine import BatchedUpdateEngine
from repro.core.priors import GaussianPrior
from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.sparse.buckets import (
    DegreeBucket,
    SuperBucketPlan,
    cached_bucket_plan,
    fuse_bucket_plan,
)
from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError, check_positive

__all__ = ["SharedMemoryUpdateEngine", "WorkerPool", "WorkerPoolError",
           "default_start_method"]


def default_start_method() -> str:
    """The start method the shared engine uses on this platform.

    A start method the application already fixed (e.g. an explicit
    ``set_start_method("spawn")`` because it runs CUDA or many threads) is
    always respected.  Otherwise: fork on Linux (sub-second pool spawns,
    no pickling), and the platform default everywhere else — macOS
    deliberately defaults to spawn because forking after the parent has
    initialised Accelerate/BLAS can deadlock or abort the children.
    """
    current = multiprocessing.get_start_method(allow_none=True)
    if current is not None:
        return current
    if sys.platform == "linux" \
            and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)


class WorkerPoolError(RuntimeError):
    """A shared-memory worker failed or died mid-phase."""


# ---------------------------------------------------------------------------
# shared-memory segments
# ---------------------------------------------------------------------------

class _SharedBlock:
    """One owned shared-memory segment with an ndarray layout.

    Views are materialised on demand and must not be retained across
    ``destroy()``; the engine only ever uses them inside one staging or
    copy-back statement.
    """

    def __init__(self, shape: Tuple[int, ...], dtype):
        self.shape = tuple(int(extent) for extent in shape)
        self.dtype = np.dtype(dtype)
        n_bytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        self.shm = shared_memory.SharedMemory(create=True,
                                              size=max(n_bytes, 1))

    @property
    def name(self) -> str:
        return self.shm.name

    def view(self) -> np.ndarray:
        return np.ndarray(self.shape, dtype=self.dtype, buffer=self.shm.buf)

    def descriptor(self) -> Tuple[str, Tuple[int, ...], str]:
        return (self.shm.name, self.shape, self.dtype.str)

    def destroy(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view outlived its phase
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _attach_segment(cache: Dict[str, shared_memory.SharedMemory], name: str,
                    untrack: bool) -> shared_memory.SharedMemory:
    """Attach (and cache) a segment by name on the worker side.

    With the ``spawn`` start method every worker runs its own resource
    tracker, which would unlink the segment when the worker exits — long
    before the owning process is done with it (bpo-38119).  Workers
    therefore unregister attached segments; the owner's tracker remains the
    single crash backstop.  Under ``fork`` the tracker is shared with the
    owner and registration is set-idempotent, so no unregister is needed.
    """
    segment = cache.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        cache[name] = segment
    return segment


def _segment_view(cache: Dict[str, shared_memory.SharedMemory],
                  descriptor: Tuple[str, Tuple[int, ...], str],
                  untrack: bool) -> np.ndarray:
    name, shape, dtype = descriptor
    segment = _attach_segment(cache, name, untrack)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


# ---------------------------------------------------------------------------
# the worker pool
# ---------------------------------------------------------------------------

class WorkerPool:
    """Lifecycle of a persistent process pool over per-worker task queues.

    Owns the machinery that must behave identically wherever a pool of
    shared-memory workers exists — spawning with the fork/spawn
    resource-tracker discipline, ordered stop/join/terminate teardown, and
    the response-collect loop with dead-worker detection and stale-message
    filtering.  Both the training engine
    (:class:`SharedMemoryUpdateEngine`) and the serving-cluster gateway
    (:class:`repro.serving.cluster.ShardedScorer`) run on this one
    implementation.

    ``worker_main`` is invoked in each child as
    ``worker_main(worker_id, untrack, *extra_args, task_queue,
    result_queue)``.  Workers respond with ``(kind, worker_id, sequence,
    payload...)`` tuples; sequence ``-1`` is the out-of-band channel for
    registration failures (a worker that cannot attach a segment it was
    handed), which :meth:`collect` surfaces as errors instead of silently
    discarding.
    """

    def __init__(self, n_workers: int, worker_main, extra_args: Tuple = (),
                 name_prefix: str = "repro-worker"):
        check_positive("n_workers", n_workers)
        self.n_workers = int(n_workers)
        self._worker_main = worker_main
        self._extra_args = tuple(extra_args)
        self._name_prefix = name_prefix
        self.start_method = default_start_method()
        self._context = multiprocessing.get_context(self.start_method)
        self.workers: List[Tuple] = []  # (Process, task_queue) pairs
        self._results = None
        # Health counters surfaced through owners' stats()/health frames.
        self.n_spawns = 0
        self.n_worker_deaths = 0
        self.n_registration_failures = 0

    @property
    def started(self) -> bool:
        return bool(self.workers)

    @property
    def running(self) -> bool:
        """Whether worker processes are currently alive."""
        return bool(self.workers) \
            and all(process.is_alive() for process, _ in self.workers)

    def ensure(self) -> bool:
        """Spawn the pool if needed; True when it spawned fresh.

        A pool with a dead worker (crash or external kill) is torn down
        and reported via :class:`WorkerPoolError` rather than computing a
        partial result; the caller's next use spawns a fresh pool.
        """
        if self.workers:
            if all(process.is_alive() for process, _ in self.workers):
                return False
            self.n_worker_deaths += sum(
                not process.is_alive() for process, _ in self.workers)
            self.stop()
            raise WorkerPoolError(
                f"a {self._name_prefix} worker died; the pool was torn "
                "down (the next use respawns it)")
        untrack = self.start_method != "fork"
        if self.start_method == "fork":
            # Start the resource tracker *before* forking: children then
            # inherit it, and their attach-time registrations land in the
            # parent's tracker (an idempotent set) instead of each child
            # spawning a private tracker that would report our unlinked
            # segments as leaks at exit.
            resource_tracker.ensure_running()
        self._results = self._context.Queue()
        for worker_id in range(self.n_workers):
            task_queue = self._context.Queue()
            process = self._context.Process(
                target=self._worker_main,
                args=(worker_id, untrack, *self._extra_args, task_queue,
                      self._results),
                daemon=True,
                name=f"{self._name_prefix}-{worker_id}",
            )
            process.start()
            self.workers.append((process, task_queue))
        self.n_spawns += 1
        return True

    def stop(self) -> None:
        """Stop every worker and close the queues (idempotent)."""
        for process, task_queue in self.workers:
            if process.is_alive():
                try:
                    task_queue.put(("stop",))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for process, task_queue in self.workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5.0)
            task_queue.close()
        if self._results is not None:
            self._results.close()
            self._results = None
        self.workers = []

    def stats(self) -> Dict[str, int]:
        """Pool health counters (spawns, deaths, registration failures).

        ``n_respawns`` counts pool rebuilds *after* the first spawn — each
        one means a dead worker (crash or kill) was detected and the pool
        recovered.  Owners merge these into their ``stats()`` so serving
        health endpoints can report pool churn.
        """
        return {
            "pool_workers": self.n_workers,
            "pool_spawns": self.n_spawns,
            "pool_respawns": max(0, self.n_spawns - 1),
            "pool_worker_deaths": self.n_worker_deaths,
            "pool_registration_failures": self.n_registration_failures,
        }

    def send(self, worker_id: int, message: Tuple) -> None:
        self.workers[worker_id][1].put(message)

    def broadcast(self, message: Tuple) -> None:
        """Send one message to every worker (no-op when not started)."""
        for _, task_queue in self.workers:
            task_queue.put(message)

    def collect(self, pending: Dict[int, None], sequence: int,
                label: str = "request") -> Dict[int, object]:
        """Await one response per pending worker; returns their payloads.

        Raises :class:`WorkerPoolError` when any worker reported an error
        (including out-of-band registration failures) or died mid-request;
        responses from aborted earlier sequences are discarded.
        """
        results: Dict[int, object] = {}
        errors: List[str] = []
        while pending:
            try:
                message = self._results.get(timeout=0.2)
            except queue_module.Empty:
                dead = [worker_id for worker_id in pending
                        if not self.workers[worker_id][0].is_alive()]
                for worker_id in dead:
                    pending.pop(worker_id, None)
                    self.n_worker_deaths += 1
                    errors.append(
                        f"worker {worker_id} died mid-{label} (exit code "
                        f"{self.workers[worker_id][0].exitcode})")
                continue
            kind, worker_id, msg_sequence = message[0], message[1], message[2]
            if msg_sequence == -1:
                # Registration failed on the worker: the root cause of
                # whatever this request is about to report.
                self.n_registration_failures += 1
                errors.append(f"worker {worker_id} (registration):\n"
                              f"{message[3]}")
                continue
            if msg_sequence != sequence:
                continue  # stale message from an aborted earlier request
            pending.pop(worker_id, None)
            if kind == "error":
                errors.append(f"worker {worker_id}:\n{message[3]}")
            else:
                results[worker_id] = message[3] if len(message) > 3 else None
        if errors:
            raise WorkerPoolError(
                f"shared-memory {label} failed:\n" + "\n".join(errors))
        return results


# ---------------------------------------------------------------------------
# the worker loop
# ---------------------------------------------------------------------------

def _worker_main(worker_id: int, untrack_attachments: bool,
                 engine_config: Tuple, task_queue, result_queue) -> None:
    """Execute plan/phase messages until a stop message arrives.

    The worker owns a private :class:`BatchedUpdateEngine` built from the
    parent's configuration, so the per-bucket kernel is literally the same
    code (and the same arithmetic) the single-process engine runs.
    """
    update_method, policy, compute_dtype = engine_config
    engine = BatchedUpdateEngine(update_method=update_method, policy=policy,
                                 compute_dtype=compute_dtype)
    segments: Dict[str, shared_memory.SharedMemory] = {}
    plans: Dict[int, dict] = {}

    def view(descriptor):
        return _segment_view(segments, descriptor, untrack_attachments)

    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "plan":
            _, plan_id, descriptor = message
            plans[plan_id] = descriptor
            continue
        if kind == "forget-plan":
            plans.pop(message[1], None)
            continue
        if kind != "phase":  # pragma: no cover - protocol guard
            result_queue.put(("error", worker_id, -1,
                              f"unknown message kind {kind!r}"))
            continue
        _, sequence, plan_id, phase = message
        try:
            plan = plans[plan_id]
            source = view(phase["source"])
            target = view(phase["target"])
            noise = view(phase["noise"])
            items_flat = view(plan["items"])
            neighbours_flat = view(plan["neighbours"])
            values_flat = view(plan["values"])
            prior = GaussianPrior(mean=phase["prior_mean"],
                                  precision=phase["prior_precision"])
            alpha = phase["alpha"]
            for super_id in phase["super_ids"]:
                flat_offset, row_offset, n_rows, pad, members = \
                    plan["supers"][super_id]
                block_shape = (n_rows, pad)
                neighbours = neighbours_flat[
                    flat_offset:flat_offset + n_rows * pad].reshape(block_shape)
                values = values_flat[
                    flat_offset:flat_offset + n_rows * pad].reshape(block_shape)
                items = items_flat[row_offset:row_offset + n_rows]
                for degree, member_offset, n_members in members:
                    rows = slice(member_offset, member_offset + n_members)
                    bucket = DegreeBucket(
                        degree=degree,
                        items=items[rows],
                        neighbours=neighbours[rows, :degree],
                        values=values[rows, :degree],
                    )
                    engine._update_bucket(bucket, target, source, prior,
                                          alpha, noise)
            result_queue.put(("done", worker_id, sequence))
        except BaseException:
            result_queue.put(("error", worker_id, sequence,
                              traceback.format_exc()))

    for segment in segments.values():
        segment.close()


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class _PhasePlan:
    """Main-process record of one registered (axis, items) phase plan."""

    def __init__(self, plan_id: int, fused: SuperBucketPlan,
                 n_planned_items: int, value_dtype: np.dtype):
        self.plan_id = plan_id
        self.n_planned_items = n_planned_items
        self.assignment: List[List[int]] = []
        self.blocks: List[_SharedBlock] = []
        self.descriptor: dict = {}
        self.planned_rows = (
            np.concatenate([sb.items for sb in fused.super_buckets])
            if fused.super_buckets else np.empty(0, dtype=np.int64))

        total_cells = sum(sb.n_items * sb.pad_degree
                          for sb in fused.super_buckets)
        items_block = _SharedBlock((self.planned_rows.shape[0],), np.int64)
        neighbours_block = _SharedBlock((total_cells,), np.int64)
        values_block = _SharedBlock((total_cells,), value_dtype)
        self.blocks = [items_block, neighbours_block, values_block]

        items_view = items_block.view()
        neighbours_view = neighbours_block.view()
        values_view = values_block.view()
        supers = []
        flat_offset = 0
        row_offset = 0
        for super_bucket in fused.super_buckets:
            n_rows, pad = super_bucket.n_items, super_bucket.pad_degree
            cells = n_rows * pad
            items_view[row_offset:row_offset + n_rows] = super_bucket.items
            neighbours_view[flat_offset:flat_offset + cells] = \
                super_bucket.neighbours.ravel()
            values_view[flat_offset:flat_offset + cells] = \
                super_bucket.values.ravel()
            supers.append((
                flat_offset, row_offset, n_rows, pad,
                tuple((member.degree, member.row_offset, member.n_items)
                      for member in super_bucket.members),
            ))
            flat_offset += cells
            row_offset += n_rows
        self.descriptor = {
            "items": items_block.descriptor(),
            "neighbours": neighbours_block.descriptor(),
            "values": values_block.descriptor(),
            "supers": tuple(supers),
        }

    def destroy(self) -> None:
        for block in self.blocks:
            block.destroy()
        self.blocks = []


class SharedMemoryUpdateEngine(BatchedUpdateEngine):
    """Process-parallel batched engine over shared-memory segments.

    Parameters
    ----------
    update_method, policy, compute_dtype:
        As for :class:`BatchedUpdateEngine`; the workers inherit them, so
        method selection and precision behave identically.
    n_workers:
        Worker process count; default: the machine's CPU count.
    tasks_per_worker:
        Fusion granularity — the planner targets roughly ``n_workers *
        tasks_per_worker`` super-buckets per phase, enough slack for the
        LPT assignment to balance skewed degree distributions.

    Notes
    -----
    ``update_items`` ignores ``parallel_map``: this engine schedules its
    own execution (``manages_parallelism`` is True), so wrapping it in a
    thread pool would only add contention.
    """

    name = "shared"
    manages_parallelism = True

    #: Cached phase plans (each pins ~2x its axis-subset's rating data in
    #: shared memory), evicted LRU beyond this bound.  Sized for the
    #: distributed sampler's working set: 2 phases x the ranks of a large
    #: simulated world, whose per-rank subsets jointly hold the data once.
    MAX_PHASE_PLANS = 64

    def __init__(self, update_method: Optional[UpdateMethod] = None,
                 policy: Optional[HybridUpdatePolicy] = None,
                 compute_dtype: str = "float64",
                 n_workers: Optional[int] = None,
                 tasks_per_worker: int = 8):
        super().__init__(update_method, policy, compute_dtype)
        if n_workers is None:
            n_workers = max(1, os.cpu_count() or 1)
        check_positive("n_workers", n_workers)
        check_positive("tasks_per_worker", tasks_per_worker)
        self.n_workers = int(n_workers)
        self.tasks_per_worker = int(tasks_per_worker)
        config = (self.update_method, self.policy, self.compute_dtype)
        self._pool = WorkerPool(self.n_workers, _worker_main,
                                extra_args=(config,),
                                name_prefix="repro-shared-worker")
        self._sequence = itertools.count()
        self._plan_ids = itertools.count()
        # key -> (axis, plan): the axis reference keeps the key's id() valid.
        self._phase_plans: "Dict[Tuple, Tuple[CompressedAxis, _PhasePlan]]" = {}
        self._factor_blocks: Dict[Tuple, _SharedBlock] = {}

    # -- pool lifecycle ---------------------------------------------------

    @property
    def pool_running(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool.running

    @property
    def _workers(self) -> List[Tuple]:
        """The pool's (Process, task_queue) pairs (tests kill through it)."""
        return self._pool.workers

    def _ensure_pool(self) -> None:
        try:
            self._pool.ensure()
        except WorkerPoolError:
            # A worker died (crash or external kill): tear everything down
            # (the pool itself already stopped) so the segments cannot
            # leak, and fail loudly rather than computing a partial phase.
            self.close()
            raise

    def close(self) -> None:
        """Stop the pool and unlink every owned shared-memory segment.

        Idempotent, exception-safe, and called by the samplers in a
        ``finally``; the engine is reusable afterwards (pool and plans are
        rebuilt lazily on the next phase).
        """
        self._pool.stop()
        for _, plan in self._phase_plans.values():
            plan.destroy()
        self._phase_plans = {}
        for block in self._factor_blocks.values():
            block.destroy()
        self._factor_blocks = {}

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- plan + factor staging -------------------------------------------

    def _shared_plan(self, axis: CompressedAxis, items: Optional[np.ndarray],
                     num_latent: int) -> _PhasePlan:
        key = (id(axis),
               None if items is None else np.asarray(items, np.int64).tobytes(),
               int(num_latent))
        entry = self._phase_plans.get(key)
        # Entries keep the axis alongside the plan: id() values are only
        # unique while the object lives, so the identity check prevents a
        # recycled id from silently serving shared-memory gathers built
        # from a previous dataset's ratings.
        if entry is not None and entry[0] is axis:
            # Refresh recency so the eviction below is LRU, not FIFO.
            self._phase_plans.pop(key)
            self._phase_plans[key] = entry
            return entry[1]
        bucket_plan = cached_bucket_plan(axis, items, value_dtype=self._dtype)
        fused = fuse_bucket_plan(
            bucket_plan, num_latent,
            n_tasks_hint=self.n_workers * self.tasks_per_worker)
        plan = _PhasePlan(next(self._plan_ids), fused,
                          bucket_plan.n_planned_items, self._dtype)
        plan.assignment = fused.assign_workers(self.n_workers)
        if entry is not None:  # recycled id: drop the stale entry's segments
            self._phase_plans.pop(key)
            self._forget_plan(entry[1])
        while len(self._phase_plans) >= self.MAX_PHASE_PLANS:
            _, evicted = self._phase_plans.pop(next(iter(self._phase_plans)))
            self._forget_plan(evicted)
        self._pool.broadcast(("plan", plan.plan_id, plan.descriptor))
        self._phase_plans[key] = (axis, plan)
        return plan

    def _forget_plan(self, plan: _PhasePlan) -> None:
        self._pool.broadcast(("forget-plan", plan.plan_id))
        plan.destroy()

    def _factor_block(self, role: str, shape: Tuple[int, ...]) -> _SharedBlock:
        key = (role, tuple(shape))
        block = self._factor_blocks.get(key)
        if block is None:
            block = _SharedBlock(shape, self._dtype)
            self._factor_blocks[key] = block
        return block

    def _stage(self, role: str, array: np.ndarray) -> _SharedBlock:
        block = self._factor_block(role, array.shape)
        block.view()[...] = array
        return block

    # -- phase execution --------------------------------------------------

    def update_items(self, target, source, axis, prior, alpha, noise,
                     items=None, parallel_map=None):
        del parallel_map  # this engine schedules its own parallelism
        self._ensure_pool()
        try:
            plan = self._shared_plan(axis, items, prior.num_latent)
            if plan.planned_rows.size == 0:
                return plan.n_planned_items
            source_block = self._stage(
                "source", np.asarray(source, dtype=self._dtype))
            noise_block = self._stage(
                "noise", np.asarray(noise, dtype=self._dtype))
            target_block = self._factor_block("target", target.shape)
            sequence = next(self._sequence)
            phase = {
                "source": source_block.descriptor(),
                "target": target_block.descriptor(),
                "noise": noise_block.descriptor(),
                "prior_mean": np.asarray(prior.mean, dtype=np.float64),
                "prior_precision": np.asarray(prior.precision,
                                              dtype=np.float64),
                "alpha": float(alpha),
            }
            pending: Dict[int, None] = {}
            for worker_id, super_ids in enumerate(plan.assignment):
                if not super_ids:
                    continue
                self._pool.send(worker_id,
                                ("phase", sequence, plan.plan_id,
                                 {**phase, "super_ids": tuple(super_ids)}))
                pending[worker_id] = None
            self._pool.collect(pending, sequence, label="phase")
            rows = plan.planned_rows
            target[rows] = target_block.view()[rows]
            return plan.n_planned_items
        except WorkerPoolError:
            # A failed phase leaves the pool in an unknown state (partially
            # written target rows, possibly dead workers): tear down so
            # nothing leaks and the next use starts clean.
            self.close()
            raise
