"""Core BPMF algorithm (the paper's primary computational kernel).

This package implements the Bayesian Probabilistic Matrix Factorization
Gibbs sampler of Salakhutdinov & Mnih (ICML 2008) exactly as used by the
paper:

* Normal–Wishart hyperpriors over the per-user and per-movie Gaussian
  priors (:mod:`repro.core.priors`, :mod:`repro.core.wishart`);
* the conditional update of a single user/movie factor given the factors
  of its rating partners, available through three interchangeable kernels
  — rank-one Cholesky updates, a serial Cholesky solve and a blocked
  "parallel" Cholesky — plus the hybrid policy that picks between them
  based on the item's rating count (:mod:`repro.core.updates`);
* the sequential Gibbs sampler, posterior-mean prediction and RMSE
  evaluation (:mod:`repro.core.gibbs`, :mod:`repro.core.predict`,
  :mod:`repro.core.metrics`).

The multicore (:mod:`repro.multicore`) and distributed
(:mod:`repro.distributed`) samplers are built from the same state and
update functions, which is what guarantees the paper's "all versions reach
the same level of prediction accuracy" property.
"""

from repro.core.priors import BPMFConfig, NormalWishartPrior, GaussianPrior
from repro.core.wishart import (
    sample_wishart,
    sample_normal_wishart,
    normal_wishart_posterior,
    normal_wishart_posterior_from_stats,
    sample_hyperparameters,
)
from repro.core.updates import (
    UpdateMethod,
    HybridUpdatePolicy,
    conditional_distribution,
    sample_item_rank_one,
    sample_item_serial_cholesky,
    sample_item_parallel_cholesky,
    sample_item,
    cholesky_rank_one_update,
)
from repro.core.state import BPMFState, initialize_state
from repro.core.batch_engine import (
    UpdateEngine,
    ReferenceUpdateEngine,
    BatchedUpdateEngine,
    available_engines,
    make_update_engine,
)
from repro.core.shared_engine import SharedMemoryUpdateEngine, WorkerPoolError
from repro.core.gibbs import GibbsSampler, SamplerOptions, BPMFResult
from repro.core.predict import (
    FactorMeanAccumulator,
    PosteriorPredictor,
    predict_ratings,
)
from repro.core.metrics import rmse, mae, coverage_interval
from repro.core.diagnostics import (
    ChainDiagnostics,
    effective_sample_size,
    potential_scale_reduction,
    run_chains,
)
from repro.core.recommend import (
    Recommendation,
    recommend_for_user,
    recommend_batch,
    ranking_metrics,
)
from repro.core.sideinfo import MacauGibbsSampler, SideInfo, sample_link_matrix
from repro.core.model import BPMF

__all__ = [
    "BPMFConfig",
    "NormalWishartPrior",
    "GaussianPrior",
    "sample_wishart",
    "sample_normal_wishart",
    "normal_wishart_posterior",
    "normal_wishart_posterior_from_stats",
    "sample_hyperparameters",
    "UpdateMethod",
    "HybridUpdatePolicy",
    "conditional_distribution",
    "sample_item_rank_one",
    "sample_item_serial_cholesky",
    "sample_item_parallel_cholesky",
    "sample_item",
    "cholesky_rank_one_update",
    "BPMFState",
    "initialize_state",
    "UpdateEngine",
    "ReferenceUpdateEngine",
    "BatchedUpdateEngine",
    "available_engines",
    "make_update_engine",
    "SharedMemoryUpdateEngine",
    "WorkerPoolError",
    "GibbsSampler",
    "SamplerOptions",
    "BPMFResult",
    "PosteriorPredictor",
    "FactorMeanAccumulator",
    "predict_ratings",
    "rmse",
    "mae",
    "coverage_interval",
    "ChainDiagnostics",
    "effective_sample_size",
    "potential_scale_reduction",
    "run_chains",
    "Recommendation",
    "recommend_for_user",
    "recommend_batch",
    "ranking_metrics",
    "MacauGibbsSampler",
    "SideInfo",
    "sample_link_matrix",
    "BPMF",
]
