"""MCMC convergence diagnostics for BPMF chains.

The paper runs a fixed number of Gibbs sweeps; in practice a user needs to
know whether that was enough.  This module provides the standard
diagnostics, computed on scalar summaries of the chain (per-sample test
RMSE, or per-sample predictions of selected cells):

* :func:`potential_scale_reduction` — the Gelman–Rubin R-hat statistic over
  several independent chains (values close to 1 indicate convergence);
* :func:`effective_sample_size` — autocorrelation-based ESS of a single
  chain;
* :func:`run_chains` — convenience helper that runs several independently
  seeded samplers and collects their traces for the two statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.gibbs import BPMFResult, GibbsSampler
from repro.core.priors import BPMFConfig
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.validation import ValidationError

__all__ = [
    "potential_scale_reduction",
    "effective_sample_size",
    "ChainDiagnostics",
    "run_chains",
]


def potential_scale_reduction(chains: np.ndarray) -> float:
    """Gelman–Rubin R-hat for ``(n_chains, n_samples)`` scalar traces.

    Uses the classic between/within-chain variance ratio.  Values near 1.0
    (conventionally below 1.1) indicate the chains are sampling the same
    distribution; requires at least two chains and two samples per chain.
    """
    chains = np.asarray(chains, dtype=np.float64)
    if chains.ndim != 2:
        raise ValidationError("chains must be a 2-D (n_chains, n_samples) array")
    n_chains, n_samples = chains.shape
    if n_chains < 2 or n_samples < 2:
        raise ValidationError("R-hat needs >= 2 chains with >= 2 samples each")

    chain_means = chains.mean(axis=1)
    chain_vars = chains.var(axis=1, ddof=1)
    within = chain_vars.mean()
    between = n_samples * chain_means.var(ddof=1)
    if within == 0.0:
        return 1.0
    pooled = ((n_samples - 1) / n_samples) * within + between / n_samples
    return float(np.sqrt(pooled / within))


def effective_sample_size(trace: np.ndarray, max_lag: int | None = None) -> float:
    """Autocorrelation-based effective sample size of one scalar trace.

    Implements the initial-positive-sequence estimator: autocorrelations are
    summed until the first non-positive value.  The result is clipped to
    ``[1, n]``.
    """
    trace = np.asarray(trace, dtype=np.float64).ravel()
    n = trace.shape[0]
    if n < 2:
        raise ValidationError("effective_sample_size needs at least 2 samples")
    centered = trace - trace.mean()
    variance = float(centered @ centered) / n
    if variance == 0.0:
        return float(n)
    if max_lag is None:
        max_lag = min(n - 1, 200)

    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = float(centered[:-lag] @ centered[lag:]) / (n * variance)
        if rho <= 0.0:
            break
        rho_sum += rho
    ess = n / (1.0 + 2.0 * rho_sum)
    return float(min(max(ess, 1.0), n))


@dataclass
class ChainDiagnostics:
    """Traces and summary diagnostics for several independently seeded chains."""

    traces: np.ndarray  # (n_chains, n_samples) per-sample test RMSE
    results: List[BPMFResult]

    @property
    def n_chains(self) -> int:
        return int(self.traces.shape[0])

    @property
    def r_hat(self) -> float:
        return potential_scale_reduction(self.traces)

    def ess_per_chain(self) -> np.ndarray:
        return np.array([effective_sample_size(trace) for trace in self.traces])

    def summary(self) -> Dict[str, float]:
        return {
            "n_chains": float(self.n_chains),
            "n_samples": float(self.traces.shape[1]),
            "r_hat": self.r_hat,
            "min_ess": float(self.ess_per_chain().min()),
            "mean_final_rmse": float(np.mean([r.final_rmse for r in self.results])),
            "std_final_rmse": float(np.std([r.final_rmse for r in self.results])),
        }


def run_chains(
    train: RatingMatrix,
    split: RatingSplit,
    config: BPMFConfig,
    n_chains: int = 3,
    seeds: Sequence[int] | None = None,
    sampler_factory: Callable[[BPMFConfig], GibbsSampler] | None = None,
) -> ChainDiagnostics:
    """Run several independently seeded chains and collect their RMSE traces."""
    if n_chains < 2:
        raise ValidationError("run_chains needs at least 2 chains")
    if seeds is None:
        seeds = list(range(n_chains))
    elif len(seeds) != n_chains:
        raise ValidationError("seeds must have one entry per chain")
    sampler_factory = sampler_factory or (lambda cfg: GibbsSampler(cfg))

    results = []
    traces = []
    for seed in seeds:
        result = sampler_factory(config).run(train, split, seed=seed)
        results.append(result)
        traces.append(result.rmse_per_sample)
    return ChainDiagnostics(traces=np.array(traces), results=results)
