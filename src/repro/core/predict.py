"""Posterior-mean prediction.

BPMF predictions average ``U_u · V_m`` over the Gibbs samples retained
after burn-in (a Rao-Blackwellised Monte-Carlo estimate of the posterior
predictive mean).  :class:`PosteriorPredictor` accumulates this average
incrementally so no per-sample factor matrices need to be stored — the
same trick the reference implementation uses to keep memory bounded on
large datasets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.state import BPMFState
from repro.utils.validation import ValidationError

__all__ = ["PosteriorPredictor", "FactorMeanAccumulator", "predict_ratings"]


def _check_index_range(name: str, indices: np.ndarray, n: int) -> None:
    """Require every index in ``[0, n)``; raise :class:`ValidationError`.

    Raw numpy fancy indexing would raise an ``IndexError`` for indices
    ``>= n`` but silently *wrap* negative ones — both are wrong answers for
    a prediction API, so the public entry points validate explicitly.
    """
    if indices.size == 0:
        return
    lo, hi = int(indices.min()), int(indices.max())
    if lo < 0 or hi >= n:
        bad = lo if lo < 0 else hi
        raise ValidationError(
            f"{name} contains index {bad}, outside the valid range [0, {n})")


class PosteriorPredictor:
    """Running average of test-point predictions over Gibbs samples.

    Parameters
    ----------
    test_users, test_movies:
        Index arrays of the held-out cells to track.
    keep_samples:
        When true, every per-sample prediction vector is kept (needed for
        posterior-interval/coverage evaluation); otherwise only the running
        mean is stored.
    """

    def __init__(self, test_users: np.ndarray, test_movies: np.ndarray,
                 keep_samples: bool = False):
        self.test_users = np.asarray(test_users, dtype=np.int64).ravel()
        self.test_movies = np.asarray(test_movies, dtype=np.int64).ravel()
        if self.test_users.shape != self.test_movies.shape:
            raise ValidationError("test_users and test_movies must align")
        if self.test_users.size:
            if int(self.test_users.min()) < 0:
                raise ValidationError("test_users contains negative indices")
            if int(self.test_movies.min()) < 0:
                raise ValidationError("test_movies contains negative indices")
        self._sum = np.zeros(self.test_users.shape[0])
        self._count = 0
        self._keep = keep_samples
        self._samples: list[np.ndarray] = []

    @property
    def n_samples(self) -> int:
        """Number of Gibbs samples accumulated so far."""
        return self._count

    @property
    def prediction_sum(self) -> np.ndarray:
        """The raw running sum (serialized by the checkpoint store)."""
        return self._sum

    def restore(self, prediction_sum: np.ndarray, n_samples: int) -> None:
        """Reload accumulator state saved by a checkpoint (exact resume)."""
        prediction_sum = np.asarray(prediction_sum, dtype=np.float64)
        if prediction_sum.shape != self._sum.shape:
            raise ValidationError(
                f"checkpointed prediction sum has shape {prediction_sum.shape}, "
                f"expected {self._sum.shape}")
        if n_samples < 0:
            raise ValidationError("n_samples must be >= 0")
        self._sum = prediction_sum.copy()
        self._count = int(n_samples)

    def accumulate(self, state: BPMFState) -> np.ndarray:
        """Add one posterior sample; returns that sample's predictions."""
        _check_index_range("test_users", self.test_users, state.n_users)
        _check_index_range("test_movies", self.test_movies, state.n_movies)
        predictions = state.predict(self.test_users, self.test_movies)
        self._sum += predictions
        self._count += 1
        if self._keep:
            self._samples.append(predictions)
        return predictions

    def mean_prediction(self) -> np.ndarray:
        """The posterior-mean prediction (requires >= 1 accumulated sample)."""
        if self._count == 0:
            raise ValidationError("no samples accumulated yet")
        return self._sum / self._count

    def sample_matrix(self) -> np.ndarray:
        """All per-sample predictions as ``(n_samples, n_test)`` (keep_samples only)."""
        if not self._keep:
            raise ValidationError("predictor was created with keep_samples=False")
        return np.array(self._samples)


class FactorMeanAccumulator:
    """Running average of the *factor matrices* over post-burn-in samples.

    :class:`PosteriorPredictor` averages predictions at a fixed set of test
    cells; a serving system instead needs to answer queries for arbitrary
    (user, movie) pairs after training ends.  This accumulator applies the
    same memory-bounded running-sum trick to ``U`` and ``V`` themselves, so
    a posterior snapshot can carry approximate posterior-mean factors
    without storing per-sample matrices.  (Note the usual caveat: the dot
    product of mean factors is not exactly the mean of per-sample dot
    products, but it is the standard serving-time compromise.)
    """

    def __init__(self, n_users: int, n_movies: int, num_latent: int):
        self._user_sum = np.zeros((n_users, num_latent))
        self._movie_sum = np.zeros((n_movies, num_latent))
        self._count = 0

    @classmethod
    def for_state(cls, state: BPMFState) -> "FactorMeanAccumulator":
        """An empty accumulator shaped like ``state``'s factor matrices."""
        return cls(state.n_users, state.n_movies, state.num_latent)

    @property
    def n_samples(self) -> int:
        """Number of Gibbs samples accumulated so far."""
        return self._count

    @property
    def user_sum(self) -> np.ndarray:
        """Raw running sum of ``U`` (serialized by the checkpoint store)."""
        return self._user_sum

    @property
    def movie_sum(self) -> np.ndarray:
        """Raw running sum of ``V`` (serialized by the checkpoint store)."""
        return self._movie_sum

    def accumulate(self, state: BPMFState) -> None:
        """Add one posterior sample's factor matrices."""
        if state.user_factors.shape != self._user_sum.shape \
                or state.movie_factors.shape != self._movie_sum.shape:
            raise ValidationError(
                "state factor shapes do not match the accumulator")
        self._user_sum += state.user_factors
        self._movie_sum += state.movie_factors
        self._count += 1

    def restore(self, user_sum: np.ndarray, movie_sum: np.ndarray,
                n_samples: int) -> None:
        """Reload accumulator state saved by a checkpoint (exact resume)."""
        user_sum = np.asarray(user_sum, dtype=np.float64)
        movie_sum = np.asarray(movie_sum, dtype=np.float64)
        if user_sum.shape != self._user_sum.shape \
                or movie_sum.shape != self._movie_sum.shape:
            raise ValidationError(
                "checkpointed factor sums do not match the accumulator shapes")
        if n_samples < 0:
            raise ValidationError("n_samples must be >= 0")
        self._user_sum = user_sum.copy()
        self._movie_sum = movie_sum.copy()
        self._count = int(n_samples)

    def mean_user_factors(self) -> np.ndarray:
        """Posterior-mean ``U`` (requires >= 1 accumulated sample)."""
        if self._count == 0:
            raise ValidationError("no samples accumulated yet")
        return self._user_sum / self._count

    def mean_movie_factors(self) -> np.ndarray:
        """Posterior-mean ``V`` (requires >= 1 accumulated sample)."""
        if self._count == 0:
            raise ValidationError("no samples accumulated yet")
        return self._movie_sum / self._count

    def mean_state(self, template: BPMFState) -> BPMFState:
        """A :class:`BPMFState` carrying the mean factors.

        Priors and iteration count are copied from ``template`` (typically
        the last Gibbs sample) — they are metadata here, not averages.
        """
        return BPMFState(
            user_factors=self.mean_user_factors(),
            movie_factors=self.mean_movie_factors(),
            user_prior=template.user_prior.copy(),
            movie_prior=template.movie_prior.copy(),
            iteration=template.iteration,
        )


def predict_ratings(state: BPMFState, users: np.ndarray, movies: np.ndarray,
                    clip: Optional[tuple[float, float]] = None) -> np.ndarray:
    """Single-sample prediction ``U_u · V_m`` with optional range clipping.

    Clipping to the rating scale (e.g. ``(0.5, 5.0)`` for MovieLens) is the
    standard post-processing for star-rating data.
    """
    users = np.asarray(users, dtype=np.int64).ravel()
    movies = np.asarray(movies, dtype=np.int64).ravel()
    if users.shape != movies.shape:
        raise ValidationError("users and movies must align")
    _check_index_range("users", users, state.n_users)
    _check_index_range("movies", movies, state.n_movies)
    predictions = state.predict(users, movies)
    if clip is not None:
        lo, hi = clip
        if lo > hi:
            raise ValidationError(f"invalid clip range ({lo}, {hi})")
        predictions = np.clip(predictions, lo, hi)
    return predictions
