"""Posterior-mean prediction.

BPMF predictions average ``U_u · V_m`` over the Gibbs samples retained
after burn-in (a Rao-Blackwellised Monte-Carlo estimate of the posterior
predictive mean).  :class:`PosteriorPredictor` accumulates this average
incrementally so no per-sample factor matrices need to be stored — the
same trick the reference implementation uses to keep memory bounded on
large datasets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.state import BPMFState
from repro.utils.validation import ValidationError

__all__ = ["PosteriorPredictor", "predict_ratings"]


class PosteriorPredictor:
    """Running average of test-point predictions over Gibbs samples.

    Parameters
    ----------
    test_users, test_movies:
        Index arrays of the held-out cells to track.
    keep_samples:
        When true, every per-sample prediction vector is kept (needed for
        posterior-interval/coverage evaluation); otherwise only the running
        mean is stored.
    """

    def __init__(self, test_users: np.ndarray, test_movies: np.ndarray,
                 keep_samples: bool = False):
        self.test_users = np.asarray(test_users, dtype=np.int64).ravel()
        self.test_movies = np.asarray(test_movies, dtype=np.int64).ravel()
        if self.test_users.shape != self.test_movies.shape:
            raise ValidationError("test_users and test_movies must align")
        self._sum = np.zeros(self.test_users.shape[0])
        self._count = 0
        self._keep = keep_samples
        self._samples: list[np.ndarray] = []

    @property
    def n_samples(self) -> int:
        """Number of Gibbs samples accumulated so far."""
        return self._count

    def accumulate(self, state: BPMFState) -> np.ndarray:
        """Add one posterior sample; returns that sample's predictions."""
        predictions = state.predict(self.test_users, self.test_movies)
        self._sum += predictions
        self._count += 1
        if self._keep:
            self._samples.append(predictions)
        return predictions

    def mean_prediction(self) -> np.ndarray:
        """The posterior-mean prediction (requires >= 1 accumulated sample)."""
        if self._count == 0:
            raise ValidationError("no samples accumulated yet")
        return self._sum / self._count

    def sample_matrix(self) -> np.ndarray:
        """All per-sample predictions as ``(n_samples, n_test)`` (keep_samples only)."""
        if not self._keep:
            raise ValidationError("predictor was created with keep_samples=False")
        return np.array(self._samples)


def predict_ratings(state: BPMFState, users: np.ndarray, movies: np.ndarray,
                    clip: Optional[tuple[float, float]] = None) -> np.ndarray:
    """Single-sample prediction ``U_u · V_m`` with optional range clipping.

    Clipping to the rating scale (e.g. ``(0.5, 5.0)`` for MovieLens) is the
    standard post-processing for star-rating data.
    """
    predictions = state.predict(users, movies)
    if clip is not None:
        lo, hi = clip
        if lo > hi:
            raise ValidationError(f"invalid clip range ({lo}, {hi})")
        predictions = np.clip(predictions, lo, hi)
    return predictions
