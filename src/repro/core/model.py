"""High-level estimator facade (``fit`` / ``predict`` / ``recommend``).

The sampler classes expose every knob of the reproduction; most downstream
users just want "train a recommender on this sparse matrix".  :class:`BPMF`
wraps the samplers behind an estimator-style interface and takes care of
the practical details that otherwise trip users up:

* centring the ratings on the training mean (the factor priors are
  zero-mean, so uncentred 1–5-star or pIC50 data converges slowly);
* choosing the execution backend (sequential / multicore / distributed /
  side-information) from a single ``backend=`` argument;
* adding the mean back and optionally clipping to the rating scale at
  prediction time;
* exposing top-N recommendation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.gibbs import BPMFResult, GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.core.recommend import Recommendation, recommend_for_user
from repro.core.sideinfo import MacauGibbsSampler, SideInfo
from repro.core.state import BPMFState
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions
from repro.multicore.sampler import MulticoreGibbsSampler, MulticoreOptions
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.rng import SeedLike
from repro.utils.validation import ValidationError, check_in

__all__ = ["BPMF"]

_BACKENDS = ("sequential", "multicore", "distributed", "sideinfo")


@dataclass
class BPMF:
    """Estimator-style interface to the BPMF samplers.

    Parameters
    ----------
    num_latent, alpha, burn_in, n_samples:
        Forwarded to :class:`~repro.core.priors.BPMFConfig`.
    backend:
        ``"sequential"`` (default), ``"multicore"``, ``"distributed"`` or
        ``"sideinfo"`` (requires ``user_side`` and/or ``movie_side``).
    center:
        Subtract the training mean before sampling and add it back at
        prediction time (recommended for star-rating / pIC50 data).
    clip:
        Optional ``(low, high)`` range applied to predictions, e.g.
        ``(0.5, 5.0)`` for MovieLens stars.
    n_threads, n_ranks:
        Backend-specific parallelism knobs.
    user_side, movie_side:
        :class:`~repro.core.sideinfo.SideInfo` for the ``"sideinfo"`` backend.

    Example
    -------
    >>> from repro.core.model import BPMF
    >>> from repro.datasets import make_low_rank_dataset
    >>> data = make_low_rank_dataset(n_users=60, n_movies=40, density=0.3, seed=0)
    >>> model = BPMF(num_latent=4, burn_in=2, n_samples=4).fit(
    ...     data.split.train, data.split, seed=0)
    >>> predictions = model.predict(data.split.test_users, data.split.test_movies)
    >>> predictions.shape == data.split.test_values.shape
    True
    """

    num_latent: int = 16
    alpha: float = 2.0
    burn_in: int = 10
    n_samples: int = 40
    backend: str = "sequential"
    center: bool = True
    clip: Optional[Tuple[float, float]] = None
    n_threads: int = 1
    n_ranks: int = 4
    user_side: Optional[SideInfo] = None
    movie_side: Optional[SideInfo] = None
    config_overrides: Dict = field(default_factory=dict)

    def __post_init__(self):
        check_in("backend", self.backend, _BACKENDS)
        if self.backend == "sideinfo" and self.user_side is None \
                and self.movie_side is None:
            raise ValidationError(
                "backend='sideinfo' requires user_side and/or movie_side")
        self._result: Optional[BPMFResult] = None
        self._offset: float = 0.0
        self._train: Optional[RatingMatrix] = None

    # -- fitting -------------------------------------------------------------

    def _make_config(self) -> BPMFConfig:
        return BPMFConfig(num_latent=self.num_latent, alpha=self.alpha,
                          burn_in=self.burn_in, n_samples=self.n_samples,
                          **self.config_overrides)

    def _centred(self, train: RatingMatrix,
                 split: Optional[RatingSplit]) -> Tuple[RatingMatrix,
                                                        Optional[RatingSplit]]:
        if not self.center or train.nnz == 0:
            self._offset = 0.0
            return train, split
        self._offset = train.mean_rating()
        users, movies, values = train.triplets()
        centred_train = RatingMatrix.from_arrays(
            train.n_users, train.n_movies, users, movies, values - self._offset)
        centred_split = None
        if split is not None:
            centred_split = RatingSplit(
                train=centred_train,
                test_users=split.test_users,
                test_movies=split.test_movies,
                test_values=split.test_values - self._offset,
            )
        return centred_train, centred_split

    def fit(self, train: RatingMatrix, split: Optional[RatingSplit] = None,
            seed: SeedLike = 0) -> "BPMF":
        """Run the configured sampler on ``train``; returns ``self``."""
        config = self._make_config()
        centred_train, centred_split = self._centred(train, split)
        self._train = train

        if self.backend == "sequential":
            result = GibbsSampler(config).run(centred_train, centred_split, seed=seed)
        elif self.backend == "multicore":
            result = MulticoreGibbsSampler(
                config, MulticoreOptions(n_threads=self.n_threads)
            ).run(centred_train, centred_split, seed=seed)
        elif self.backend == "distributed":
            result, _ = DistributedGibbsSampler(
                config, DistributedOptions(n_ranks=self.n_ranks)
            ).run(centred_train, centred_split, seed=seed)
        else:  # sideinfo
            result = MacauGibbsSampler(
                config, SamplerOptions(), user_side=self.user_side,
                movie_side=self.movie_side
            ).run(centred_train, centred_split, seed=seed)
        self._result = result
        return self

    # -- inspection ------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    def _require_fitted(self) -> BPMFResult:
        if self._result is None:
            raise ValidationError("model is not fitted yet; call fit() first")
        return self._result

    @property
    def result(self) -> BPMFResult:
        """The underlying sampler result (traces, final state)."""
        return self._require_fitted()

    @property
    def state(self) -> BPMFState:
        """The last Gibbs sample's factor matrices."""
        return self._require_fitted().state

    @property
    def offset(self) -> float:
        """The training mean subtracted before sampling (0 when center=False)."""
        self._require_fitted()
        return self._offset

    @property
    def test_rmse(self) -> float:
        """Posterior-mean RMSE on the held-out split passed to :meth:`fit`."""
        return self._require_fitted().final_rmse

    # -- prediction ------------------------------------------------------------

    def predict(self, users: np.ndarray, movies: np.ndarray) -> np.ndarray:
        """Predicted ratings (mean-restored, optionally clipped) for index pairs."""
        result = self._require_fitted()
        predictions = result.state.predict(users, movies) + self._offset
        if self.clip is not None:
            predictions = np.clip(predictions, self.clip[0], self.clip[1])
        return predictions

    def predict_matrix(self, users: Sequence[int],
                       movies: Sequence[int]) -> np.ndarray:
        """Dense prediction block for the cross product of users x movies."""
        users = np.asarray(users, dtype=np.int64)
        movies = np.asarray(movies, dtype=np.int64)
        grid_users = np.repeat(users, movies.shape[0])
        grid_movies = np.tile(movies, users.shape[0])
        return self.predict(grid_users, grid_movies).reshape(users.shape[0],
                                                             movies.shape[0])

    def recommend(self, user: int, n: int = 10,
                  exclude_rated: bool = True) -> Recommendation:
        """Top-``n`` unseen movies for ``user`` by predicted rating."""
        result = self._require_fitted()
        exclude = self._train if exclude_rated else None
        recommendation = recommend_for_user(result.state, user, n=n,
                                            exclude=exclude, offset=self._offset)
        if self.clip is not None:
            clipped = np.clip(recommendation.scores, self.clip[0], self.clip[1])
            recommendation = Recommendation(user=recommendation.user,
                                            items=recommendation.items,
                                            scores=clipped)
        return recommendation
