"""Prediction-quality metrics.

The paper evaluates all implementations with the root mean square error
(RMSE) on held-out test ratings; MAE and a simple posterior coverage check
are provided as well because BPMF's selling point over ALS/SGD is that it
produces calibrated uncertainty.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["rmse", "mae", "coverage_interval"]


def _check_pair(predicted: np.ndarray, actual: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=np.float64).ravel()
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if predicted.shape != actual.shape:
        raise ValidationError(
            f"predicted and actual must align, got {predicted.shape} vs {actual.shape}")
    if predicted.size == 0:
        raise ValidationError("cannot compute a metric over zero predictions")
    return predicted, actual


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean squared error between predictions and observed ratings."""
    predicted, actual = _check_pair(predicted, actual)
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean absolute error between predictions and observed ratings."""
    predicted, actual = _check_pair(predicted, actual)
    return float(np.mean(np.abs(predicted - actual)))


def coverage_interval(samples: np.ndarray, actual: np.ndarray,
                      level: float = 0.9) -> float:
    """Fraction of test ratings inside the central ``level`` posterior interval.

    ``samples`` has shape ``(n_posterior_samples, n_test)``: one row per
    retained Gibbs sweep.  A well-calibrated sampler gives coverage close to
    ``level``; this is the confidence-interval capability the paper cites as
    a BPMF advantage.
    """
    samples = np.asarray(samples, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if samples.ndim != 2 or samples.shape[1] != actual.shape[0]:
        raise ValidationError(
            f"samples must be (n_samples, n_test={actual.shape[0]}), got {samples.shape}")
    if not 0.0 < level < 1.0:
        raise ValidationError(f"level must be in (0, 1), got {level}")
    lower_q = (1.0 - level) / 2.0
    lower = np.quantile(samples, lower_q, axis=0)
    upper = np.quantile(samples, 1.0 - lower_q, axis=0)
    inside = (actual >= lower) & (actual <= upper)
    return float(inside.mean())
