"""Wishart and Normal–Wishart sampling.

The Gibbs sampler's hyperparameter step ("sample hyper-parameters movies
based on V" in Algorithm 1) draws the per-entity Gaussian prior
``(mu, Lambda)`` from its Normal–Wishart posterior given the current factor
matrix.  This module implements:

* Wishart sampling via the Bartlett decomposition (no dependence on
  ``scipy.stats`` so the sampling path is fully under our control and
  deterministic given a :class:`numpy.random.Generator`);
* the conjugate Normal–Wishart posterior update;
* the combined hyperparameter Gibbs step used by all samplers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.priors import GaussianPrior, NormalWishartPrior
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError

__all__ = [
    "sample_wishart",
    "sample_normal_wishart",
    "normal_wishart_posterior",
    "normal_wishart_posterior_from_stats",
    "sample_hyperparameters",
]


def _cholesky_psd(matrix: np.ndarray, jitter: float = 1e-10) -> np.ndarray:
    """Cholesky factor of a symmetric positive (semi-)definite matrix.

    Adds an escalating diagonal jitter when the matrix is numerically on
    the PSD boundary, which happens for degenerate factor configurations
    (e.g. a single user) early in sampling.
    """
    matrix = 0.5 * (matrix + matrix.T)
    scale = max(float(np.trace(matrix)) / max(matrix.shape[0], 1), 1.0)
    for attempt in range(8):
        try:
            return np.linalg.cholesky(
                matrix + (jitter * scale * 10**attempt) * np.eye(matrix.shape[0])
                if attempt else matrix)
        except np.linalg.LinAlgError:
            continue
    raise ValidationError("matrix is not positive definite even after jittering")


def sample_wishart(scale: np.ndarray, dof: float, rng: SeedLike = None) -> np.ndarray:
    """Draw one sample from ``Wishart(scale, dof)`` via Bartlett decomposition.

    Parameters
    ----------
    scale:
        The ``K x K`` positive-definite scale matrix ``W``.
    dof:
        Degrees of freedom ``nu >= K``.
    rng:
        Seed or generator.

    Returns
    -------
    A ``K x K`` positive-definite sample with ``E[X] = dof * scale``.
    """
    rng = as_generator(rng)
    scale = np.asarray(scale, dtype=np.float64)
    k = scale.shape[0]
    if scale.shape != (k, k):
        raise ValidationError(f"scale must be square, got {scale.shape}")
    if dof < k:
        raise ValidationError(f"dof must be >= dimension {k}, got {dof}")

    chol_scale = _cholesky_psd(scale)
    # Bartlett: A lower-triangular with chi_{dof-i} on the diagonal and
    # standard normals strictly below; X = L A A^T L^T.
    bartlett = np.zeros((k, k))
    diag_dof = dof - np.arange(k)
    bartlett[np.diag_indices(k)] = np.sqrt(rng.chisquare(diag_dof))
    lower = np.tril_indices(k, -1)
    bartlett[lower] = rng.standard_normal(len(lower[0]))
    factor = chol_scale @ bartlett
    return factor @ factor.T


def sample_normal_wishart(prior: NormalWishartPrior,
                          rng: SeedLike = None) -> GaussianPrior:
    """Draw ``(mu, Lambda)`` from a Normal–Wishart distribution.

    ``Lambda ~ Wishart(W0, nu0)`` and ``mu | Lambda ~ N(mu0, (beta0 Lambda)^-1)``.
    """
    rng = as_generator(rng)
    precision = sample_wishart(prior.W0, prior.nu0, rng)
    chol_precision = _cholesky_psd(precision * prior.beta0)
    # mu = mu0 + (beta0 * Lambda)^{-1/2} z, via a triangular solve.
    z = rng.standard_normal(prior.num_latent)
    offset = np.linalg.solve(chol_precision.T, z)
    return GaussianPrior(mean=prior.mu0 + offset, precision=precision)


def normal_wishart_posterior(factors: np.ndarray,
                             prior: NormalWishartPrior) -> NormalWishartPrior:
    """Conjugate Normal–Wishart posterior given observed factor rows.

    With ``N`` factor rows, sample mean ``x̄`` and scatter ``S`` (centered,
    normalised by ``N``):

    * ``beta* = beta0 + N``; ``nu* = nu0 + N``
    * ``mu* = (beta0 mu0 + N x̄) / (beta0 + N)``
    * ``W*^-1 = W0^-1 + N S + (beta0 N / (beta0 + N)) (x̄ - mu0)(x̄ - mu0)^T``
    """
    factors = np.asarray(factors, dtype=np.float64)
    if factors.ndim != 2:
        raise ValidationError("factors must be a 2-D (items x K) array")
    n, k = factors.shape
    if k != prior.num_latent:
        raise ValidationError(
            f"factors have {k} columns but the prior has num_latent={prior.num_latent}")
    if n == 0:
        return prior

    mean = factors.mean(axis=0)
    centered = factors - mean
    scatter = centered.T @ centered  # equals N * S
    diff = mean - prior.mu0

    beta_post = prior.beta0 + n
    nu_post = prior.nu0 + n
    mu_post = (prior.beta0 * prior.mu0 + n * mean) / beta_post
    w0_inv = np.linalg.inv(prior.W0)
    w_post_inv = (w0_inv + scatter
                  + (prior.beta0 * n / beta_post) * np.outer(diff, diff))
    # Invert through Cholesky for symmetry and numerical stability.
    chol = _cholesky_psd(w_post_inv)
    identity = np.eye(k)
    w_post = np.linalg.solve(chol.T, np.linalg.solve(chol, identity))
    w_post = 0.5 * (w_post + w_post.T)
    return NormalWishartPrior(mu0=mu_post, beta0=beta_post, W0=w_post, nu0=nu_post)


def normal_wishart_posterior_from_stats(
    n: int,
    factor_sum: np.ndarray,
    factor_outer_sum: np.ndarray,
    prior: NormalWishartPrior,
) -> NormalWishartPrior:
    """Normal–Wishart posterior from distributed sufficient statistics.

    The distributed sampler cannot hand the full factor matrix to
    :func:`normal_wishart_posterior`; instead every rank contributes the
    count, sum and sum of outer products of the rows it owns, which are
    combined with an allreduce.  Given those statistics the posterior is

    ``mean = sum / n`` and ``N S = sum_outer - n * mean mean^T``,

    after which the update formulas are identical to the centered form.
    The result matches :func:`normal_wishart_posterior` up to floating-point
    summation order.
    """
    if n < 0:
        raise ValidationError("n must be >= 0")
    if n == 0:
        return prior
    factor_sum = np.asarray(factor_sum, dtype=np.float64)
    factor_outer_sum = np.asarray(factor_outer_sum, dtype=np.float64)
    k = prior.num_latent
    if factor_sum.shape != (k,) or factor_outer_sum.shape != (k, k):
        raise ValidationError("sufficient statistics have the wrong shape")

    mean = factor_sum / n
    scatter = factor_outer_sum - n * np.outer(mean, mean)
    scatter = 0.5 * (scatter + scatter.T)
    diff = mean - prior.mu0

    beta_post = prior.beta0 + n
    nu_post = prior.nu0 + n
    mu_post = (prior.beta0 * prior.mu0 + n * mean) / beta_post
    w0_inv = np.linalg.inv(prior.W0)
    w_post_inv = (w0_inv + scatter
                  + (prior.beta0 * n / beta_post) * np.outer(diff, diff))
    chol = _cholesky_psd(w_post_inv)
    identity = np.eye(k)
    w_post = np.linalg.solve(chol.T, np.linalg.solve(chol, identity))
    w_post = 0.5 * (w_post + w_post.T)
    return NormalWishartPrior(mu0=mu_post, beta0=beta_post, W0=w_post, nu0=nu_post)


def sample_hyperparameters(factors: np.ndarray, prior: NormalWishartPrior,
                           rng: SeedLike = None) -> GaussianPrior:
    """One hyperparameter Gibbs step: posterior update then a NW draw.

    This is the "sample hyper-parameters ... based on U/V" line of
    Algorithm 1 in the paper.
    """
    posterior = normal_wishart_posterior(factors, prior)
    return sample_normal_wishart(posterior, rng)
