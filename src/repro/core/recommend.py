"""Top-N recommendation utilities.

BPMF's end product in a recommender system is a ranked list per user (or,
in the drug-discovery setting, a ranked list of candidate targets per
compound).  These helpers turn a fitted :class:`~repro.core.state.BPMFState`
into such rankings and evaluate them with the standard ranking metrics
(precision/recall at N, mean reciprocal rank).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import BPMFState
from repro.sparse.csr import RatingMatrix
from repro.utils.validation import ValidationError, check_positive

__all__ = ["Recommendation", "select_top_n", "merge_top_n",
           "recommend_for_user", "recommend_batch", "ranking_metrics"]


def select_top_n(scores: np.ndarray, n: int) -> np.ndarray:
    """Indices of the ``n`` largest scores, ordered ``(score desc, index asc)``.

    Fully deterministic even through exact score ties: the tied region at
    the selection boundary is resolved by ascending index, never by
    ``argpartition``'s internal (implementation-defined) ordering.  This
    well-defined total order is what lets a sharded scorer reproduce the
    single-process ranking bit-for-bit — every shard ranks its slice with
    the same rule and :func:`merge_top_n` recombines them exactly.

    Cost stays ``O(m + n log n)``: one ``argpartition`` pass for the
    threshold, then an exact boundary fix-up touching only tied entries.
    """
    check_positive("n", n)
    scores = np.asarray(scores)
    m = int(scores.shape[0])
    if m == 0:
        return np.empty(0, dtype=np.int64)
    n = min(int(n), m)
    if n == m:
        selected = np.arange(m, dtype=np.int64)
    else:
        part = np.argpartition(-scores, n - 1)
        threshold = scores[part[n - 1]]
        above = np.nonzero(scores > threshold)[0]
        ties = np.nonzero(scores == threshold)[0]  # already ascending
        selected = np.concatenate([above, ties[:n - above.shape[0]]])
    order = np.lexsort((selected, -scores[selected]))
    return selected[order].astype(np.int64, copy=False)


def merge_top_n(parts: Iterable[Tuple[np.ndarray, np.ndarray]],
                n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k-way merge of per-shard top-``n`` lists into the global top-``n``.

    Each part is an ``(items, scores)`` pair already ordered by
    ``(score desc, item asc)`` — i.e. a shard's local
    :func:`select_top_n` result mapped to global item ids.  Because every
    part is a complete local top-``n``, the lazy heap merge of the sorted
    streams yields exactly the global top-``n`` under the same total
    order; no shard can hide a global winner beyond its local list.
    """
    check_positive("n", n)
    streams = [zip(np.asarray(items).tolist(), np.asarray(scores).tolist())
               for items, scores in parts]
    merged = heapq.merge(*streams, key=lambda pair: (-pair[1], pair[0]))
    top = list(itertools.islice(merged, n))
    items = np.array([item for item, _ in top], dtype=np.int64)
    values = np.array([score for _, score in top], dtype=np.float64)
    return items, values


@dataclass(frozen=True)
class Recommendation:
    """Ranked recommendations for one user."""

    user: int
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.items.shape[0])

    def as_pairs(self) -> List[Tuple[int, float]]:
        return [(int(item), float(score))
                for item, score in zip(self.items, self.scores)]


def recommend_for_user(
    state: BPMFState,
    user: int,
    n: int = 10,
    exclude: Optional[RatingMatrix] = None,
    offset: float = 0.0,
    candidates: Optional[np.ndarray] = None,
) -> Recommendation:
    """Top-``n`` movies for one user by predicted rating.

    Parameters
    ----------
    state:
        Fitted sampler state (typically the last sample or a state built
        from posterior-mean factors).
    user:
        User index.
    n:
        Number of recommendations.
    exclude:
        Rating matrix whose observed entries for this user are excluded
        (the standard "don't recommend what they already rated" rule).
    offset:
        Added to every score (e.g. the global mean removed before training).
    candidates:
        Optional explicit candidate item set; defaults to all movies.
    """
    check_positive("n", n)
    if not 0 <= user < state.n_users:
        raise ValidationError(f"user {user} out of range [0, {state.n_users})")
    if candidates is None:
        candidates = np.arange(state.n_movies, dtype=np.int64)
    else:
        candidates = np.asarray(candidates, dtype=np.int64)
    if exclude is not None:
        seen, _ = exclude.user_ratings(user)
        candidates = np.setdiff1d(candidates, seen, assume_unique=False)
    if candidates.shape[0] == 0:
        return Recommendation(user=user, items=np.empty(0, dtype=np.int64),
                              scores=np.empty(0))

    scores = state.predict(np.full(candidates.shape[0], user), candidates) + offset
    order = select_top_n(scores, n)
    return Recommendation(user=user, items=candidates[order].copy(),
                          scores=scores[order].copy())


def recommend_batch(
    state: BPMFState,
    users: Sequence[int],
    n: int = 10,
    exclude: Optional[RatingMatrix] = None,
    offset: float = 0.0,
) -> Dict[int, Recommendation]:
    """Top-``n`` recommendations for several users."""
    return {int(user): recommend_for_user(state, int(user), n=n, exclude=exclude,
                                          offset=offset)
            for user in users}


def ranking_metrics(
    recommendations: Dict[int, Recommendation],
    held_out: RatingMatrix,
    relevant_threshold: float = 0.0,
    strict: bool = True,
) -> Dict[str, float]:
    """Precision@N, recall@N and MRR of recommendations against held-out ratings.

    An item is *relevant* for a user when it appears in ``held_out`` for that
    user with a value strictly greater than ``relevant_threshold`` (use the
    user's mean or e.g. 3.5 stars for rating data).  Users with zero held-out
    items — including users outside ``held_out``'s row range, such as fold-in
    users added after training — are skipped, never averaged in as NaN.
    When *no* user is evaluable the default is to raise; ``strict=False``
    instead returns all-zero metrics with ``n_users_evaluated == 0`` (what a
    monitoring pipeline wants for an empty evaluation window).
    """
    precisions: List[float] = []
    recalls: List[float] = []
    reciprocal_ranks: List[float] = []
    for user, recommendation in recommendations.items():
        user = int(user)
        if not 0 <= user < held_out.n_users:
            continue
        items, values = held_out.user_ratings(user)
        relevant = set(items[values > relevant_threshold].tolist())
        if not relevant:
            continue
        recommended = recommendation.items.tolist()
        hits = [item for item in recommended if item in relevant]
        precisions.append(len(hits) / max(len(recommended), 1))
        recalls.append(len(hits) / len(relevant))
        rank = next((index + 1 for index, item in enumerate(recommended)
                     if item in relevant), None)
        reciprocal_ranks.append(1.0 / rank if rank else 0.0)
    if not precisions:
        if strict:
            raise ValidationError("no user had relevant held-out items to evaluate")
        return {"precision": 0.0, "recall": 0.0, "mrr": 0.0,
                "n_users_evaluated": 0.0}
    return {
        "precision": float(np.mean(precisions)),
        "recall": float(np.mean(recalls)),
        "mrr": float(np.mean(reciprocal_ranks)),
        "n_users_evaluated": float(len(precisions)),
    }
