"""Multi-core BPMF (Section III of the paper).

Two complementary pieces:

* :mod:`repro.multicore.sampler` — a functionally parallel Gibbs sampler
  that decomposes each sweep into independent per-item updates and runs
  them through a thread-pool backend.  It produces *exactly* the same
  samples as the sequential reference (verified by the test-suite), which
  is the reproduction of the paper's accuracy-parity claim.
* :mod:`repro.multicore.sweep` — the performance study: the same per-item
  task sets are placed on the simulated multicore machine by the
  work-stealing (TBB-like), static (OpenMP-like) and vertex-engine
  (GraphLab-like) schedulers to regenerate Figure 3's throughput-vs-threads
  curves.
"""

from repro.multicore.tasks import phase_tasks, sweep_tasks
from repro.multicore.sampler import MulticoreGibbsSampler, MulticoreOptions
from repro.multicore.sweep import (
    ThreadSweepResult,
    multicore_thread_sweep,
    default_schedulers,
)

__all__ = [
    "phase_tasks",
    "sweep_tasks",
    "MulticoreGibbsSampler",
    "MulticoreOptions",
    "ThreadSweepResult",
    "multicore_thread_sweep",
    "default_schedulers",
]
