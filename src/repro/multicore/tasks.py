"""Task-set construction for the multicore performance study.

One Gibbs sweep consists of two parallel phases — update all movies, then
update all users — separated by the (serial, cheap) hyperparameter draws.
These helpers turn a rating matrix into the per-phase
:class:`~repro.parallel.simulator.SimTask` lists the simulated schedulers
consume, using the dataset's *real* degree sequences so load imbalance is
inherited from the data, not synthesised.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.updates import HybridUpdatePolicy
from repro.parallel.cost_model import DEFAULT_COST_MODEL, UpdateCostModel
from repro.parallel.simulator import SimTask, tasks_from_degrees
from repro.sparse.csr import RatingMatrix

__all__ = ["phase_tasks", "sweep_tasks"]


def phase_tasks(
    ratings: RatingMatrix,
    phase: str,
    num_latent: int,
    cost_model: UpdateCostModel | None = None,
    policy: HybridUpdatePolicy | None = None,
) -> List[SimTask]:
    """Tasks for one phase (``"movies"`` or ``"users"``) of a sweep."""
    cost_model = cost_model or DEFAULT_COST_MODEL
    if phase == "movies":
        degrees = ratings.movie_degrees()
        offset = 0
    elif phase == "users":
        degrees = ratings.user_degrees()
        offset = ratings.n_movies
    else:
        raise ValueError(f"phase must be 'movies' or 'users', got {phase!r}")
    return tasks_from_degrees(degrees, num_latent, cost_model=cost_model,
                              policy=policy, tag=phase, id_offset=offset)


def sweep_tasks(
    ratings: RatingMatrix,
    num_latent: int,
    cost_model: UpdateCostModel | None = None,
    policy: HybridUpdatePolicy | None = None,
) -> Tuple[List[SimTask], List[SimTask]]:
    """Both phases of one sweep: ``(movie_tasks, user_tasks)``."""
    return (
        phase_tasks(ratings, "movies", num_latent, cost_model, policy),
        phase_tasks(ratings, "users", num_latent, cost_model, policy),
    )
