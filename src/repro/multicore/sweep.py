"""Thread-count sweep on the simulated multicore machine (Figure 3).

For every scheduler (TBB-like work stealing, OpenMP-like static loop,
GraphLab-like vertex engine) and every thread count, one Gibbs sweep's
worth of item-update tasks — derived from the dataset's real degree
sequences — is scheduled and the resulting throughput in item updates per
second is reported.  This is the data behind Figure 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.updates import HybridUpdatePolicy
from repro.multicore.tasks import sweep_tasks
from repro.parallel.cost_model import DEFAULT_COST_MODEL, UpdateCostModel
from repro.parallel.graph_engine import GraphEngineScheduler
from repro.parallel.simulator import ScheduleResult, Scheduler
from repro.parallel.static_scheduler import StaticScheduler
from repro.parallel.work_stealing import WorkStealingScheduler
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table
from repro.utils.validation import check_positive

__all__ = ["ThreadSweepResult", "default_schedulers", "multicore_thread_sweep"]


def default_schedulers() -> Dict[str, Scheduler]:
    """The three execution models compared in Figure 3, keyed by paper name."""
    return {
        "TBB": WorkStealingScheduler(),
        "OpenMP": StaticScheduler(),
        "GraphLab": GraphEngineScheduler(),
    }


@dataclass
class ThreadSweepResult:
    """Throughput (item updates / second) per scheduler and thread count."""

    thread_counts: List[int]
    throughput: Dict[str, List[float]]
    schedule_details: Dict[str, List[ScheduleResult]] = field(default_factory=dict)

    def speedup(self, scheduler: str) -> List[float]:
        """Throughput relative to the same scheduler on one thread."""
        series = self.throughput[scheduler]
        base = series[0]
        return [value / base for value in series]

    def to_table(self) -> Table:
        """Figure 3 as a text table (threads x scheduler throughput)."""
        headers = ["threads"] + [f"{name} (items/s)" for name in self.throughput]
        table = Table(headers, title="Figure 3 — multicore BPMF throughput")
        for row_index, threads in enumerate(self.thread_counts):
            cells: List[object] = [threads]
            for name in self.throughput:
                cells.append(self.throughput[name][row_index])
            table.add_row(*cells)
        return table


def multicore_thread_sweep(
    ratings: RatingMatrix,
    num_latent: int = 32,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
    schedulers: Dict[str, Scheduler] | None = None,
    cost_model: UpdateCostModel | None = None,
    policy: HybridUpdatePolicy | None = None,
    hyper_overhead: float = 2.0e-3,
    keep_details: bool = False,
) -> ThreadSweepResult:
    """Run the Figure 3 experiment.

    Parameters
    ----------
    ratings:
        Workload (the paper uses the ChEMBL dataset here).
    num_latent:
        Latent dimension used for kernel-cost estimation.
    thread_counts:
        X-axis of the figure.
    schedulers:
        Mapping of display name to scheduler; defaults to the paper's three.
    cost_model, policy:
        Kernel cost model and hybrid update policy.
    hyper_overhead:
        Simulated seconds per sweep spent in the serial hyperparameter
        draws (charged identically to every scheduler).
    keep_details:
        Keep the full :class:`ScheduleResult` objects for inspection.
    """
    for count in thread_counts:
        check_positive("thread_counts entry", count)
    schedulers = schedulers or default_schedulers()
    cost_model = cost_model or DEFAULT_COST_MODEL
    movie_tasks, user_tasks = sweep_tasks(ratings, num_latent, cost_model, policy)
    n_items = len(movie_tasks) + len(user_tasks)

    throughput: Dict[str, List[float]] = {name: [] for name in schedulers}
    details: Dict[str, List[ScheduleResult]] = {name: [] for name in schedulers}
    for name, scheduler in schedulers.items():
        for threads in thread_counts:
            movie_result = scheduler.schedule(movie_tasks, threads)
            user_result = scheduler.schedule(user_tasks, threads)
            sweep_time = movie_result.makespan + user_result.makespan + hyper_overhead
            throughput[name].append(n_items / sweep_time)
            if keep_details:
                details[name].append(movie_result)
                details[name].append(user_result)

    return ThreadSweepResult(
        thread_counts=list(thread_counts),
        throughput=throughput,
        schedule_details=details if keep_details else {},
    )
