"""Functionally parallel multicore Gibbs sampler.

The decomposition mirrors the paper's shared-memory implementation: within
the movie phase, every movie's conditional depends only on the (frozen)
user factors and the movie hyperparameters, so all movies can be updated
concurrently without synchronisation; symmetrically for users.

To make the parallel sampler *bit-for-bit identical* to the sequential
reference (the strongest possible form of the paper's "all versions reach
the same accuracy" claim), the Gaussian noise vector consumed by every item
update is pre-drawn from the shared generator in canonical item order
before the parallel region starts; the worker threads then touch no shared
random state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.batch_engine import BatchedUpdateEngine, make_update_engine
from repro.core.gibbs import BPMFResult, ResumeLike
from repro.core.metrics import rmse
from repro.core.predict import PosteriorPredictor
from repro.core.priors import BPMFConfig
from repro.core.state import BPMFState, initialize_state
from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.core.wishart import sample_hyperparameters
from repro.parallel.thread_backend import ThreadPoolBackend
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving -> core)
    from repro.serving.checkpoint import CheckpointConfig

__all__ = ["MulticoreOptions", "MulticoreGibbsSampler"]


@dataclass
class MulticoreOptions:
    """Execution options of the multicore sampler.

    ``engine`` selects the update execution strategy (see
    :class:`repro.core.batch_engine.UpdateEngine`).  With ``"batched"``
    (default) the thread pool maps over degree buckets — each a stacked
    LAPACK call over disjoint items — instead of over individual items.
    With ``"shared"`` the degree buckets run on a pool of real processes
    over shared memory
    (:class:`repro.core.shared_engine.SharedMemoryUpdateEngine`); the
    engine then schedules its own execution and the thread pool is
    bypassed.  ``n_workers`` sizes that process pool (default:
    ``n_threads``, so existing configs scale transparently), and
    ``compute_dtype`` selects the kernel precision (``"float32"`` halves
    the memory bandwidth at tolerance-level, not bit-level, parity).

    ``checkpoint`` enables save-every-k-sweeps posterior snapshots, exactly
    as in :class:`repro.core.gibbs.SamplerOptions`; because the parallel
    sampler consumes the same random stream as the sequential one, a chain
    checkpointed under one backend can resume under the other.
    """

    n_threads: int = 1
    chunk_size: int = 64
    update_method: Optional[UpdateMethod] = None
    policy: HybridUpdatePolicy = field(default_factory=HybridUpdatePolicy)
    engine: str = "batched"
    compute_dtype: str = "float64"
    n_workers: Optional[int] = None
    keep_sample_predictions: bool = False
    checkpoint: Optional["CheckpointConfig"] = None


class MulticoreGibbsSampler:
    """Shared-memory parallel BPMF sampler (thread-pool backend).

    Statistically and numerically equivalent to
    :class:`repro.core.gibbs.GibbsSampler`; only the execution of the item
    loops differs.
    """

    def __init__(self, config: BPMFConfig | None = None,
                 options: MulticoreOptions | None = None):
        self.config = config or BPMFConfig()
        self.options = options or MulticoreOptions()
        n_workers = self.options.n_workers
        if n_workers is None and self.options.engine == "shared":
            n_workers = self.options.n_threads
        self._engine = make_update_engine(self.options.engine,
                                          update_method=self.options.update_method,
                                          policy=self.options.policy,
                                          compute_dtype=self.options.compute_dtype,
                                          n_workers=n_workers)
        # chunk_size is tuned for per-item mapping; the batched engine's
        # parallel units are degree buckets (typically a few dozen per
        # phase), which must be submitted one per task or every bucket
        # lands in a single chunk on a single thread.
        chunk = 1 if isinstance(self._engine, BatchedUpdateEngine) \
            else self.options.chunk_size
        self._backend = ThreadPoolBackend(self.options.n_threads, chunk)

    # -- one parallel phase -------------------------------------------------

    def _update_phase(self, state: BPMFState, ratings: RatingMatrix,
                      phase: str, rng: np.random.Generator) -> int:
        """Update every item of one entity class in parallel."""
        if phase == "movies":
            n_items = ratings.n_movies
            prior = state.movie_prior
            source = state.user_factors
            target = state.movie_factors
            axis = ratings.by_movie
        else:
            n_items = ratings.n_users
            prior = state.user_prior
            source = state.movie_factors
            target = state.user_factors
            axis = ratings.by_user

        # Pre-draw the per-item noise in canonical order so the result does
        # not depend on thread interleaving and matches the sequential
        # sampler's random stream exactly.
        noise = rng.standard_normal((n_items, self.config.num_latent))
        parallel_map = (None if self._engine.manages_parallelism
                        else self._backend.map_items)
        self._engine.update_items(target, source, axis, prior,
                                  self.config.alpha, noise,
                                  parallel_map=parallel_map)
        return n_items

    def sweep(self, state: BPMFState, ratings: RatingMatrix,
              rng: np.random.Generator) -> int:
        """One full Gibbs sweep; returns the number of item updates."""
        state.movie_prior = sample_hyperparameters(
            state.movie_factors, self.config.movie_hyperprior, rng)
        updated = self._update_phase(state, ratings, "movies", rng)
        state.user_prior = sample_hyperparameters(
            state.user_factors, self.config.user_hyperprior, rng)
        updated += self._update_phase(state, ratings, "users", rng)
        state.iteration += 1
        return updated

    # -- full run -------------------------------------------------------------

    def run(self, train: RatingMatrix, split: RatingSplit | None = None,
            seed: SeedLike = 0, state: BPMFState | None = None,
            resume: Optional[ResumeLike] = None) -> BPMFResult:
        """Run the sampler; mirrors :meth:`repro.core.gibbs.GibbsSampler.run`."""
        from repro.serving.checkpoint import TrainingCheckpointer

        rng = as_generator(seed)
        snapshot, state, rng = TrainingCheckpointer.open_resume(resume, state, rng)
        if state is None:
            state = initialize_state(train, self.config, rng)
        if state.n_users != train.n_users or state.n_movies != train.n_movies:
            raise ValidationError("state shape does not match the rating matrix")

        if split is not None and split.n_test > 0:
            test_users, test_movies, test_values = split.test_triplets()
        else:
            test_users, test_movies, test_values = train.triplets()

        predictor = PosteriorPredictor(
            test_users, test_movies,
            keep_samples=self.options.keep_sample_predictions)
        checkpointer = TrainingCheckpointer(self.config, self.options.checkpoint,
                                            snapshot, state, predictor)

        # engine="shared" owns worker processes and shared-memory segments;
        # the finally releases them even when a sweep raises mid-run.
        try:
            for iteration in range(checkpointer.start_iteration,
                                   self.config.total_iterations):
                checkpointer.items_updated += self.sweep(state, train, rng)
                sample_pred = state.predict(test_users, test_movies)
                if iteration >= self.config.burn_in:
                    predictor.accumulate(state)
                    mean_rmse = rmse(predictor.mean_prediction(), test_values)
                else:
                    mean_rmse = None
                checkpointer.record(iteration, state,
                                    rmse(sample_pred, test_values), mean_rmse)
                checkpointer.maybe_save(iteration, state, rng, predictor)
        finally:
            self._engine.close()

        return BPMFResult(
            config=self.config,
            state=state,
            rmse_per_sample=checkpointer.rmse_per_sample,
            rmse_running_mean=checkpointer.rmse_running_mean,
            rmse_burn_in=checkpointer.rmse_burn_in,
            predictions=predictor.mean_prediction(),
            sample_predictions=(predictor.sample_matrix()
                                if self.options.keep_sample_predictions else None),
            items_updated=checkpointer.items_updated,
            factor_means=(checkpointer.factor_means
                          if checkpointer.factor_means.n_samples else None),
        )
