"""Versioned, length-prefixed frame protocol for the serving frontend.

One codec, two transports: every message that crosses the TCP socket
(:mod:`repro.serving.net.server`) and every command line the stdin REPL
reads (``python -m repro.serving serve``) goes through the functions in
this module, so there is exactly one parser and one executor for the
serving command set.

Wire format (all integers big-endian)::

    +-------+---------+------+----------------+-----------------+
    | magic | version | kind | payload length | payload (JSON)  |
    | 4 B   | 1 B     | 1 B  | 4 B            | length bytes    |
    +-------+---------+------+----------------+-----------------+

The payload is UTF-8 JSON — deliberately msgpack-free so any language
with ``struct`` and JSON can speak it.  Python's JSON round-trips IEEE
doubles exactly (shortest-repr encode, exact decode), which is what lets
the network tests pin *bit-identical* scores across the wire.

``Frame`` is also the in-process request/response object: the REPL's
:func:`parse_line` produces request frames, :func:`execute` runs a frame
against a gateway (:class:`~repro.serving.service.PredictionService` or
:class:`~repro.serving.cluster.ShardedScorer`) and returns a response
frame, and :func:`format_reply` renders a response back into the legacy
REPL line format (pinned bit-identical by a golden transcript test).

A connection starts with a ``hello`` handshake carrying the protocol
version; servers refuse mismatched versions with an explicit ``error``
frame before closing, so old clients fail loudly instead of misparsing.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "PROTOCOL_VERSION", "MAX_PAYLOAD", "ProtocolError", "Frame",
    "encode_frame", "FrameDecoder", "parse_line", "execute", "format_reply",
    "hello_frame", "check_hello",
]

#: Bump on any wire-visible change; the handshake refuses mismatches.
PROTOCOL_VERSION = 1

#: Frames advertising a larger payload are rejected before buffering.
MAX_PAYLOAD = 16 * 1024 * 1024

_MAGIC = b"RPRO"
_HEADER = struct.Struct(">4sBBI")

#: kind name <-> wire code.  Requests sit below 16, responses above.
_KIND_CODES = {
    "hello": 1,
    "top_n": 2,
    "top_n_batch": 3,
    "predict": 4,
    "rate": 5,
    "foldin": 6,
    "stats": 7,
    "health": 8,
    "ok": 16,
    "error": 17,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

#: Request kinds that are safe to retry on another replica: they either
#: read state or are deterministic lookups.  ``rate``/``foldin`` mutate
#: the posterior and must never be silently replayed.
IDEMPOTENT_KINDS = frozenset({"top_n", "top_n_batch", "predict", "stats",
                              "health", "hello"})


class ProtocolError(ValueError):
    """A frame or command line that violates the protocol."""


@dataclass
class Frame:
    """One protocol message: a kind tag plus a JSON-able payload."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    @property
    def is_error(self) -> bool:
        return self.kind == "error"


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame to wire bytes."""
    if frame.kind not in _KIND_CODES:
        raise ProtocolError(f"unknown frame kind {frame.kind!r}")
    body = json.dumps(frame.payload, separators=(",", ":"),
                      sort_keys=True).encode("utf8")
    if len(body) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(body)} bytes exceeds the {MAX_PAYLOAD}-byte "
            "frame limit")
    return _HEADER.pack(_MAGIC, frame.version,
                        _KIND_CODES[frame.kind], len(body)) + body


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed it whatever chunks the transport delivers; complete frames come
    out, partial ones wait in the buffer.  Garbage (bad magic, unknown
    kind, oversized or malformed payload) raises :class:`ProtocolError`
    immediately — a framing error is unrecoverable mid-stream, so callers
    drop the connection.
    """

    def __init__(self):
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data`` and return every frame it completes."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        if len(self._buffer) < _HEADER.size:
            return None
        magic, version, code, length = _HEADER.unpack_from(self._buffer)
        if magic != _MAGIC:
            raise ProtocolError(
                f"bad frame magic {bytes(magic)!r} (expected {_MAGIC!r})")
        if length > MAX_PAYLOAD:
            raise ProtocolError(
                f"frame advertises a {length}-byte payload, over the "
                f"{MAX_PAYLOAD}-byte limit")
        kind = _CODE_KINDS.get(code)
        if kind is None:
            raise ProtocolError(f"unknown frame kind code {code}")
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_HEADER.size:end])
        del self._buffer[:end]
        try:
            payload = json.loads(body.decode("utf8")) if length else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed frame payload: {error}") from error
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"frame payload must be a JSON object, got "
                f"{type(payload).__name__}")
        return Frame(kind=kind, payload=payload, version=version)


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------

def hello_frame() -> Frame:
    """The client's opening frame."""
    return Frame("hello", {"version": PROTOCOL_VERSION})


def check_hello(frame: Frame) -> Optional[Frame]:
    """Validate a client's opening frame; an ``error`` frame on refusal.

    Returns ``None`` when the handshake is acceptable.  The version in
    the *payload* is authoritative (the header byte travels with every
    frame; the payload states what the client actually speaks).
    """
    if frame.kind != "hello":
        return Frame("error", {
            "message": f"expected a hello handshake, got {frame.kind!r}"})
    version = frame.payload.get("version")
    if version != PROTOCOL_VERSION:
        return Frame("error", {
            "message": f"protocol version {version!r} is not supported "
                       f"(server speaks {PROTOCOL_VERSION})",
            "server_version": PROTOCOL_VERSION})
    return None


# ---------------------------------------------------------------------------
# the line protocol (stdin REPL) in terms of the same frames
# ---------------------------------------------------------------------------

def parse_line(line: str) -> Optional[Frame]:
    """Parse one REPL command line into a request frame.

    Returns ``None`` for a blank line and a ``quit``-kind sentinel frame
    (not a wire kind) for ``quit``.  Raises exactly what the historical
    ad-hoc parser raised — ``ValueError`` from ``int()``/``float()``,
    ``IndexError`` for missing arguments, :class:`ProtocolError` for an
    unknown command — so the REPL's error lines stay bit-identical.
    """
    parts = line.split()
    if not parts:
        return None
    command, rest = parts[0], parts[1:]
    if command == "quit":
        return Frame("quit")
    if command == "predict":
        return Frame("predict", {"user": int(rest[0]), "item": int(rest[1])})
    if command == "top":
        return Frame("top_n", {
            "user": int(rest[0]),
            "n": int(rest[1]) if len(rest) > 1 else 10,
        })
    if command == "foldin":
        return Frame("foldin", {
            "items": [int(token.partition(":")[0]) for token in rest],
            "values": [float(token.partition(":")[2]) for token in rest],
        })
    if command == "rate":
        return Frame("rate", {
            "user": int(rest[0]),
            "items": [int(token.partition(":")[0]) for token in rest[1:]],
            "values": [float(token.partition(":")[2]) for token in rest[1:]],
        })
    if command == "stats":
        return Frame("stats")
    if command == "health":
        return Frame("health")
    raise ProtocolError(f"unknown command {command!r}")


def format_reply(request: Frame, response: Frame) -> str:
    """Render a response frame as the legacy REPL output line."""
    if response.is_error:
        return f"error: {response.payload['message']}"
    payload = response.payload
    if request.kind == "predict":
        return f"{payload['score']:.4f}"
    if request.kind == "top_n":
        return " ".join(f"{item}:{score:.4f}" for item, score
                        in zip(payload["items"], payload["scores"]))
    if request.kind == "foldin":
        return f"user {payload['user']}"
    if request.kind == "rate":
        return f"user {payload['user']} updated"
    if request.kind in ("stats", "health"):
        return json.dumps(payload, sort_keys=True)
    raise ProtocolError(f"no line rendering for {request.kind!r} replies")


# ---------------------------------------------------------------------------
# the shared executor
# ---------------------------------------------------------------------------

def recommendation_payload(recommendation) -> Dict[str, object]:
    return {"user": int(recommendation.user),
            "items": [int(item) for item in recommendation.items],
            "scores": [float(score) for score in recommendation.scores]}


def execute(service, request: Frame,
            extra_health=None) -> Frame:
    """Run one request frame against a gateway; returns the response frame.

    ``service`` is anything with the :class:`PredictionService` serving
    surface (the sharded gateway included).  Domain failures — bad
    indices, crashed workers, malformed arguments — come back as
    ``error`` frames; only programming errors propagate.  ``extra_health``
    optionally supplies server-side counters merged into ``health``
    replies (the TCP server passes its connection/fusion stats).
    """
    from repro.serving.cluster import ClusterError
    from repro.utils.validation import ValidationError

    kind, payload = request.kind, request.payload
    try:
        if kind == "top_n":
            recommendation = service.top_n(
                int(payload["user"]), n=int(payload.get("n", 10)),
                exclude_seen=bool(payload.get("exclude_seen", True)))
            return Frame("ok", recommendation_payload(recommendation))
        if kind == "top_n_batch":
            results = service.top_n_batch(
                [int(user) for user in payload["users"]],
                n=int(payload.get("n", 10)),
                exclude_seen=bool(payload.get("exclude_seen", True)))
            return Frame("ok", {"results": [
                recommendation_payload(results[int(user)])
                for user in dict.fromkeys(payload["users"])]})
        if kind == "predict":
            score = service.predict(int(payload["user"]),
                                    int(payload["item"]))
            return Frame("ok", {"score": float(score)})
        if kind == "foldin":
            user = service.fold_in(
                np.asarray(payload["items"], dtype=np.int64),
                np.asarray(payload["values"], dtype=np.float64))
            return Frame("ok", {"user": int(user)})
        if kind == "rate":
            service.add_ratings(
                int(payload["user"]),
                np.asarray(payload["items"], dtype=np.int64),
                np.asarray(payload["values"], dtype=np.float64))
            return Frame("ok", {"user": int(payload["user"])})
        if kind == "stats":
            return Frame("ok", dict(service.stats()))
        if kind == "health":
            body: Dict[str, object] = {
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "n_users": int(service.n_users),
                "n_items": int(service.n_items),
                "stats": dict(service.stats()),
            }
            if extra_health is not None:
                body.update(extra_health())
            return Frame("ok", body)
        return Frame("error", {"message": f"unknown command {kind!r}"})
    except (ValidationError, ClusterError, IndexError, ValueError,
            KeyError, TypeError) as error:
        # ClusterError included: a crashed worker must not kill the
        # serving session — the gateway respawns its pool on the next
        # command.  KeyError/TypeError cover missing or mistyped payload
        # fields from remote clients.
        return Frame("error", {"message": str(error)})
