"""Versioned, length-prefixed frame protocol for the serving frontend.

One codec, two transports: every message that crosses the TCP socket
(:mod:`repro.serving.net.server`) and every command line the stdin REPL
reads (``python -m repro.serving serve``) goes through the functions in
this module, so there is exactly one parser and one executor for the
serving command set.

Wire format (all integers big-endian)::

    +-------+---------+------+----------------+-----------------+
    | magic | version | kind | payload length | payload         |
    | 4 B   | 1 B     | 1 B  | 4 B            | length bytes    |
    +-------+---------+------+----------------+-----------------+

The default payload is UTF-8 JSON — deliberately msgpack-free so any
language with ``struct`` and JSON can speak it.  Python's JSON
round-trips IEEE doubles exactly (shortest-repr encode, exact decode),
which is what lets the network tests pin *bit-identical* scores across
the wire.

**Binary array payloads.**  JSON turns a top-N reply into thousands of
decimal-text bytes that both ends must format and re-parse — pure
dispatch tax on the hot serving path.  When the high bit of the kind
byte is set (``code | 0x80``) the payload is instead::

    u32 json_length | JSON part | array block ...
    array block := u8 dtype | u8 ndim | u32 dim[ndim] | raw C-order bytes

where every :class:`numpy.ndarray` in the payload (at any nesting
depth) is replaced in the JSON part by the marker mapping
``{"__nd__": i}`` and shipped as the ``i``-th raw little-endian array
block — item ids and score vectors cross the wire as straight
``memcpy``s of the float64/int64 buffers the gateway computed, bit-exact
by construction rather than by careful text formatting.  The binary
form is a *negotiated capability*: clients advertise
``{"encodings": [...]}`` in the hello payload, the server answers with
its own list, and binary frames only flow between peers that both
advertised ``"binary"`` — a JSON-only peer never sees one, which is why
the protocol version stays unchanged.

``Frame`` is also the in-process request/response object: the REPL's
:func:`parse_line` produces request frames, :func:`execute` runs a frame
against a gateway (:class:`~repro.serving.service.PredictionService` or
:class:`~repro.serving.cluster.ShardedScorer`) and returns a response
frame, and :func:`format_reply` renders a response back into the legacy
REPL line format (pinned bit-identical by a golden transcript test).

A connection starts with a ``hello`` handshake carrying the protocol
version; servers refuse mismatched versions with an explicit ``error``
frame before closing, so old clients fail loudly instead of misparsing.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import dotted_stats

__all__ = [
    "PROTOCOL_VERSION", "MAX_PAYLOAD", "ENCODINGS", "FEATURES",
    "TRACE_FEATURE", "ProtocolError", "Frame",
    "encode_frame", "FrameDecoder", "parse_line", "execute", "format_reply",
    "hello_frame", "check_hello", "negotiated_encoding",
    "negotiated_features", "IDEMPOTENT_KINDS", "MUTATION_KINDS",
    "ERROR_DEADLINE", "ERROR_OVERLOADED", "error_frame",
]

#: Bump on any wire-visible change; the handshake refuses mismatches.
#: (The binary payload form is a negotiated capability, not a version
#: bump: peers that do not advertise it never receive it.)
PROTOCOL_VERSION = 1

#: Payload encodings this implementation speaks, most preferred first.
ENCODINGS = ("binary", "json")

#: Optional capabilities negotiated over the hello handshake, exactly
#: like the binary encoding: both sides must advertise a feature before
#: either relies on it, so peers from before a feature keep working.
#: ``"trace"``: request frames may carry a ``"trace"`` payload field
#: with distributed-tracing context (see :mod:`repro.obs.trace`).
TRACE_FEATURE = "trace"
FEATURES = (TRACE_FEATURE,)

#: Frames advertising a larger payload are rejected before buffering.
MAX_PAYLOAD = 16 * 1024 * 1024

_MAGIC = b"RPRO"
_HEADER = struct.Struct(">4sBBI")

#: High bit of the kind byte: payload is the binary array form.
_BINARY_FLAG = 0x80

#: kind name <-> wire code.  Requests sit below 16, responses above;
#: every code stays below 0x80 so the binary flag never collides.
_KIND_CODES = {
    "hello": 1,
    "top_n": 2,
    "top_n_batch": 3,
    "predict": 4,
    "rate": 5,
    "foldin": 6,
    "stats": 7,
    "health": 8,
    "predict_batch": 9,
    "wal_append": 10,
    "wal_catchup": 11,
    "metrics": 12,
    "trace": 13,
    # MPI transport kinds (repro.mpi.net): the rank rendezvous/mesh
    # handshake, tagged point-to-point envelopes and collective/flush
    # control traffic all reuse this codec — factor blocks cross the
    # wire as the same bit-exact binary array payloads the serving
    # frontend ships.
    "mpi_hello": 14,
    "mpi_msg": 15,
    "ok": 16,
    "error": 17,
    "mpi_ctl": 18,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

#: Request kinds that are safe to retry on another replica: they either
#: read state or are deterministic lookups.  ``rate``/``foldin`` mutate
#: the posterior; a bare retry could double-apply them, so the client
#: only retries mutations that carry a ``write_id`` (the WAL leader
#: dedups those — see :mod:`repro.serving.wal.shipper`).
#: ``wal_catchup`` reads immutable log records, so it rides along.
IDEMPOTENT_KINDS = frozenset({"top_n", "top_n_batch", "predict",
                              "predict_batch", "stats", "health", "hello",
                              "wal_catchup", "metrics", "trace"})

#: Request kinds that mutate gateway state.  When a server has a WAL
#: coordinator attached these are routed through it (commit on the
#: leader, forward on a follower) instead of the plain executor.
MUTATION_KINDS = frozenset({"rate", "foldin"})

#: Array dtypes the binary payload form can carry (code <-> wire dtype).
#: Explicit little-endian tags: raw bytes mean the same thing on every
#: architecture, and ``astype`` is zero-copy on little-endian hosts.
_DTYPE_CODES = {"<f8": 0, "<i8": 1, "<f4": 2, "<i4": 3}
_CODE_DTYPES = {code: np.dtype(tag) for tag, code in _DTYPE_CODES.items()}
_ARRAY_HEADER = struct.Struct(">BB")
_ARRAY_MARKER = "__nd__"


class ProtocolError(ValueError):
    """A frame or command line that violates the protocol."""


#: Machine-readable ``error`` frame codes for the overload defenses.
#: ``deadline_exceeded``: the request's ``deadline_ms`` budget ran out
#: before dispatch — the work was *not* done (retryable with a fresh
#: deadline, but pointless to replay with the spent one, which is why
#: the clients surface it as :class:`~repro.serving.net.client.
#: DeadlineError` instead of failing over).  ``overloaded``: admission
#: control shed the request before any state changed — always safe to
#: retry on another replica, and the clients do.
ERROR_DEADLINE = "deadline_exceeded"
ERROR_OVERLOADED = "overloaded"


def error_frame(message: str, code: Optional[str] = None,
                retryable: bool = False) -> Frame:
    """Build an ``error`` frame, optionally coded and marked retryable.

    ``retryable`` is the server's promise that the request was refused
    *without being applied*; clients fail such errors over to another
    replica (mutations included).  ``code`` gives defenses a
    machine-readable identity (see :data:`ERROR_DEADLINE` /
    :data:`ERROR_OVERLOADED`) on top of the human-readable message.
    """
    payload: Dict[str, object] = {"message": str(message)}
    if code is not None:
        payload["code"] = str(code)
    if retryable:
        payload["retryable"] = True
    return Frame("error", payload)


@dataclass
class Frame:
    """One protocol message: a kind tag plus a JSON-able payload."""

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    @property
    def is_error(self) -> bool:
        return self.kind == "error"


def _json_default(value):
    """JSON fallback for numpy values in payloads (exact conversions)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(
        f"payload value of type {type(value).__name__} is not JSON-able")


def _extract_arrays(value, arrays: List[np.ndarray]):
    """Replace every ndarray in ``value`` by a ``{"__nd__": i}`` marker.

    Returns the substituted structure; the arrays land in ``arrays`` in
    marker order.  Raises on payloads that already contain the reserved
    marker key (they would be indistinguishable after a round-trip).
    """
    if isinstance(value, np.ndarray):
        index = len(arrays)
        arrays.append(value)
        return {_ARRAY_MARKER: index}
    if isinstance(value, dict):
        if _ARRAY_MARKER in value:
            raise ProtocolError(
                f"payload objects must not use the reserved key "
                f"{_ARRAY_MARKER!r}")
        return {key: _extract_arrays(item, arrays)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_extract_arrays(item, arrays) for item in value]
    return value


def _restore_arrays(value, arrays: List[np.ndarray]):
    """Inverse of :func:`_extract_arrays` on a decoded JSON structure."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_MARKER}:
            index = value[_ARRAY_MARKER]
            if not isinstance(index, int) or not 0 <= index < len(arrays):
                raise ProtocolError(
                    f"binary payload references array {index!r}, frame "
                    f"carries {len(arrays)}")
            return arrays[index]
        return {key: _restore_arrays(item, arrays)
                for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_arrays(item, arrays) for item in value]
    return value


def _encode_binary_payload(payload: Dict[str, object]) -> bytes:
    """The binary array payload: JSON part + raw array blocks."""
    arrays: List[np.ndarray] = []
    substituted = _extract_arrays(payload, arrays)
    json_part = json.dumps(substituted, separators=(",", ":"),
                           sort_keys=True, default=_json_default
                           ).encode("utf8")
    blocks = [struct.pack(">I", len(json_part)), json_part]
    for array in arrays:
        tag = array.dtype.newbyteorder("<").str
        code = _DTYPE_CODES.get(tag)
        if code is None:
            raise ProtocolError(
                f"array dtype {array.dtype} has no binary wire form")
        if array.ndim > 255:
            raise ProtocolError(f"{array.ndim}-dimensional array payload")
        wire = np.ascontiguousarray(array).astype(tag, copy=False)
        blocks.append(_ARRAY_HEADER.pack(code, wire.ndim))
        blocks.append(struct.pack(f">{wire.ndim}I", *wire.shape))
        blocks.append(wire.tobytes())
    return b"".join(blocks)


def _decode_binary_payload(body: bytes) -> Dict[str, object]:
    """Parse the binary array payload back into a payload dict."""
    try:
        (json_length,) = struct.unpack_from(">I", body)
        cursor = 4 + json_length
        substituted = json.loads(body[4:cursor].decode("utf8"))
        arrays: List[np.ndarray] = []
        while cursor < len(body):
            code, ndim = _ARRAY_HEADER.unpack_from(body, cursor)
            cursor += _ARRAY_HEADER.size
            dtype = _CODE_DTYPES.get(code)
            if dtype is None:
                raise ProtocolError(f"unknown array dtype code {code}")
            shape = struct.unpack_from(f">{ndim}I", body, cursor)
            cursor += 4 * ndim
            count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
            end = cursor + count * dtype.itemsize
            if end > len(body):
                raise ProtocolError("binary payload truncates an array")
            # frombuffer is zero-copy; the view is read-only, which is
            # exactly right for decoded request/response vectors.
            arrays.append(np.frombuffer(body, dtype=dtype, count=count,
                                        offset=cursor).reshape(shape))
            cursor = end
    except (struct.error, UnicodeDecodeError,
            json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed binary payload: {error}") from error
    if not isinstance(substituted, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(substituted).__name__}")
    return _restore_arrays(substituted, arrays)


def encode_frame(frame: Frame, binary: bool = False) -> bytes:
    """Serialize one frame to wire bytes.

    With ``binary=True`` (only after the peer advertised the capability)
    ndarray payload values ship as raw little-endian array blocks and
    the kind byte carries the binary flag; without it they are converted
    to JSON lists (exact for float64/int64 — Python's JSON round-trips
    IEEE doubles).
    """
    if frame.kind not in _KIND_CODES:
        raise ProtocolError(f"unknown frame kind {frame.kind!r}")
    code = _KIND_CODES[frame.kind]
    if binary:
        body = _encode_binary_payload(frame.payload)
        code |= _BINARY_FLAG
    else:
        body = json.dumps(frame.payload, separators=(",", ":"),
                          sort_keys=True, default=_json_default
                          ).encode("utf8")
    if len(body) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(body)} bytes exceeds the {MAX_PAYLOAD}-byte "
            "frame limit")
    return _HEADER.pack(_MAGIC, frame.version, code, len(body)) + body


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed it whatever chunks the transport delivers; complete frames come
    out, partial ones wait in the buffer.  Garbage (bad magic, unknown
    kind, oversized or malformed payload) raises :class:`ProtocolError`
    immediately — a framing error is unrecoverable mid-stream, so callers
    drop the connection.
    """

    def __init__(self):
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data`` and return every frame it completes."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        if len(self._buffer) < _HEADER.size:
            return None
        magic, version, code, length = _HEADER.unpack_from(self._buffer)
        if magic != _MAGIC:
            raise ProtocolError(
                f"bad frame magic {bytes(magic)!r} (expected {_MAGIC!r})")
        if length > MAX_PAYLOAD:
            raise ProtocolError(
                f"frame advertises a {length}-byte payload, over the "
                f"{MAX_PAYLOAD}-byte limit")
        binary = bool(code & _BINARY_FLAG)
        kind = _CODE_KINDS.get(code & ~_BINARY_FLAG)
        if kind is None:
            raise ProtocolError(f"unknown frame kind code {code}")
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_HEADER.size:end])
        del self._buffer[:end]
        if binary:
            payload = _decode_binary_payload(body)
            return Frame(kind=kind, payload=payload, version=version)
        try:
            payload = json.loads(body.decode("utf8")) if length else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed frame payload: {error}") from error
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"frame payload must be a JSON object, got "
                f"{type(payload).__name__}")
        return Frame(kind=kind, payload=payload, version=version)


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------

def hello_frame(encodings: Tuple[str, ...] = ENCODINGS,
                features: Tuple[str, ...] = ()) -> Frame:
    """The client's opening frame: payload encodings plus any optional
    capabilities (:data:`FEATURES`) this peer wants to use."""
    payload: Dict[str, object] = {"version": PROTOCOL_VERSION,
                                  "encodings": list(encodings)}
    if features:
        payload["features"] = list(features)
    return Frame("hello", payload)


def negotiated_encoding(payload: Dict[str, object]) -> str:
    """The payload encoding to *send* to the peer behind ``payload``.

    ``payload`` is the peer's hello (or hello-reply) payload; binary
    frames may only be sent to a peer that explicitly advertised the
    capability, so absent/malformed advertisements fall back to JSON —
    version-1 peers from before the capability keep working unchanged.
    """
    advertised = payload.get("encodings")
    if isinstance(advertised, (list, tuple)) and "binary" in advertised:
        return "binary"
    return "json"


def negotiated_features(payload: Dict[str, object]) -> frozenset:
    """The optional capabilities the peer behind ``payload`` advertised.

    Same contract as :func:`negotiated_encoding`: only features *both*
    sides advertise may be used, and an absent or malformed
    advertisement is an empty set — old peers never see trace context
    (or any later capability) on their frames.
    """
    advertised = payload.get("features")
    if not isinstance(advertised, (list, tuple)):
        return frozenset()
    return frozenset(str(feature) for feature in advertised
                     if feature in FEATURES)


def check_hello(frame: Frame) -> Optional[Frame]:
    """Validate a client's opening frame; an ``error`` frame on refusal.

    Returns ``None`` when the handshake is acceptable.  The version in
    the *payload* is authoritative (the header byte travels with every
    frame; the payload states what the client actually speaks).
    """
    if frame.kind != "hello":
        return Frame("error", {
            "message": f"expected a hello handshake, got {frame.kind!r}"})
    version = frame.payload.get("version")
    if version != PROTOCOL_VERSION:
        return Frame("error", {
            "message": f"protocol version {version!r} is not supported "
                       f"(server speaks {PROTOCOL_VERSION})",
            "server_version": PROTOCOL_VERSION})
    return None


# ---------------------------------------------------------------------------
# the line protocol (stdin REPL) in terms of the same frames
# ---------------------------------------------------------------------------

def parse_line(line: str) -> Optional[Frame]:
    """Parse one REPL command line into a request frame.

    Returns ``None`` for a blank line and a ``quit``-kind sentinel frame
    (not a wire kind) for ``quit``.  Raises exactly what the historical
    ad-hoc parser raised — ``ValueError`` from ``int()``/``float()``,
    ``IndexError`` for missing arguments, :class:`ProtocolError` for an
    unknown command — so the REPL's error lines stay bit-identical.
    """
    parts = line.split()
    if not parts:
        return None
    command, rest = parts[0], parts[1:]
    if command == "quit":
        return Frame("quit")
    if command == "predict":
        return Frame("predict", {"user": int(rest[0]), "item": int(rest[1])})
    if command == "top":
        return Frame("top_n", {
            "user": int(rest[0]),
            "n": int(rest[1]) if len(rest) > 1 else 10,
        })
    if command == "foldin":
        return Frame("foldin", {
            "items": [int(token.partition(":")[0]) for token in rest],
            "values": [float(token.partition(":")[2]) for token in rest],
        })
    if command == "rate":
        return Frame("rate", {
            "user": int(rest[0]),
            "items": [int(token.partition(":")[0]) for token in rest[1:]],
            "values": [float(token.partition(":")[2]) for token in rest[1:]],
        })
    if command == "stats":
        return Frame("stats")
    if command == "health":
        return Frame("health")
    raise ProtocolError(f"unknown command {command!r}")


def format_reply(request: Frame, response: Frame) -> str:
    """Render a response frame as the legacy REPL output line."""
    if response.is_error:
        return f"error: {response.payload['message']}"
    payload = response.payload
    if request.kind == "predict":
        return f"{payload['score']:.4f}"
    if request.kind == "top_n":
        return " ".join(f"{item}:{score:.4f}" for item, score
                        in zip(payload["items"], payload["scores"]))
    if request.kind == "foldin":
        return f"user {payload['user']}"
    if request.kind == "rate":
        return f"user {payload['user']} updated"
    if request.kind in ("stats", "health"):
        # The legacy line format predates the metrics registry: it
        # renders only the flat alias keys, bit-identical to the
        # historical serve loop (pinned by the golden transcript test).
        legacy = {key: value for key, value in payload.items()
                  if key != "metrics"}
        return json.dumps(legacy, sort_keys=True)
    raise ProtocolError(f"no line rendering for {request.kind!r} replies")


# ---------------------------------------------------------------------------
# the shared executor
# ---------------------------------------------------------------------------

def recommendation_payload(recommendation,
                           arrays: bool = False) -> Dict[str, object]:
    """One recommendation as a payload dict.

    With ``arrays=True`` the item-id and score vectors stay the gateway's
    own int64/float64 buffers — the response-buffer path: the frame
    encoder memcpys them straight onto the wire (binary) or converts
    exactly (JSON), with no per-element Python round-trip in between.
    """
    if arrays:
        return {"user": int(recommendation.user),
                "items": np.ascontiguousarray(recommendation.items,
                                              dtype=np.int64),
                "scores": np.ascontiguousarray(recommendation.scores,
                                               dtype=np.float64)}
    return {"user": int(recommendation.user),
            "items": [int(item) for item in recommendation.items],
            "scores": [float(score) for score in recommendation.scores]}


def execute(service, request: Frame,
            extra_health=None, arrays: bool = False) -> Frame:
    """Run one request frame against a gateway; returns the response frame.

    ``service`` is anything with the :class:`PredictionService` serving
    surface (the sharded gateway included).  Domain failures — bad
    indices, crashed workers, malformed arguments — come back as
    ``error`` frames; only programming errors propagate.  ``extra_health``
    optionally supplies server-side counters merged into ``health``
    replies (the TCP server passes its connection/fusion stats).
    ``arrays=True`` keeps score/item vectors as ndarray response buffers
    (see :func:`recommendation_payload`) — the TCP server always passes
    it; the REPL keeps plain lists.
    """
    from repro.serving.cluster import ClusterError
    from repro.utils.validation import ValidationError

    kind, payload = request.kind, request.payload
    try:
        if kind == "top_n":
            recommendation = service.top_n(
                int(payload["user"]), n=int(payload.get("n", 10)),
                exclude_seen=bool(payload.get("exclude_seen", True)))
            return Frame("ok", recommendation_payload(recommendation,
                                                      arrays=arrays))
        if kind == "top_n_batch":
            results = service.top_n_batch(
                [int(user) for user in payload["users"]],
                n=int(payload.get("n", 10)),
                exclude_seen=bool(payload.get("exclude_seen", True)))
            return Frame("ok", {"results": [
                recommendation_payload(results[int(user)], arrays=arrays)
                for user in dict.fromkeys(
                    int(user) for user in payload["users"])]})
        if kind == "predict":
            score = service.predict(int(payload["user"]),
                                    int(payload["item"]))
            return Frame("ok", {"score": float(score)})
        if kind == "predict_batch":
            scores = service.predict_batch(
                np.asarray(payload["users"], dtype=np.int64),
                np.asarray(payload["items"], dtype=np.int64))
            if arrays:
                return Frame("ok", {"scores": np.ascontiguousarray(
                    scores, dtype=np.float64)})
            return Frame("ok", {"scores": [float(score)
                                           for score in scores]})
        if kind == "foldin":
            user = service.fold_in(
                np.asarray(payload["items"], dtype=np.int64),
                np.asarray(payload["values"], dtype=np.float64))
            return Frame("ok", {"user": int(user)})
        if kind == "rate":
            service.add_ratings(
                int(payload["user"]),
                np.asarray(payload["items"], dtype=np.int64),
                np.asarray(payload["values"], dtype=np.float64))
            return Frame("ok", {"user": int(payload["user"])})
        if kind == "stats":
            # The flat keys are the backwards-compatible aliases; the
            # "metrics" entry is the same data normalized onto the
            # registry's dotted names (see repro.obs.metrics).
            flat = dict(service.stats())
            body = dict(flat)
            body["metrics"] = dotted_stats(
                getattr(service, "METRICS_PREFIX", "serving.service"), flat)
            return Frame("ok", body)
        if kind == "health":
            flat = dict(service.stats())
            metrics = dotted_stats(
                getattr(service, "METRICS_PREFIX", "serving.service"), flat)
            body = {
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "n_users": int(service.n_users),
                "n_items": int(service.n_items),
                "stats": flat,
            }
            if payload.get("digest") and hasattr(service, "state_digest"):
                # Opt-in (it hashes every factor row): the fleet
                # convergence check — two replicas with equal digests
                # hold bit-identical mutable state.
                body["digest"] = str(service.state_digest())
            if extra_health is not None:
                extra = dict(extra_health())
                extra_metrics = extra.pop("metrics", None)
                body.update(extra)
                if isinstance(extra_metrics, dict):
                    metrics.update(extra_metrics)
            body["metrics"] = metrics
            return Frame("ok", body)
        return Frame("error", {"message": f"unknown command {kind!r}"})
    except (ValidationError, ClusterError, IndexError, ValueError,
            KeyError, TypeError) as error:
        # ClusterError included: a crashed worker must not kill the
        # serving session — the gateway respawns its pool on the next
        # command.  KeyError/TypeError cover missing or mistyped payload
        # fields from remote clients.
        return Frame("error", {"message": str(error)})
