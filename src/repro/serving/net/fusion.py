"""Cross-user query fusion: coalesce concurrent ``top_n`` requests.

Under heavy traffic many connections ask for rankings at once, and the
per-request cost is dominated by fixed overhead — a full gateway dispatch
(lock, delta flush, one IPC round-trip per worker) per user.
:class:`QueryFuser` batches them: requests arriving together are merged
into a single
:meth:`~repro.serving.cluster.ShardedScorer.top_n_batch` call — one
fan-out to the workers per *window*, with each worker sweeping its shard
once for all users of the window (a blocked GEMM over users x shard whose
microkernel is the single-user GEMV).

Dispatch is *eager*: the first request of a window goes out on the next
event-loop pass (so requests decoded from the same socket read still
join it), which means a lone sequential caller pays no window latency at
all.  While a batch is in flight, newcomers accumulate and are flushed
the moment it completes — natural batching under load, zero added
latency when idle.  ``window_ms`` is the fallback timer bounding how
long an accumulating window can wait if completion flushing is delayed.

De-multiplexing is bit-identical to serving each request alone: the batch
entry point runs the exact single-request arithmetic per user (pinned by
the parity tests in ``tests/test_net_server.py`` and
``tests/test_serving_cluster.py``), and duplicate users inside one window
share one computation and one identical result.

Failure containment: a batch call that raises is *partitioned* — every
distinct user of the window is retried as a singleton batch, so only the
offending request surfaces the error and the rest of the window resolves
normally.  A user missing from a batch result gets a per-future
``LookupError``; no future is ever left pending.

The fuser is transport-agnostic: it only needs an asyncio loop and a
``top_n_batch`` callable, so it is testable without sockets.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.trace import Span, TraceContext, Tracer

__all__ = ["QueryFuser", "DeadlineExpired"]


class DeadlineExpired(RuntimeError):
    """A fused request's deadline ran out while it queued for dispatch.

    Raised on the waiter's future *instead of* scoring it: expired work
    is shed at the flush boundary, so a slow batch ahead in the queue
    never causes the gateway to burn a worker fan-out computing results
    nobody is still waiting for.  The server turns this into a
    ``deadline_exceeded`` error frame.
    """


class QueryFuser:
    """Eagerly-dispatched coalescer for concurrent ``top_n`` requests.

    Parameters
    ----------
    top_n_batch:
        Callable ``(users, n=..., exclude_seen=...) -> Dict[int,
        Recommendation]`` — the gateway's batch entry point.  It runs in
        ``executor`` (the serving gateways block on worker IPC).
    window_ms:
        Fallback flush timer for a window accumulating behind an
        in-flight batch.  Dispatch is eager (see module docstring), so
        this bounds worst-case queueing, not common-case latency.
    max_batch:
        Flush immediately once this many requests are pending.
    executor:
        Passed to ``loop.run_in_executor`` for the batch call.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  A traced window
        gets one ``fusion.window`` span (parented on the first traced
        waiter, covering the batch dispatch) plus one ``fusion.waiter``
        child per request, emitted in demultiplex order — the span
        order is bit-consistent with the response order.
    """

    def __init__(self, top_n_batch, window_ms: float = 2.0,
                 max_batch: int = 64, executor=None,
                 tracer: Optional[Tracer] = None):
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._top_n_batch = top_n_batch
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self._executor = executor
        self._tracer = tracer
        # key -> list of (user, future, deadline, trace); one window per
        # (n, exclude_seen) key so a flush is a single homogeneous batch
        # call.  ``deadline`` is an absolute time.monotonic() instant or
        # None; expired waiters are shed at flush, never dispatched.
        # ``trace`` is the waiter's TraceContext (or None).
        self._pending: Dict[Tuple[int, bool],
                            List[Tuple[int, asyncio.Future,
                                       Optional[float],
                                       Optional[TraceContext]]]] = {}
        self._timers: Dict[Tuple[int, bool], asyncio.TimerHandle] = {}
        self._in_flight: Set[asyncio.Future] = set()
        self.n_requests = 0
        self.n_windows = 0
        self.n_deduplicated = 0
        self.n_partitions = 0
        self.n_expired = 0
        self.max_window = 0

    async def top_n(self, user: int, n: int = 10, exclude_seen: bool = True,
                    deadline: Optional[float] = None,
                    trace: Optional[TraceContext] = None):
        """Queue one request; resolves with the user's Recommendation.

        ``deadline`` (absolute ``time.monotonic()`` seconds) marks when
        the caller stops caring: a waiter still queued past it gets
        :class:`DeadlineExpired` instead of being dispatched.  ``trace``
        carries the request's trace context into the window (ignored
        without a tracer).
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = (int(n), bool(exclude_seen))
        waiters = self._pending.setdefault(key, [])
        waiters.append((int(user), future,
                        float(deadline) if deadline is not None else None,
                        trace if self._tracer is not None else None))
        self.n_requests += 1
        if len(waiters) >= self.max_batch:
            self._flush(key)
        elif len(waiters) == 1:
            if not self._in_flight:
                # Eager path: flush on the next loop pass, after every
                # request already decoded from the same socket read has
                # had its chance to join the window.
                loop.call_soon(self._flush_if_idle, key)
            else:
                # Busy: accumulate behind the in-flight batch; the timer
                # is the fallback in case the completion flush stalls.
                self._timers[key] = loop.call_later(
                    self.window_ms / 1000.0, self._flush, key)
        return await future

    def _flush_if_idle(self, key: Tuple[int, bool]) -> None:
        if not self._in_flight:
            self._flush(key)
        elif key in self._pending and key not in self._timers:
            # A batch got in flight between enqueue and this callback;
            # fall back to accumulate-with-timer.
            self._timers[key] = asyncio.get_running_loop().call_later(
                self.window_ms / 1000.0, self._flush, key)

    def _expire(self, waiters) -> list:
        """Shed waiters whose deadline has passed; returns the live rest.

        The invariant the chaos tests pin: an expired request is *never*
        handed to a scorer — its future fails with
        :class:`DeadlineExpired` right here, at the flush boundary.
        """
        now = time.monotonic()
        alive = []
        for user, future, deadline, trace in waiters:
            if deadline is not None and now >= deadline:
                self.n_expired += 1
                if not future.done():
                    future.set_exception(DeadlineExpired(
                        f"top_n for user {user} queued past its deadline "
                        f"({(now - deadline) * 1000.0:.1f} ms over)"))
            else:
                alive.append((user, future, deadline, trace))
        return alive

    def _flush(self, key: Tuple[int, bool]) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        waiters = self._pending.pop(key, None)
        if waiters:
            waiters = self._expire(waiters)
        if not waiters:
            return
        self.n_windows += 1
        self.max_window = max(self.max_window, len(waiters))
        users = [user for user, _, _, _ in waiters]
        self.n_deduplicated += len(users) - len(set(users))
        n, exclude_seen = key
        loop = asyncio.get_running_loop()
        # One parent span per traced window, parented on the first
        # traced waiter.  Entering it inside run_batch (executor thread)
        # makes it the thread's active span, so the scorer and any
        # chaos shim below attach their children with no plumbing.
        window_span: Optional[Span] = None
        if self._tracer is not None:
            parent = next((trace for _, _, _, trace in waiters
                           if trace is not None), None)
            if parent is not None:
                window_span = self._tracer.start(
                    "fusion.window", parent=parent,
                    attrs={"users": len(users),
                           "distinct": len(set(users)),
                           "n": n, "exclude_seen": exclude_seen})

        def run_batch():
            if window_span is None:
                return self._top_n_batch(users, n=n,
                                         exclude_seen=exclude_seen)
            with window_span:
                return self._top_n_batch(users, n=n,
                                         exclude_seen=exclude_seen)

        task = loop.run_in_executor(self._executor, run_batch)
        self._in_flight.add(task)
        task.add_done_callback(
            lambda done: self._on_batch_done(key, waiters, done,
                                             window_span))

    def _on_batch_done(self, key: Tuple[int, bool], waiters,
                       done: asyncio.Future,
                       window_span: Optional[Span] = None) -> None:
        self._in_flight.discard(done)
        if done.cancelled():
            for _, future, _, _ in waiters:
                if not future.done():
                    future.cancel()
        elif done.exception() is not None:
            self._partition(key, waiters, done.exception())
        else:
            self._resolve(waiters, done.result(), window_span)
        # Eager follow-up: whatever accumulated while this batch was in
        # flight goes out now, without waiting for its fallback timer.
        if not self._in_flight:
            for pending_key in list(self._pending):
                self._flush(pending_key)

    def _resolve(self, waiters, results,
                 window_span: Optional[Span] = None) -> None:
        """Demultiplex one batch result onto its waiters.

        A user absent from ``results`` gets a per-future LookupError —
        indexing straight into the mapping would raise inside this done
        callback and leave every later waiter pending forever.

        Traced windows emit one ``fusion.waiter`` child per waiter as
        it resolves, so the child-span order matches the response order
        exactly (the invariant ``tests/test_obs_tracing.py`` pins).
        """
        for index, (user, future, _, trace) in enumerate(waiters):
            if window_span is not None:
                attrs: Dict[str, object] = {"user": user, "index": index}
                if trace is not None \
                        and trace.trace_id != window_span.trace_id:
                    # Cross-trace join: the waiter rode a window rooted
                    # in another request's trace; link, don't re-parent.
                    attrs["origin_trace_id"] = trace.trace_id
                    attrs["origin_span_id"] = trace.span_id
                self._tracer.emit("fusion.waiter", parent=window_span,
                                  attrs=attrs)
            if future.done():
                continue
            if user in results:
                future.set_result(results[user])
            else:
                future.set_exception(LookupError(
                    f"user {user} missing from fused batch result"))

    def _partition(self, key: Tuple[int, bool], waiters,
                   error: BaseException) -> None:
        """A batch call raised: retry each distinct user alone.

        One invalid user must not poison the window — every other
        request re-runs as a singleton batch and resolves normally;
        only the offender gets its own error.  A window of one skips
        the retry (the error is already correctly attributed).
        """
        by_user: Dict[int, List[asyncio.Future]] = {}
        for user, future, _, _ in waiters:
            by_user.setdefault(user, []).append(future)
        if len(by_user) == 1:
            for futures in by_user.values():
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
            return
        self.n_partitions += 1
        n, exclude_seen = key
        loop = asyncio.get_running_loop()
        for user, futures in by_user.items():
            task = loop.run_in_executor(
                self._executor,
                lambda u=user: self._top_n_batch(
                    [u], n=n, exclude_seen=exclude_seen))
            self._in_flight.add(task)
            task.add_done_callback(
                lambda done, u=user, fs=futures:
                self._resolve_single(u, fs, done))

    def _resolve_single(self, user: int, futures, done) -> None:
        self._in_flight.discard(done)
        if done.cancelled():
            for future in futures:
                if not future.done():
                    future.cancel()
            return
        error = done.exception()
        if error is None:
            results = done.result()
            if user in results:
                for future in futures:
                    if not future.done():
                        future.set_result(results[user])
                return
            error = LookupError(
                f"user {user} missing from fused batch result")
        for future in futures:
            if not future.done():
                future.set_exception(error)

    async def drain(self) -> None:
        """Flush every window and wait until nothing is pending."""
        while self._pending or self._in_flight:
            futures = [future for waiters in self._pending.values()
                       for _, future, _, _ in waiters]
            for key in list(self._pending):
                self._flush(key)
            awaitables = futures + list(self._in_flight)
            if not awaitables:
                break
            await asyncio.gather(*awaitables, return_exceptions=True)

    def stats(self) -> Dict[str, int]:
        """Fusion counters for the ``health`` frame (legacy flat names,
        kept as aliases of :meth:`metrics`)."""
        return {
            "fusion_requests": self.n_requests,
            "fusion_windows": self.n_windows,
            "fusion_deduplicated": self.n_deduplicated,
            "fusion_partitions": self.n_partitions,
            "fusion_expired": self.n_expired,
            "fusion_max_window": self.max_window,
        }

    def metrics(self) -> Dict[str, int]:
        """:meth:`stats` under the normalized registry schema — the
        ``fusion_`` prefix becomes the dotted ``serving.fusion.`` one."""
        return {
            "requests": self.n_requests,
            "windows": self.n_windows,
            "deduplicated": self.n_deduplicated,
            "partitions": self.n_partitions,
            "expired": self.n_expired,
            "max_window": self.max_window,
        }
