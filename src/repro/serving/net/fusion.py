"""Cross-user query fusion: coalesce concurrent ``top_n`` requests.

Under heavy traffic many connections ask for rankings at once, and the
per-request cost is dominated by fixed overhead — a full gateway dispatch
(lock, delta flush, one IPC round-trip per worker) per user.
:class:`QueryFuser` batches them: requests arriving within a short window
(or until the batch cap) are merged into a single
:meth:`~repro.serving.cluster.ShardedScorer.top_n_batch` call — one
fan-out to the workers per *window*, with each worker sweeping its shard
once for all users of the window (a blocked GEMM over users x shard whose
microkernel is the single-user GEMV).

De-multiplexing is bit-identical to serving each request alone: the batch
entry point runs the exact single-request arithmetic per user (pinned by
the parity tests in ``tests/test_net_server.py`` and
``tests/test_serving_cluster.py``), and duplicate users inside one window
share one computation and one identical result.

The fuser is transport-agnostic: it only needs an asyncio loop and a
``top_n_batch`` callable, so it is testable without sockets.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

__all__ = ["QueryFuser"]


class QueryFuser:
    """Time/size-windowed coalescer for concurrent ``top_n`` requests.

    Parameters
    ----------
    top_n_batch:
        Callable ``(users, n=..., exclude_seen=...) -> Dict[int,
        Recommendation]`` — the gateway's batch entry point.  It runs in
        ``executor`` (the serving gateways block on worker IPC).
    window_ms:
        How long the first request of a window waits for company.  ``0``
        still fuses whatever arrives within one event-loop pass.
    max_batch:
        Flush immediately once this many requests are pending.
    executor:
        Passed to ``loop.run_in_executor`` for the batch call.
    """

    def __init__(self, top_n_batch, window_ms: float = 2.0,
                 max_batch: int = 64, executor=None):
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._top_n_batch = top_n_batch
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self._executor = executor
        # key -> list of (user, future); one window per (n, exclude_seen)
        # key so a flush is a single homogeneous batch call.
        self._pending: Dict[Tuple[int, bool],
                            List[Tuple[int, asyncio.Future]]] = {}
        self._timers: Dict[Tuple[int, bool], asyncio.TimerHandle] = {}
        self.n_requests = 0
        self.n_windows = 0
        self.n_deduplicated = 0
        self.max_window = 0

    async def top_n(self, user: int, n: int = 10,
                    exclude_seen: bool = True):
        """Queue one request; resolves with the user's Recommendation."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = (int(n), bool(exclude_seen))
        waiters = self._pending.setdefault(key, [])
        waiters.append((int(user), future))
        self.n_requests += 1
        if len(waiters) >= self.max_batch:
            self._flush(key)
        elif len(waiters) == 1:
            # First request of the window arms its flush timer.
            self._timers[key] = loop.call_later(
                self.window_ms / 1000.0, self._flush, key)
        return await future

    def _flush(self, key: Tuple[int, bool]) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        waiters = self._pending.pop(key, None)
        if not waiters:
            return
        self.n_windows += 1
        self.max_window = max(self.max_window, len(waiters))
        users = [user for user, _ in waiters]
        self.n_deduplicated += len(users) - len(set(users))
        n, exclude_seen = key
        loop = asyncio.get_running_loop()

        def run_batch():
            return self._top_n_batch(users, n=n, exclude_seen=exclude_seen)

        task = loop.run_in_executor(self._executor, run_batch)
        task.add_done_callback(
            lambda done: self._resolve(waiters, done))

    @staticmethod
    def _resolve(waiters, done) -> None:
        error = done.exception()
        if error is not None:
            for _, future in waiters:
                if not future.done():
                    future.set_exception(error)
            return
        results = done.result()
        for user, future in waiters:
            if not future.done():
                future.set_result(results[user])

    async def drain(self) -> None:
        """Flush every armed window and wait for the pending futures."""
        futures = [future for waiters in self._pending.values()
                   for _, future in waiters]
        for key in list(self._pending):
            self._flush(key)
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    def stats(self) -> Dict[str, int]:
        """Fusion counters for the ``health`` frame."""
        return {
            "fusion_requests": self.n_requests,
            "fusion_windows": self.n_windows,
            "fusion_deduplicated": self.n_deduplicated,
            "fusion_max_window": self.max_window,
        }
