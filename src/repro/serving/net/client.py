"""Client library for the framed TCP serving protocol.

Two variants over one failover policy:

* :class:`ServingClient` — blocking sockets, for scripts, benchmarks and
  the CLI;
* :class:`AsyncServingClient` — asyncio streams, for event-loop callers.

Both take the :class:`~repro.serving.net.replica.ReplicaSet` address
list and do health-checked round-robin with automatic failover:

* **Transport failures** (refused, reset, timeout, EOF, torn frames) on
  an *idempotent read* (``top_n``, ``top_n_batch``, ``predict``,
  ``stats``, ``health``) retry at most once per remaining replica; the
  failed replica enters a cooldown and is skipped until it expires.
* **Mutations** (``rate``, ``foldin``) are never replayed — the request
  may have been applied before the connection died, and at-most-once is
  the only honest contract a share-nothing replica set can offer.
  Callers get :class:`NetError` naming the replica that failed.
* **Server-side domain errors** (an ``error`` frame: bad user id, worker
  crash message) are definitive answers, not transport failures — they
  raise :class:`NetError` immediately, with no failover.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.recommend import Recommendation
from repro.serving.net.protocol import (
    Frame,
    FrameDecoder,
    IDEMPOTENT_KINDS,
    ProtocolError,
    encode_frame,
    hello_frame,
)

__all__ = ["NetError", "ServingClient", "AsyncServingClient"]

_READ_CHUNK = 1 << 16


class NetError(RuntimeError):
    """A request could not be served (transport or server-side)."""


class _AddressRing:
    """Round-robin address selection with per-address failure cooldown."""

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 cooldown: float = 1.0):
        if not addresses:
            raise ValueError("at least one replica address is required")
        self.addresses = [(str(host), int(port))
                          for host, port in addresses]
        self.cooldown = float(cooldown)
        self._next = 0
        self._dead_until: Dict[int, float] = {}

    def candidates(self) -> List[int]:
        """Every index once, healthy first, starting after the last used."""
        order = [(self._next + step) % len(self.addresses)
                 for step in range(len(self.addresses))]
        now = time.monotonic()
        healthy = [index for index in order
                   if self._dead_until.get(index, 0.0) <= now]
        cooling = [index for index in order if index not in healthy]
        # Cooling replicas stay last-resort candidates: with every replica
        # down we would rather retry one than fail without trying.
        return healthy + cooling

    def mark_used(self, index: int) -> None:
        self._next = (index + 1) % len(self.addresses)

    def mark_alive(self, index: int) -> None:
        self._dead_until.pop(index, None)

    def mark_dead(self, index: int) -> None:
        self._dead_until[index] = time.monotonic() + self.cooldown


def _recommendation(payload: Dict[str, object]) -> Recommendation:
    return Recommendation(
        user=int(payload["user"]),
        items=np.asarray(payload["items"], dtype=np.int64),
        scores=np.asarray(payload["scores"], dtype=np.float64))


class _ClientCore:
    """Failover policy and request construction shared by both clients.

    The sync and async variants differ only in their transport
    primitives (connect / roundtrip / drop); every policy decision —
    cooldown bookkeeping, when a mutation may be retried, how errors
    surface — lives here so the two cannot drift apart.
    """

    _ring: _AddressRing
    n_failovers: int

    def _on_connect_failure(self, index: int, error: BaseException,
                            failures: List[str]) -> None:
        """Connect/handshake failed: no byte of the request was sent.

        Always safe to try the next replica — even for mutations
        (a :class:`NetError` here is a handshake refusal).
        """
        self._ring.mark_dead(index)
        failures.append(f"{self._ring.addresses[index]}: {error!r}")

    def _on_roundtrip_failure(self, frame: Frame, index: int,
                              error: BaseException,
                              failures: List[str]) -> None:
        """The request went out and the reply never came back whole.

        Idempotent reads move on to the next replica; mutations raise —
        the request may already have been applied, and at-most-once is
        the only honest contract a share-nothing replica set can offer.
        """
        address = self._ring.addresses[index]
        self._ring.mark_dead(index)
        failures.append(f"{address}: {error!r}")
        if frame.kind not in IDEMPOTENT_KINDS:
            raise NetError(
                f"{frame.kind!r} against {address} failed ({error!r}); "
                "not retried — the request mutates state and may already "
                "have been applied") from error

    def _on_reply(self, reply: Frame, index: int,
                  attempt: int) -> Dict[str, object]:
        """A complete reply: a server-side ``error`` frame is definitive
        (no failover); anything else is the answer."""
        self._ring.mark_alive(index)
        self._ring.mark_used(index)
        if attempt > 0:
            self.n_failovers += 1
        if reply.is_error:
            raise NetError(str(reply.payload.get("message")))
        return reply.payload

    @staticmethod
    def _every_replica_failed(failures: List[str]) -> NetError:
        return NetError("every replica failed: " + "; ".join(failures))

    @staticmethod
    def _top_n_frame(user, n, exclude_seen) -> Frame:
        return Frame("top_n", {"user": int(user), "n": int(n),
                               "exclude_seen": bool(exclude_seen)})

    @staticmethod
    def _batch_frame(users, n, exclude_seen) -> Frame:
        return Frame("top_n_batch", {
            "users": [int(user) for user in users], "n": int(n),
            "exclude_seen": bool(exclude_seen)})

    @staticmethod
    def _rating_payload(items, values) -> Dict[str, object]:
        return {"items": [int(item) for item in np.asarray(items).ravel()],
                "values": [float(value)
                           for value in np.asarray(values).ravel()]}

    @staticmethod
    def _batch_result(payload) -> Dict[int, Recommendation]:
        return {int(entry["user"]): _recommendation(entry)
                for entry in payload["results"]}


class ServingClient(_ClientCore):
    """Blocking client over the replica address list (see module docs).

    Connections are cached per replica and re-established on demand; use
    as a context manager or call :meth:`close`.
    """

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 timeout: float = 10.0, cooldown: float = 1.0):
        self._ring = _AddressRing(addresses, cooldown=cooldown)
        self.timeout = float(timeout)
        self._connections: Dict[int, Tuple[socket.socket, FrameDecoder]] = {}
        self.n_failovers = 0

    # -- transport ---------------------------------------------------------

    def _connect(self, index: int) -> Tuple[socket.socket, FrameDecoder]:
        cached = self._connections.get(index)
        if cached is not None:
            return cached
        sock = socket.create_connection(self._ring.addresses[index],
                                        timeout=self.timeout)
        sock.settimeout(self.timeout)
        decoder = FrameDecoder()
        connection = (sock, decoder)
        self._connections[index] = connection
        try:
            reply = self._roundtrip(connection, hello_frame())
        except BaseException:
            self._drop(index)
            raise
        if reply.is_error:
            self._drop(index)
            raise NetError(
                f"replica {self._ring.addresses[index]} refused the "
                f"handshake: {reply.payload.get('message')}")
        return connection

    def _drop(self, index: int) -> None:
        connection = self._connections.pop(index, None)
        if connection is not None:
            try:
                connection[0].close()
            except OSError:  # pragma: no cover
                pass

    @staticmethod
    def _roundtrip(connection, frame: Frame) -> Frame:
        sock, decoder = connection
        sock.sendall(encode_frame(frame))
        while True:
            data = sock.recv(_READ_CHUNK)
            if not data:
                raise ConnectionError("server closed the connection")
            frames = decoder.feed(data)
            if frames:
                return frames[0]

    def _request(self, frame: Frame) -> Dict[str, object]:
        failures: List[str] = []
        for attempt, index in enumerate(self._ring.candidates()):
            try:
                connection = self._connect(index)
            except (OSError, ConnectionError, ProtocolError,
                    socket.timeout, NetError) as error:
                self._on_connect_failure(index, error, failures)
                continue
            try:
                reply = self._roundtrip(connection, frame)
            except (OSError, ConnectionError, ProtocolError,
                    socket.timeout) as error:
                self._drop(index)
                self._on_roundtrip_failure(frame, index, error, failures)
                continue
            return self._on_reply(reply, index, attempt)
        raise self._every_replica_failed(failures)

    # -- the serving surface ----------------------------------------------

    def top_n(self, user: int, n: int = 10,
              exclude_seen: bool = True) -> Recommendation:
        return _recommendation(self._request(
            self._top_n_frame(user, n, exclude_seen)))

    def top_n_batch(self, users: Iterable[int], n: int = 10,
                    exclude_seen: bool = True) -> Dict[int, Recommendation]:
        return self._batch_result(self._request(
            self._batch_frame(users, n, exclude_seen)))

    def predict(self, user: int, item: int) -> float:
        payload = self._request(Frame("predict", {"user": int(user),
                                                  "item": int(item)}))
        return float(payload["score"])

    def fold_in(self, items, values) -> int:
        return int(self._request(
            Frame("foldin", self._rating_payload(items, values)))["user"])

    def rate(self, user: int, items, values) -> int:
        payload = self._rating_payload(items, values)
        payload["user"] = int(user)
        return int(self._request(Frame("rate", payload))["user"])

    def stats(self) -> Dict[str, object]:
        return self._request(Frame("stats"))

    def health(self) -> Dict[str, object]:
        return self._request(Frame("health"))

    def close(self) -> None:
        for index in list(self._connections):
            self._drop(index)

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServingClient(_ClientCore):
    """Asyncio variant of :class:`ServingClient` (same failover policy)."""

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 timeout: float = 10.0, cooldown: float = 1.0):
        self._ring = _AddressRing(addresses, cooldown=cooldown)
        self.timeout = float(timeout)
        self._connections: Dict[int, Tuple[asyncio.StreamReader,
                                           asyncio.StreamWriter,
                                           FrameDecoder]] = {}
        self.n_failovers = 0

    async def _connect(self, index: int):
        cached = self._connections.get(index)
        if cached is not None:
            return cached
        host, port = self._ring.addresses[index]
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.timeout)
        connection = (reader, writer, FrameDecoder())
        self._connections[index] = connection
        try:
            reply = await self._roundtrip(connection, hello_frame())
        except BaseException:
            await self._drop(index)
            raise
        if reply.is_error:
            await self._drop(index)
            raise NetError(
                f"replica {self._ring.addresses[index]} refused the "
                f"handshake: {reply.payload.get('message')}")
        return connection

    async def _drop(self, index: int) -> None:
        connection = self._connections.pop(index, None)
        if connection is not None:
            connection[1].close()
            try:
                await connection[1].wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass

    async def _roundtrip(self, connection, frame: Frame) -> Frame:
        reader, writer, decoder = connection
        writer.write(encode_frame(frame))
        await asyncio.wait_for(writer.drain(), timeout=self.timeout)
        while True:
            data = await asyncio.wait_for(reader.read(_READ_CHUNK),
                                          timeout=self.timeout)
            if not data:
                raise ConnectionError("server closed the connection")
            frames = decoder.feed(data)
            if frames:
                return frames[0]

    async def _request(self, frame: Frame) -> Dict[str, object]:
        failures: List[str] = []
        for attempt, index in enumerate(self._ring.candidates()):
            try:
                connection = await self._connect(index)
            except (OSError, ConnectionError, ProtocolError,
                    asyncio.TimeoutError, NetError) as error:
                self._on_connect_failure(index, error, failures)
                continue
            try:
                reply = await self._roundtrip(connection, frame)
            except (OSError, ConnectionError, ProtocolError,
                    asyncio.TimeoutError) as error:
                await self._drop(index)
                self._on_roundtrip_failure(frame, index, error, failures)
                continue
            return self._on_reply(reply, index, attempt)
        raise self._every_replica_failed(failures)

    async def top_n(self, user: int, n: int = 10,
                    exclude_seen: bool = True) -> Recommendation:
        return _recommendation(await self._request(
            self._top_n_frame(user, n, exclude_seen)))

    async def top_n_batch(self, users: Iterable[int], n: int = 10,
                          exclude_seen: bool = True
                          ) -> Dict[int, Recommendation]:
        return self._batch_result(await self._request(
            self._batch_frame(users, n, exclude_seen)))

    async def predict(self, user: int, item: int) -> float:
        payload = await self._request(
            Frame("predict", {"user": int(user), "item": int(item)}))
        return float(payload["score"])

    async def fold_in(self, items, values) -> int:
        payload = await self._request(
            Frame("foldin", self._rating_payload(items, values)))
        return int(payload["user"])

    async def rate(self, user: int, items, values) -> int:
        payload = self._rating_payload(items, values)
        payload["user"] = int(user)
        return int((await self._request(Frame("rate", payload)))["user"])

    async def stats(self) -> Dict[str, object]:
        return await self._request(Frame("stats"))

    async def health(self) -> Dict[str, object]:
        return await self._request(Frame("health"))

    async def close(self) -> None:
        for index in list(self._connections):
            await self._drop(index)

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
