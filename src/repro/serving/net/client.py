"""Client library for the framed TCP serving protocol.

Two variants over one failover policy:

* :class:`ServingClient` — blocking sockets, for scripts, benchmarks and
  the CLI;
* :class:`AsyncServingClient` — asyncio streams, for event-loop callers.

Both take the :class:`~repro.serving.net.replica.ReplicaSet` address
list and do health-checked round-robin with automatic failover:

* **Transport failures** (refused, reset, timeout, EOF, torn frames) on
  an *idempotent read* (``top_n``, ``top_n_batch``, ``predict``,
  ``predict_batch``, ``stats``, ``health``) retry at most once per
  remaining replica; the failed replica enters a cooldown and is skipped
  until it expires.
* **Mutations** (``rate``, ``foldin``) are retryable too — by default
  every mutation carries a client-unique ``write_id``, and the WAL
  leader (:mod:`repro.serving.wal`) dedups on it, so replaying the
  request onto another replica applies it *exactly once*: the retry of
  an already-committed write gets the original ack back.  Pass
  ``retry_writes=False`` to drop the write_id and restore the old
  at-most-once behaviour (a transport failure mid-mutation then raises
  :class:`NetError` naming the replica, with no failover).
* **Server-side domain errors** (an ``error`` frame: bad user id, worker
  crash message) are definitive answers, not transport failures — they
  raise :class:`NetError` immediately, with no failover.  The one
  exception is an error frame marked ``"retryable": true`` (the server
  refused *without applying*, e.g. a replica whose WAL leader is
  unreachable): those fail over like a transport error.

Two wire-speed features ride on the same connections:

* **Binary array frames** — the hello handshake negotiates the binary
  payload encoding (see :mod:`repro.serving.net.protocol`); when both
  peers advertise it, item-id and score vectors cross the wire as raw
  little-endian buffers instead of JSON decimal text, bit-exact either
  way.  Pass ``binary=False`` to force the JSON fallback.
* **Request pipelining** — :meth:`ServingClient.top_n_pipelined` keeps a
  window of id-tagged requests in flight on one connection instead of
  one round-trip per request; replies are matched by id, so arrival
  order does not matter.  :class:`AsyncServingClient` dispatches *every*
  request by id, which makes concurrent use from many coroutines safe
  and gives :meth:`AsyncServingClient.top_n_pipelined` for free.

Every decoded frame a read produces is queued per connection and
consumed in order — a read that completes two replies can never drop
the second one.
"""

from __future__ import annotations

import asyncio
import collections
import secrets
import socket
import time
from typing import (Deque, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

import numpy as np

from repro.core.recommend import Recommendation
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.serving.net.backoff import Backoff
from repro.serving.net.protocol import (
    ENCODINGS,
    ERROR_DEADLINE,
    Frame,
    FrameDecoder,
    IDEMPOTENT_KINDS,
    ProtocolError,
    TRACE_FEATURE,
    encode_frame,
    hello_frame,
    negotiated_encoding,
    negotiated_features,
)

__all__ = ["NetError", "DeadlineError", "ServingClient",
           "AsyncServingClient"]

_READ_CHUNK = 1 << 16


class NetError(RuntimeError):
    """A request could not be served (transport or server-side).

    ``retryable`` is True when the failed request is known *not* to have
    been applied anywhere (an all-replicas-down read, a shed write): the
    caller may safely re-issue it.  It is False for definitive
    server-side answers and for an unreplayable mutation failure.
    """

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = bool(retryable)


class DeadlineError(NetError):
    """The request's ``deadline_ms`` budget expired before it was served.

    Always retryable — expiry happens *before* dispatch (client-side, or
    the server's pre-dispatch gate), so nothing was applied — but never
    failed over automatically: the budget is spent, and replaying the
    request elsewhere with an already-expired deadline could only
    produce more of the same error.  Callers that still care re-issue
    with a fresh budget.
    """

    def __init__(self, message: str):
        super().__init__(message, retryable=True)


class _AddressRing:
    """Round-robin address selection with per-address failure backoff.

    A replica's cooldown grows exponentially with its *consecutive*
    failure count (capped, jittered — see :class:`Backoff`) and resets
    on the first success, so a flapping replica is probed quickly while
    a down one stops eating a connect-timeout from every request cycle.
    """

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 backoff: Optional[Backoff] = None):
        if not addresses:
            raise ValueError("at least one replica address is required")
        self.addresses = [(str(host), int(port))
                          for host, port in addresses]
        self.backoff = backoff if backoff is not None else Backoff()
        self._next = 0
        self._failures: Dict[int, int] = {}
        self._dead_until: Dict[int, float] = {}

    def candidates(self) -> List[int]:
        """Every index once, healthy first, starting after the last used."""
        order = [(self._next + step) % len(self.addresses)
                 for step in range(len(self.addresses))]
        now = time.monotonic()
        healthy = [index for index in order
                   if self._dead_until.get(index, 0.0) <= now]
        cooling = [index for index in order if index not in healthy]
        # Cooling replicas stay last-resort candidates: with every replica
        # down we would rather retry one than fail without trying.
        return healthy + cooling

    def mark_used(self, index: int) -> None:
        self._next = (index + 1) % len(self.addresses)

    def mark_alive(self, index: int) -> None:
        self._dead_until.pop(index, None)
        self._failures.pop(index, None)

    def mark_dead(self, index: int) -> None:
        failures = self._failures.get(index, 0) + 1
        self._failures[index] = failures
        self._dead_until[index] = (time.monotonic()
                                   + self.backoff.delay(failures))


def _recommendation(payload: Dict[str, object]) -> Recommendation:
    return Recommendation(
        user=int(payload["user"]),
        items=np.asarray(payload["items"], dtype=np.int64),
        scores=np.asarray(payload["scores"], dtype=np.float64))


class _ClientCore:
    """Failover policy and request construction shared by both clients.

    The sync and async variants differ only in their transport
    primitives (connect / roundtrip / drop); every policy decision —
    cooldown bookkeeping, when a mutation may be retried, how errors
    surface — lives here so the two cannot drift apart.
    """

    _ring: _AddressRing
    binary: bool
    retry_writes: bool
    n_failovers: int
    tracer: Optional[Tracer]

    def _init_writes(self, retry_writes: bool) -> None:
        self.retry_writes = bool(retry_writes)
        # write_ids must be unique per *logical* write across every
        # client instance that could retry it: a random prefix plus a
        # local counter, never reused between calls.
        self._write_prefix = secrets.token_hex(8)
        self._write_count = 0
        #: Highest WAL seqno any ack reported — after a write returns,
        #: every replica whose applied seqno reaches this value reflects
        #: it (read-your-writes across the fleet).
        self.last_seqno = 0

    def _new_write_id(self) -> str:
        self._write_count += 1
        return f"{self._write_prefix}-{self._write_count}"

    def _hello(self) -> Frame:
        """The opening frame, offering binary only when we accept it
        (and the ``trace`` feature only when tracing is on)."""
        return hello_frame(
            ENCODINGS if self.binary else ("json",),
            features=(TRACE_FEATURE,) if self.tracer is not None else ())

    def _negotiate(self, reply: Frame) -> bool:
        """Whether this connection speaks binary frames both ways."""
        return self.binary and negotiated_encoding(reply.payload) == "binary"

    def _negotiate_trace(self, reply: Frame) -> bool:
        """Whether trace context may ride this connection's frames.

        Both peers must advertise the feature — an old server ignores
        the client's offer and its reply carries no ``features``, so
        frames to it stay trace-free and it keeps working unchanged.
        """
        return (self.tracer is not None
                and TRACE_FEATURE in negotiated_features(reply.payload))

    # -- tracing helpers ---------------------------------------------------

    def _trace_root(self, frame: Frame) -> Optional[Span]:
        """The root span of one logical request (``client.<kind>``)."""
        if self.tracer is None:
            return None
        return self.tracer.start(f"client.{frame.kind}")

    def _trace_attempt(self, root: Optional[Span], index: int,
                       attempt: int):
        """One failover attempt's child span (``client.attempt``).

        Every attempt of a request shares the root's ``trace_id`` —
        failover produces a *new attempt span in the same trace*, which
        is the invariant the failover tracing test pins.  Returns the
        inert :data:`NULL_SPAN` when tracing is off.
        """
        if root is None:
            return NULL_SPAN
        host, port = self._ring.addresses[index]
        return self.tracer.start("client.attempt", parent=root,
                                 attrs={"replica": f"{host}:{port}",
                                        "attempt": attempt})

    @staticmethod
    def _stamp_trace(frame: Frame, enabled: bool, span) -> None:
        """Stamp (or strip) this attempt's trace context on the frame.

        Per-attempt like ``deadline_ms``: each attempt parents the
        server side on *its own* span.  A connection that did not
        negotiate the feature gets a clean frame, keeping the bytes to
        an old server identical to the pre-trace protocol.
        """
        if enabled and isinstance(span, Span):
            frame.payload["trace"] = span.context().to_wire()
        else:
            frame.payload.pop("trace", None)

    def _finish_root(self, root: Optional[Span], frame: Frame,
                     error: Optional[BaseException]) -> None:
        if root is None:
            return
        frame.payload.pop("trace", None)
        if error is not None:
            root.set_attr("error", repr(error))
        root.finish()

    def _on_connect_failure(self, index: int, error: BaseException,
                            failures: List[str]) -> None:
        """Connect/handshake failed: no byte of the request was sent.

        Always safe to try the next replica — even for mutations
        (a :class:`NetError` here is a handshake refusal).
        """
        self._ring.mark_dead(index)
        failures.append(f"{self._ring.addresses[index]}: {error!r}")

    def _on_roundtrip_failure(self, frame: Frame, index: int,
                              error: BaseException,
                              failures: List[str]) -> None:
        """The request went out and the reply never came back whole.

        Idempotent reads move on to the next replica, and so do
        mutations carrying a ``write_id`` — the WAL leader dedups the
        replay, so a retry of an already-applied write returns the
        original ack instead of double-applying.  Only a mutation
        *without* a write_id (``retry_writes=False``) raises: it may
        already have been applied and nothing could dedup the replay.
        """
        address = self._ring.addresses[index]
        self._ring.mark_dead(index)
        failures.append(f"{address}: {error!r}")
        if frame.kind not in IDEMPOTENT_KINDS \
                and "write_id" not in frame.payload:
            raise NetError(
                f"{frame.kind!r} against {address} failed ({error!r}); "
                "not retried — the request mutates state, may already "
                "have been applied, and carries no write_id to dedup a "
                "replay") from error

    @staticmethod
    def _retryable_error(reply: Frame) -> bool:
        """An ``error`` frame the server marked ``retryable``: it refused
        the request *without applying it* (e.g. a replica whose WAL
        leader is unreachable, or admission control shed it), so failing
        over is always safe."""
        return reply.is_error and bool(reply.payload.get("retryable"))

    def _raise_if_deadline_reply(self, reply: Frame, index: int) -> None:
        """A ``deadline_exceeded`` error ends the request *now*.

        The frame is marked retryable (nothing was applied), but failing
        over would replay an already-spent budget — so unlike other
        retryable errors it surfaces immediately, as
        :class:`DeadlineError`, and the replica (which answered
        promptly and healthily) stays out of cooldown.
        """
        if reply.is_error and reply.payload.get("code") == ERROR_DEADLINE:
            self._ring.mark_alive(index)
            raise DeadlineError(str(reply.payload.get("message")))

    def _on_retryable_error(self, reply: Frame, index: int,
                            failures: List[str]) -> None:
        """The replica answered but declined: leave it out of cooldown
        (it is healthy for reads) and move on to the next one."""
        self._ring.mark_alive(index)
        failures.append(f"{self._ring.addresses[index]}: "
                        f"{reply.payload.get('message')}")

    def _on_reply(self, reply: Frame, index: int,
                  attempt: int) -> Dict[str, object]:
        """A complete reply: a server-side ``error`` frame is definitive
        (no failover); anything else is the answer."""
        self._ring.mark_alive(index)
        self._ring.mark_used(index)
        if attempt > 0:
            self.n_failovers += 1
        if reply.is_error:
            raise NetError(str(reply.payload.get("message")))
        seqno = reply.payload.get("seqno")
        if isinstance(seqno, int):
            self.last_seqno = max(self.last_seqno, seqno)
        return reply.payload

    @staticmethod
    def _every_replica_failed(failures: List[str]) -> NetError:
        # Retryable by construction: any request that exhausts the ring
        # was safe to fail over in the first place (an idempotent read,
        # or a mutation whose write_id dedups a replay) — an unreplayable
        # mutation raised on its first transport failure instead.
        return NetError("every replica failed: " + "; ".join(failures),
                        retryable=True)

    class _DeadlineClock:
        """Per-request budget bookkeeping shared by both clients.

        Created once per logical request; each failover attempt asks for
        the *remaining* budget, which is stamped into that attempt's
        frame as ``deadline_ms`` (and bounds its transport timeout), so
        queue time on a first replica is never granted again on the
        second.
        """

        __slots__ = ("budget_s", "started")

        def __init__(self, deadline_ms: Optional[float]):
            self.budget_s = (None if deadline_ms is None
                             else float(deadline_ms) / 1000.0)
            if self.budget_s is not None and self.budget_s <= 0:
                raise DeadlineError(
                    f"deadline_ms={deadline_ms} leaves no budget")
            self.started = time.monotonic()

        def remaining(self, frame: Frame) -> Optional[float]:
            """Seconds left; stamps the frame and raises when spent."""
            if self.budget_s is None:
                frame.payload.pop("deadline_ms", None)
                return None
            left = self.budget_s - (time.monotonic() - self.started)
            if left <= 0:
                raise DeadlineError(
                    f"{frame.kind!r} spent its "
                    f"{self.budget_s * 1000.0:.0f} ms budget before "
                    "any replica answered")
            frame.payload["deadline_ms"] = round(left * 1000.0, 3)
            return left

        def expired(self) -> bool:
            return (self.budget_s is not None and
                    time.monotonic() - self.started >= self.budget_s)

        def spent(self, frame: Frame, failures: List[str]) -> DeadlineError:
            return DeadlineError(
                f"{frame.kind!r} spent its {self.budget_s * 1000.0:.0f} ms "
                f"budget retrying ({'; '.join(failures[-2:])})")

    @staticmethod
    def _top_n_frame(user, n, exclude_seen) -> Frame:
        return Frame("top_n", {"user": int(user), "n": int(n),
                               "exclude_seen": bool(exclude_seen)})

    @staticmethod
    def _batch_frame(users, n, exclude_seen) -> Frame:
        return Frame("top_n_batch", {
            "users": [int(user) for user in users], "n": int(n),
            "exclude_seen": bool(exclude_seen)})

    @staticmethod
    def _predict_batch_frame(users, items) -> Frame:
        # ndarray payload values work on both encodings: raw blocks on a
        # binary connection, exact JSON lists on a JSON one.
        return Frame("predict_batch", {
            "users": np.ascontiguousarray(
                np.asarray(users, dtype=np.int64).ravel()),
            "items": np.ascontiguousarray(
                np.asarray(items, dtype=np.int64).ravel())})

    def _rating_payload(self, items, values) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "items": [int(item) for item in np.asarray(items).ravel()],
            "values": [float(value)
                       for value in np.asarray(values).ravel()]}
        if self.retry_writes:
            payload["write_id"] = self._new_write_id()
        return payload

    @staticmethod
    def _batch_result(payload) -> Dict[int, Recommendation]:
        return {int(entry["user"]): _recommendation(entry)
                for entry in payload["results"]}

    @staticmethod
    def _pipeline_errors(errors: Dict[int, str], total: int) -> NetError:
        slot = min(errors)
        return NetError(
            f"{len(errors)} of {total} pipelined requests failed; "
            f"first (slot {slot}): {errors[slot]}")


class _SyncConnection:
    """One cached socket plus its decode state and negotiated encoding."""

    __slots__ = ("sock", "decoder", "frames", "binary", "trace")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = FrameDecoder()
        self.frames: Deque[Frame] = collections.deque()
        self.binary = False
        self.trace = False


class ServingClient(_ClientCore):
    """Blocking client over the replica address list (see module docs).

    Connections are cached per replica and re-established on demand; use
    as a context manager or call :meth:`close`.  ``binary=False`` forces
    the JSON payload encoding even against a binary-capable server;
    ``retry_writes=False`` drops the ``write_id`` from mutations and
    with it their failover (back to at-most-once).

    ``cooldown``/``backoff_max`` shape the failure backoff: a replica's
    cooldown starts at ``cooldown`` seconds and doubles per consecutive
    failure up to ``backoff_max`` (with seeded jitter via
    ``backoff_seed`` — chaos drills pin it for replayable timing).
    ``fault_injector`` (a :class:`~repro.serving.chaos.FaultInjector`)
    wraps every connection in a :class:`~repro.serving.chaos.ChaosSocket`
    and drives the ``net.connect``/``net.send``/``net.recv`` fault
    sites; ``None`` (the default) leaves the transport untouched.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) turns on request
    tracing: every request opens a ``client.<kind>`` root span with one
    ``client.attempt`` child per failover attempt, and — against
    servers that negotiated the ``trace`` feature — stamps the attempt's
    context into the frame so the server side joins the same trace.
    """

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 timeout: float = 10.0, cooldown: float = 1.0,
                 backoff_max: float = 30.0,
                 backoff_seed: Optional[int] = None,
                 binary: bool = True, retry_writes: bool = True,
                 fault_injector=None, tracer: Optional[Tracer] = None):
        self._ring = _AddressRing(addresses, backoff=Backoff(
            base=cooldown, cap=max(float(backoff_max), float(cooldown)),
            seed=backoff_seed))
        self.timeout = float(timeout)
        self.binary = bool(binary)
        self.tracer = tracer
        self._init_writes(retry_writes)
        self._fault_injector = fault_injector
        self._connections: Dict[int, _SyncConnection] = {}
        self.n_failovers = 0

    # -- transport ---------------------------------------------------------

    def _connect(self, index: int) -> _SyncConnection:
        cached = self._connections.get(index)
        if cached is not None:
            return cached
        if self._fault_injector is not None:
            event = self._fault_injector.check("net.connect")
            if event is not None:
                from repro.serving.chaos.shims import InjectedConnectError
                if event.action == "fail":
                    raise InjectedConnectError(
                        f"injected connect failure to "
                        f"{self._ring.addresses[index]}")
                if event.action == "delay":
                    time.sleep(event.arg)
        sock = socket.create_connection(self._ring.addresses[index],
                                        timeout=self.timeout)
        sock.settimeout(self.timeout)
        if self._fault_injector is not None:
            from repro.serving.chaos.shims import ChaosSocket
            sock = ChaosSocket(sock, self._fault_injector)
        connection = _SyncConnection(sock)
        self._connections[index] = connection
        try:
            reply = self._roundtrip(connection, self._hello())
        except BaseException:
            self._drop(index)
            raise
        if reply.is_error:
            self._drop(index)
            raise NetError(
                f"replica {self._ring.addresses[index]} refused the "
                f"handshake: {reply.payload.get('message')}")
        connection.binary = self._negotiate(reply)
        connection.trace = self._negotiate_trace(reply)
        return connection

    def _drop(self, index: int) -> None:
        connection = self._connections.pop(index, None)
        if connection is not None:
            try:
                connection.sock.close()
            except OSError:  # pragma: no cover
                pass

    @staticmethod
    def _next_frame(connection: _SyncConnection) -> Frame:
        """The next reply frame, reading only when the queue is empty.

        One socket read can complete several frames; they are queued on
        the connection and consumed strictly in order, never dropped.
        """
        while not connection.frames:
            data = connection.sock.recv(_READ_CHUNK)
            if not data:
                raise ConnectionError("server closed the connection")
            connection.frames.extend(connection.decoder.feed(data))
        return connection.frames.popleft()

    def _roundtrip(self, connection: _SyncConnection, frame: Frame) -> Frame:
        connection.sock.sendall(encode_frame(frame,
                                             binary=connection.binary))
        return self._next_frame(connection)

    def _request(self, frame: Frame, timeout: Optional[float] = None,
                 deadline_ms: Optional[float] = None) -> Dict[str, object]:
        root = self._trace_root(frame)
        try:
            result = self._request_attempts(frame, timeout, deadline_ms,
                                            root)
        except BaseException as error:
            self._finish_root(root, frame, error)
            raise
        self._finish_root(root, frame, None)
        return result

    def _request_attempts(self, frame: Frame, timeout: Optional[float],
                          deadline_ms: Optional[float],
                          root: Optional[Span]) -> Dict[str, object]:
        clock = self._DeadlineClock(deadline_ms)
        base_timeout = self.timeout if timeout is None else float(timeout)
        failures: List[str] = []
        for attempt, index in enumerate(self._ring.candidates()):
            # Each attempt re-stamps the *remaining* budget (raising
            # DeadlineError once it is spent) and never blocks on the
            # socket longer than that budget.
            remaining = clock.remaining(frame)
            # The attempt span is entered for the attempt's duration:
            # thread-locally active, so client-side chaos fault sites
            # (net.connect/send/recv) annotate it when they fire.
            with self._trace_attempt(root, index, attempt) as span:
                try:
                    connection = self._connect(index)
                except (OSError, ConnectionError, ProtocolError,
                        socket.timeout, NetError) as error:
                    span.annotate("error", repr(error))
                    self._on_connect_failure(index, error, failures)
                    continue
                self._stamp_trace(frame, connection.trace, span)
                connection.sock.settimeout(
                    base_timeout if remaining is None
                    else min(base_timeout, remaining))
                try:
                    reply = self._roundtrip(connection, frame)
                except (OSError, ConnectionError, ProtocolError,
                        socket.timeout) as error:
                    self._drop(index)
                    span.annotate("error", repr(error))
                    self._on_roundtrip_failure(frame, index, error,
                                               failures)
                    continue
                self._raise_if_deadline_reply(reply, index)
                if self._retryable_error(reply):
                    span.annotate("error", reply.payload.get("message"))
                    self._on_retryable_error(reply, index, failures)
                    continue
                return self._on_reply(reply, index, attempt)
        if clock.expired():
            # The last attempt's socket wait was clamped to the budget:
            # running out of replicas *because* the budget ran out is a
            # deadline failure, not a fleet failure.
            raise clock.spent(frame, failures)
        raise self._every_replica_failed(failures)

    # -- pipelining --------------------------------------------------------

    def _pump(self, connection: _SyncConnection, users: List[int], n: int,
              exclude_seen: bool, remaining: Set[int],
              results: List[Optional[Recommendation]],
              errors: Dict[int, str], max_in_flight: int) -> None:
        """Drive the pipelined send window over one connection.

        ``remaining``/``results``/``errors`` are mutated as replies land,
        so a mid-stream transport failure leaves exactly the unanswered
        slots in ``remaining`` for the next replica to retry.
        """
        connection.sock.settimeout(self.timeout)  # undo per-call overrides
        queue: Deque[int] = collections.deque(sorted(remaining))
        outstanding: Set[int] = set()
        while queue or outstanding:
            burst = bytearray()
            while queue and len(outstanding) < max_in_flight:
                slot = queue.popleft()
                burst += encode_frame(Frame("top_n", {
                    "user": users[slot], "n": n,
                    "exclude_seen": exclude_seen, "id": slot}),
                    binary=connection.binary)
                outstanding.add(slot)
            if burst:
                connection.sock.sendall(bytes(burst))
            reply = self._next_frame(connection)
            slot = reply.payload.get("id")
            if not isinstance(slot, int) or slot not in outstanding:
                raise ProtocolError(
                    f"pipelined reply carries unmatched id {slot!r}")
            outstanding.discard(slot)
            remaining.discard(slot)
            if reply.is_error:
                errors[slot] = str(reply.payload.get("message"))
            else:
                results[slot] = _recommendation(reply.payload)

    def top_n_pipelined(self, users: Iterable[int], n: int = 10,
                        exclude_seen: bool = True,
                        max_in_flight: int = 32) -> List[Recommendation]:
        """Many ``top_n`` requests down one connection, a window at a time.

        Keeps up to ``max_in_flight`` id-tagged requests outstanding
        instead of one blocking round-trip per request; returns one
        Recommendation per input user, in input order (duplicates are
        served, not deduplicated).  Transport failures retry the
        *unanswered* slots on the next replica (``top_n`` is idempotent);
        a server-side error frame for any slot raises :class:`NetError`
        after the window drains.
        """
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}")
        user_list = [int(user) for user in users]
        if not user_list:
            return []
        results: List[Optional[Recommendation]] = [None] * len(user_list)
        errors: Dict[int, str] = {}
        remaining: Set[int] = set(range(len(user_list)))
        failures: List[str] = []
        for attempt, index in enumerate(self._ring.candidates()):
            try:
                connection = self._connect(index)
            except (OSError, ConnectionError, ProtocolError,
                    socket.timeout, NetError) as error:
                self._on_connect_failure(index, error, failures)
                continue
            try:
                self._pump(connection, user_list, int(n),
                           bool(exclude_seen), remaining, results, errors,
                           int(max_in_flight))
            except (OSError, ConnectionError, ProtocolError,
                    socket.timeout) as error:
                self._drop(index)
                self._ring.mark_dead(index)
                failures.append(f"{self._ring.addresses[index]}: {error!r}")
                continue
            self._ring.mark_alive(index)
            self._ring.mark_used(index)
            if attempt > 0:
                self.n_failovers += 1
            if errors:
                raise self._pipeline_errors(errors, len(user_list))
            return results
        raise self._every_replica_failed(failures)

    # -- the serving surface ----------------------------------------------

    # Every request method takes per-call ``timeout=`` (socket-level
    # override of the constructor-wide timeout, seconds) and
    # ``deadline_ms=`` (an end-to-end budget stamped into the frame:
    # the server sheds the request instead of serving it late, and the
    # client raises :class:`DeadlineError` once the budget is spent).

    def top_n(self, user: int, n: int = 10, exclude_seen: bool = True,
              timeout: Optional[float] = None,
              deadline_ms: Optional[float] = None) -> Recommendation:
        return _recommendation(self._request(
            self._top_n_frame(user, n, exclude_seen),
            timeout=timeout, deadline_ms=deadline_ms))

    def top_n_batch(self, users: Iterable[int], n: int = 10,
                    exclude_seen: bool = True,
                    timeout: Optional[float] = None,
                    deadline_ms: Optional[float] = None
                    ) -> Dict[int, Recommendation]:
        return self._batch_result(self._request(
            self._batch_frame(users, n, exclude_seen),
            timeout=timeout, deadline_ms=deadline_ms))

    def predict(self, user: int, item: int,
                timeout: Optional[float] = None,
                deadline_ms: Optional[float] = None) -> float:
        payload = self._request(
            Frame("predict", {"user": int(user), "item": int(item)}),
            timeout=timeout, deadline_ms=deadline_ms)
        return float(payload["score"])

    def predict_batch(self, users, items,
                      timeout: Optional[float] = None,
                      deadline_ms: Optional[float] = None) -> np.ndarray:
        payload = self._request(self._predict_batch_frame(users, items),
                                timeout=timeout, deadline_ms=deadline_ms)
        return np.asarray(payload["scores"], dtype=np.float64)

    def fold_in(self, items, values, timeout: Optional[float] = None,
                deadline_ms: Optional[float] = None) -> int:
        return int(self._request(
            Frame("foldin", self._rating_payload(items, values)),
            timeout=timeout, deadline_ms=deadline_ms)["user"])

    def rate(self, user: int, items, values,
             timeout: Optional[float] = None,
             deadline_ms: Optional[float] = None) -> int:
        payload = self._rating_payload(items, values)
        payload["user"] = int(user)
        return int(self._request(Frame("rate", payload), timeout=timeout,
                                 deadline_ms=deadline_ms)["user"])

    def stats(self, timeout: Optional[float] = None,
              deadline_ms: Optional[float] = None) -> Dict[str, object]:
        return self._request(Frame("stats"), timeout=timeout,
                             deadline_ms=deadline_ms)

    def health(self, digest: bool = False,
               timeout: Optional[float] = None,
               deadline_ms: Optional[float] = None) -> Dict[str, object]:
        """The health frame; ``digest=True`` asks the replica for its
        :meth:`~repro.serving.service.PredictionService.state_digest`
        (pin the client to one address to compare replicas)."""
        return self._request(
            Frame("health", {"digest": True} if digest else {}),
            timeout=timeout, deadline_ms=deadline_ms)

    def metrics(self, timeout: Optional[float] = None,
                deadline_ms: Optional[float] = None) -> Dict[str, object]:
        """The replica's unified registry snapshot (dotted names)."""
        return self._request(Frame("metrics"), timeout=timeout,
                             deadline_ms=deadline_ms)["metrics"]

    def spans(self, limit: Optional[int] = None, drain: bool = False,
              timeout: Optional[float] = None,
              deadline_ms: Optional[float] = None) -> Dict[str, object]:
        """The replica's buffered trace spans (``drain=True`` clears).

        Returns ``{"enabled": bool, "spans": [...], "tracer": {...}}``;
        ``enabled`` is False against an untraced server.
        """
        payload: Dict[str, object] = {}
        if limit is not None:
            payload["limit"] = int(limit)
        if drain:
            payload["drain"] = True
        return self._request(Frame("trace", payload), timeout=timeout,
                             deadline_ms=deadline_ms)

    def close(self) -> None:
        for index in list(self._connections):
            self._drop(index)

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _AsyncConnection:
    """One open stream plus the id-keyed reply dispatch state."""

    __slots__ = ("reader", "writer", "decoder", "backlog", "pending",
                 "binary", "trace", "reader_task")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.backlog: List[Frame] = []
        self.pending: Dict[int, asyncio.Future] = {}
        self.binary = False
        self.trace = False
        self.reader_task: Optional[asyncio.Task] = None


class AsyncServingClient(_ClientCore):
    """Asyncio variant of :class:`ServingClient` (same failover policy).

    Every request carries a client-assigned id and a per-connection
    reader task matches replies back to their futures, so any number of
    coroutines can share one client (and one connection) concurrently —
    requests pipeline naturally instead of serializing round-trips.
    """

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 timeout: float = 10.0, cooldown: float = 1.0,
                 backoff_max: float = 30.0,
                 backoff_seed: Optional[int] = None,
                 binary: bool = True, retry_writes: bool = True,
                 tracer: Optional[Tracer] = None):
        self._ring = _AddressRing(addresses, backoff=Backoff(
            base=cooldown, cap=max(float(backoff_max), float(cooldown)),
            seed=backoff_seed))
        self.timeout = float(timeout)
        self.binary = bool(binary)
        self.tracer = tracer
        self._init_writes(retry_writes)
        self._connections: Dict[int, _AsyncConnection] = {}
        self._next_id = 0
        self.n_failovers = 0

    # -- transport ---------------------------------------------------------

    async def _connect(self, index: int) -> _AsyncConnection:
        cached = self._connections.get(index)
        if cached is not None:
            return cached
        host, port = self._ring.addresses[index]
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=self.timeout)
        connection = _AsyncConnection(reader, writer)
        self._connections[index] = connection
        try:
            reply = await self._handshake(connection)
        except BaseException:
            await self._drop(index)
            raise
        if reply.is_error:
            await self._drop(index)
            raise NetError(
                f"replica {self._ring.addresses[index]} refused the "
                f"handshake: {reply.payload.get('message')}")
        connection.binary = self._negotiate(reply)
        connection.trace = self._negotiate_trace(reply)
        connection.reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(connection))
        return connection

    async def _handshake(self, connection: _AsyncConnection) -> Frame:
        """Blocking hello exchange, before the reader task exists.

        Frames decoded beyond the hello reply (none today, but the
        protocol allows pipelining behind it) go to the backlog the
        reader task drains first — never dropped.
        """
        connection.writer.write(encode_frame(self._hello()))
        await asyncio.wait_for(connection.writer.drain(),
                               timeout=self.timeout)
        while True:
            data = await asyncio.wait_for(
                connection.reader.read(_READ_CHUNK), timeout=self.timeout)
            if not data:
                raise ConnectionError("server closed the connection")
            frames = connection.decoder.feed(data)
            if frames:
                connection.backlog.extend(frames[1:])
                return frames[0]

    async def _read_loop(self, connection: _AsyncConnection) -> None:
        """Match incoming frames to pending request futures by id."""
        try:
            for frame in connection.backlog:
                self._dispatch(connection, frame)
            connection.backlog.clear()
            while True:
                data = await connection.reader.read(_READ_CHUNK)
                if not data:
                    raise ConnectionError("server closed the connection")
                for frame in connection.decoder.feed(data):
                    self._dispatch(connection, frame)
        except asyncio.CancelledError:
            self._fail_pending(connection,
                               ConnectionError("connection closed"))
            raise
        except (OSError, ConnectionError, ProtocolError) as error:
            self._fail_pending(connection, error)

    @staticmethod
    def _dispatch(connection: _AsyncConnection, frame: Frame) -> None:
        request_id = frame.payload.get("id")
        future = (connection.pending.pop(request_id, None)
                  if isinstance(request_id, int) else None)
        if future is None:
            # A reply we cannot attribute means the stream is desynced;
            # poison every in-flight request rather than misdeliver.
            raise ProtocolError(
                f"reply carries unmatched id {request_id!r}")
        if not future.done():
            future.set_result(frame)

    @staticmethod
    def _fail_pending(connection: _AsyncConnection,
                      error: BaseException) -> None:
        pending, connection.pending = connection.pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _drop(self, index: int) -> None:
        connection = self._connections.pop(index, None)
        if connection is None:
            return
        if connection.reader_task is not None:
            connection.reader_task.cancel()
            try:
                await connection.reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        connection.writer.close()
        try:
            await connection.writer.wait_closed()
        except (OSError, ConnectionError):  # pragma: no cover
            pass

    async def _roundtrip(self, connection: _AsyncConnection, frame: Frame,
                         timeout: Optional[float] = None) -> Frame:
        wait = self.timeout if timeout is None else float(timeout)
        request_id = self._next_id
        self._next_id += 1
        frame.payload["id"] = request_id
        future = asyncio.get_running_loop().create_future()
        connection.pending[request_id] = future
        try:
            connection.writer.write(encode_frame(frame,
                                                 binary=connection.binary))
            await asyncio.wait_for(connection.writer.drain(), timeout=wait)
            reply = await asyncio.wait_for(future, timeout=wait)
        except BaseException:
            abandoned = connection.pending.pop(request_id, None)
            if (abandoned is not None and abandoned.done()
                    and not abandoned.cancelled()):
                abandoned.exception()  # mark retrieved
            raise
        reply.payload.pop("id", None)
        return reply

    async def _request(self, frame: Frame,
                       timeout: Optional[float] = None,
                       deadline_ms: Optional[float] = None
                       ) -> Dict[str, object]:
        root = self._trace_root(frame)
        try:
            result = await self._request_attempts(frame, timeout,
                                                  deadline_ms, root)
        except BaseException as error:
            self._finish_root(root, frame, error)
            raise
        self._finish_root(root, frame, None)
        return result

    async def _request_attempts(self, frame: Frame,
                                timeout: Optional[float],
                                deadline_ms: Optional[float],
                                root) -> Dict[str, object]:
        clock = self._DeadlineClock(deadline_ms)
        base_timeout = self.timeout if timeout is None else float(timeout)
        failures: List[str] = []
        for attempt, index in enumerate(self._ring.candidates()):
            remaining = clock.remaining(frame)
            effective = (base_timeout if remaining is None
                         else min(base_timeout, remaining))
            # Explicit span management (no thread-local activation):
            # attempt spans on the event loop would leak across
            # interleaved coroutines.
            span = self._trace_attempt(root, index, attempt)
            try:
                connection = await self._connect(index)
            except (OSError, ConnectionError, ProtocolError,
                    asyncio.TimeoutError, NetError) as error:
                span.annotate("error", repr(error))
                span.finish()
                self._on_connect_failure(index, error, failures)
                continue
            self._stamp_trace(frame, connection.trace, span)
            try:
                reply = await self._roundtrip(connection, frame,
                                              timeout=effective)
            except (OSError, ConnectionError, ProtocolError,
                    asyncio.TimeoutError) as error:
                span.annotate("error", repr(error))
                span.finish()
                await self._drop(index)
                self._on_roundtrip_failure(frame, index, error, failures)
                continue
            if reply.is_error:
                span.annotate("error", reply.payload.get("message"))
            span.finish()
            self._raise_if_deadline_reply(reply, index)
            if self._retryable_error(reply):
                self._on_retryable_error(reply, index, failures)
                continue
            return self._on_reply(reply, index, attempt)
        if clock.expired():
            raise clock.spent(frame, failures)
        raise self._every_replica_failed(failures)

    # -- the serving surface ----------------------------------------------

    # As on the sync client, every request method takes per-call
    # ``timeout=``/``deadline_ms=`` overrides.

    async def top_n(self, user: int, n: int = 10,
                    exclude_seen: bool = True,
                    timeout: Optional[float] = None,
                    deadline_ms: Optional[float] = None) -> Recommendation:
        return _recommendation(await self._request(
            self._top_n_frame(user, n, exclude_seen),
            timeout=timeout, deadline_ms=deadline_ms))

    async def top_n_pipelined(self, users: Iterable[int], n: int = 10,
                              exclude_seen: bool = True,
                              max_in_flight: int = 32
                              ) -> List[Recommendation]:
        """Concurrent ``top_n`` for many users over the shared connection.

        The id-dispatched transport pipelines them naturally; the
        semaphore only bounds how many are outstanding at once.  Returns
        one Recommendation per input user, in input order.
        """
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}")
        gate = asyncio.Semaphore(int(max_in_flight))

        async def one(user: int) -> Recommendation:
            async with gate:
                return await self.top_n(user, n=n,
                                        exclude_seen=exclude_seen)

        return list(await asyncio.gather(
            *(one(int(user)) for user in users)))

    async def top_n_batch(self, users: Iterable[int], n: int = 10,
                          exclude_seen: bool = True,
                          timeout: Optional[float] = None,
                          deadline_ms: Optional[float] = None
                          ) -> Dict[int, Recommendation]:
        return self._batch_result(await self._request(
            self._batch_frame(users, n, exclude_seen),
            timeout=timeout, deadline_ms=deadline_ms))

    async def predict(self, user: int, item: int,
                      timeout: Optional[float] = None,
                      deadline_ms: Optional[float] = None) -> float:
        payload = await self._request(
            Frame("predict", {"user": int(user), "item": int(item)}),
            timeout=timeout, deadline_ms=deadline_ms)
        return float(payload["score"])

    async def predict_batch(self, users, items,
                            timeout: Optional[float] = None,
                            deadline_ms: Optional[float] = None
                            ) -> np.ndarray:
        payload = await self._request(
            self._predict_batch_frame(users, items),
            timeout=timeout, deadline_ms=deadline_ms)
        return np.asarray(payload["scores"], dtype=np.float64)

    async def fold_in(self, items, values,
                      timeout: Optional[float] = None,
                      deadline_ms: Optional[float] = None) -> int:
        payload = await self._request(
            Frame("foldin", self._rating_payload(items, values)),
            timeout=timeout, deadline_ms=deadline_ms)
        return int(payload["user"])

    async def rate(self, user: int, items, values,
                   timeout: Optional[float] = None,
                   deadline_ms: Optional[float] = None) -> int:
        payload = self._rating_payload(items, values)
        payload["user"] = int(user)
        return int((await self._request(
            Frame("rate", payload), timeout=timeout,
            deadline_ms=deadline_ms))["user"])

    async def stats(self, timeout: Optional[float] = None,
                    deadline_ms: Optional[float] = None
                    ) -> Dict[str, object]:
        return await self._request(Frame("stats"), timeout=timeout,
                                   deadline_ms=deadline_ms)

    async def health(self, digest: bool = False,
                     timeout: Optional[float] = None,
                     deadline_ms: Optional[float] = None
                     ) -> Dict[str, object]:
        return await self._request(
            Frame("health", {"digest": True} if digest else {}),
            timeout=timeout, deadline_ms=deadline_ms)

    async def metrics(self, timeout: Optional[float] = None,
                      deadline_ms: Optional[float] = None
                      ) -> Dict[str, object]:
        """The replica's unified registry snapshot (dotted names)."""
        payload = await self._request(Frame("metrics"), timeout=timeout,
                                      deadline_ms=deadline_ms)
        return payload["metrics"]

    async def spans(self, limit: Optional[int] = None,
                    drain: bool = False,
                    timeout: Optional[float] = None,
                    deadline_ms: Optional[float] = None
                    ) -> Dict[str, object]:
        """The replica's buffered trace spans (``drain=True`` clears)."""
        payload: Dict[str, object] = {}
        if limit is not None:
            payload["limit"] = int(limit)
        if drain:
            payload["drain"] = True
        return await self._request(Frame("trace", payload),
                                   timeout=timeout,
                                   deadline_ms=deadline_ms)

    async def close(self) -> None:
        for index in list(self._connections):
            await self._drop(index)

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
