"""Capped exponential backoff with deterministic, seedable jitter.

One policy object shared by every cooldown in the stack — the client's
replica ring (:class:`~repro.serving.net.client.ServingClient`) and the
leader's follower shipping links
(:mod:`repro.serving.wal.shipper`) — replacing the fixed one-second
cooldowns they used to hard-code.  A replica that fails once is retried
quickly; one that keeps failing is probed exponentially less often, up
to ``cap``.

Jitter is drawn from a private seeded :class:`random.Random`, never the
global RNG: two instances built with the same seed produce the same
delay sequence, so a chaos drill that replays a fault schedule sees the
identical retry timeline (and never perturbs the reproducibility of the
sampling code, which also leans on seeded generators).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["Backoff"]


class Backoff:
    """``delay(n) = min(cap, base * 2**(n-1)) * jitter`` for failure ``n``.

    Parameters
    ----------
    base:
        Delay after the first consecutive failure, in seconds.  ``0``
        disables the cooldown entirely (every delay is ``0.0``).
    cap:
        Upper bound on the un-jittered delay.
    jitter:
        Half-width of the multiplicative jitter band: each delay is
        scaled by a draw from ``[1 - jitter, 1 + jitter]``.  ``0``
        removes jitter.  Jitter de-synchronizes clients that failed at
        the same instant (retry stampedes); keeping the band
        multiplicative preserves the exponential envelope.
    seed:
        Seed for the private jitter RNG (``None``: OS entropy).  Chaos
        drills pass their schedule seed so retry timing replays exactly.
    """

    def __init__(self, base: float = 1.0, cap: float = 30.0,
                 jitter: float = 0.25, seed: Optional[int] = None):
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if cap < base:
            raise ValueError(f"cap {cap} is below base {base}")
        if not 0 <= jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)

    def delay(self, failures: int) -> float:
        """Cooldown in seconds after ``failures`` consecutive failures."""
        if failures < 1 or self.base == 0.0:
            return 0.0
        # Exponent clamp: 2**failures overflows float for pathological
        # failure counts long after the cap has taken over anyway.
        raw = self.base * (2.0 ** (min(failures, 64) - 1))
        scale = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return min(self.cap, raw) * scale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Backoff(base={self.base}, cap={self.cap}, "
                f"jitter={self.jitter})")
