"""Replicated serving: N convergent gateways behind one address list.

The cluster of PR 4 recovers from a dead worker by respawning the whole
pool — correct, but the gateway blips.  :class:`ReplicaSet` removes the
blip at one level up: it runs ``n_replicas`` gateway replicas (each with
its own factor segments, worker pool and
:class:`~repro.serving.net.server.NetServer` on its own port), and the
client library fails reads over between them.  Losing a replica loses
capacity, never availability — the ``kill-a-replica-mid-storm`` test in
``tests/test_net_replica.py`` pins 100% read success while one of two
replicas dies under concurrent load.

Each replica runs on its own thread with a private asyncio loop, so a
wedged replica cannot stall its siblings.

**Mutations replicate.**  Replica 0 is the write leader: every
``rate``/``foldin`` — sent to any replica — commits through its
:class:`~repro.serving.wal.shipper.LeaderCoordinator` (append to the
write-ahead log, apply, fan out to the followers) before the ack
returns, so an acked write is readable on every live replica and, with
``wal_dir`` set, survives a crash (:meth:`restart` recovers the leader
by replaying the log).  Followers forward writes to the leader and
close any shipping gap by seqno-range catch-up.  ``replicate=False``
restores the historical share-nothing behaviour: mutations then apply
to one replica only, for the training pipeline to reconcile through
snapshot watchers.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serving.net.server import NetServer
from repro.utils.validation import check_positive

__all__ = ["ReplicaSet"]


class _Replica(threading.Thread):
    """One replica: gateway + server + event loop on a daemon thread."""

    def __init__(self, index: int, make_service, make_watcher,
                 host: str, port: int, server_options: Dict[str, object]):
        super().__init__(daemon=True, name=f"repro-net-replica-{index}")
        self.index = index
        self._make_service = make_service
        self._make_watcher = make_watcher
        self._host = host
        self._port = port
        self._server_options = dict(server_options)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[NetServer] = None
        self.service = None
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        try:
            self.service = self._make_service(self.index)
            watcher = (self._make_watcher(self.service)
                       if self._make_watcher is not None else None)
            self.server = NetServer(self.service, host=self._host,
                                    port=self._port, watcher=watcher,
                                    metrics_labels={"replica": self.index},
                                    **self._server_options)
            self.loop.run_until_complete(self.server.start())
        except BaseException as error:  # surfaced by ReplicaSet.start()
            self.error = error
            self._close_service()
            self.ready.set()
            return
        self.ready.set()
        try:
            self.loop.run_forever()
        finally:
            self._close_service()
            self.loop.close()

    def _close_service(self) -> None:
        # Teardown happens on the owning thread so shared-memory segments
        # are unlinked even when the replica was hard-killed.
        close = getattr(self.service, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # pragma: no cover - already going down
                pass

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self.server.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful: drain in-flight requests, then stop the loop."""
        if self.loop is None or not self.is_alive():
            return
        if self.server is not None:
            future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                      self.loop)
            try:
                future.result(timeout=timeout)
            except Exception:  # pragma: no cover - drain best-effort
                pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.join(timeout=timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Abrupt: drop connections without drain (failure injection)."""
        if self.loop is None or not self.is_alive():
            return
        if self.server is not None:
            future = asyncio.run_coroutine_threadsafe(self.server.abort(),
                                                      self.loop)
            try:
                future.result(timeout=timeout)
            except Exception:  # pragma: no cover - it is being killed
                pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.join(timeout=timeout)


class ReplicaSet:
    """Run N serving replicas; one address list, one write leader.

    Parameters
    ----------
    make_service:
        ``make_service(replica_index) -> gateway``.  Called once per
        replica on that replica's thread, so each replica owns a fully
        independent gateway (its own segments and worker pool).
    n_replicas:
        How many replicas to run.  Replica 0 is the write leader.
    host, ports:
        Bind host, and optionally one explicit port per replica
        (default: one free port each).
    make_watcher:
        Optional ``make_watcher(service) -> SnapshotWatcher`` so every
        replica hot-reloads snapshots independently.
    fuse_window_ms, fuse_max_batch, max_in_flight:
        Per-replica :class:`NetServer` options.  Fused dispatch is on by
        default; ``fuse_window_ms=None`` (or ``<= 0``) disables it.
    replicate:
        Mutation replication through the write-ahead log (default on);
        ``False`` restores the share-nothing fleet.
    wal_dir:
        Directory for the leader's log segments.  ``None`` (default)
        keeps the log in the leader's memory: replication, exactly-once
        and failover all still work, only crash durability is gone.
    wal_sync_every:
        The log's fsync cadence (``1`` = fsync before every ack, the
        strict default; larger batches syncs for throughput).
    max_queue_depth:
        Per-replica admission-control bound (see :class:`NetServer`);
        ``None`` disables overload shedding.
    ship_cooldown, ship_backoff_max, ship_backoff_seed:
        The leader's per-follower shipping backoff: base skip window
        after a failed shipment, its exponential cap, and the jitter
        seed (see :class:`~repro.serving.wal.shipper.LeaderCoordinator`).
    fault_injector:
        Optional :class:`~repro.serving.chaos.FaultInjector` threaded
        into the leader's :class:`WriteAheadLog` (``wal.append`` /
        ``wal.fsync`` fault sites).  Survives :meth:`restart` because
        re-wiring rebuilds the log from this handle.  ``None`` (the
        default) means zero injection code on any hot path.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` shared by every
        replica (servers, fusers and WAL coordinators all record into
        it), so a single traced write yields its whole cross-replica
        span tree from one :meth:`spans` call.  ``None`` (the default)
        keeps tracing cold fleet-wide.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` shared across the
        fleet; one is created when omitted.  Per-replica histograms and
        stats providers are disambiguated by a ``replica`` label, so
        :meth:`metrics_snapshot` covers every live replica at once.
    """

    def __init__(self, make_service: Callable[[int], object],
                 n_replicas: int = 2, host: str = "127.0.0.1",
                 ports: Optional[List[int]] = None,
                 make_watcher: Optional[Callable[[object], object]] = None,
                 fuse_window_ms: Optional[float] = 2.0,
                 fuse_max_batch: int = 64, max_in_flight: int = 64,
                 replicate: bool = True,
                 wal_dir: Optional[str] = None, wal_sync_every: int = 1,
                 max_queue_depth: Optional[int] = 256,
                 ship_cooldown: float = 1.0, ship_backoff_max: float = 30.0,
                 ship_backoff_seed: Optional[int] = None,
                 fault_injector=None, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None):
        check_positive("n_replicas", n_replicas)
        if ports is not None and len(ports) != n_replicas:
            raise ValueError(
                f"got {len(ports)} ports for {n_replicas} replicas")
        self.replicate = bool(replicate)
        self.wal_dir = wal_dir
        self.wal_sync_every = int(wal_sync_every)
        self.ship_cooldown = float(ship_cooldown)
        self.ship_backoff_max = float(ship_backoff_max)
        self.ship_backoff_seed = ship_backoff_seed
        self.fault_injector = fault_injector
        self.tracer = tracer
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._make_service = make_service
        self._make_watcher = make_watcher
        self._host = host
        self._options = {"fuse_window_ms": fuse_window_ms,
                         "fuse_max_batch": fuse_max_batch,
                         "max_in_flight": max_in_flight,
                         "max_queue_depth": max_queue_depth,
                         "wal_expected": self.replicate,
                         "tracer": tracer,
                         "registry": self.registry}
        self.replicas = [
            _Replica(index, make_service, make_watcher, host,
                     ports[index] if ports is not None else 0,
                     self._options)
            for index in range(n_replicas)]
        self._started = False

    def start(self, timeout: float = 60.0) -> "ReplicaSet":
        """Start every replica; raises if any fails to come up."""
        if self._started:
            return self
        for replica in self.replicas:
            replica.start()
        self._await_ready(self.replicas, timeout)
        if self.replicate:
            for index in range(len(self.replicas)):
                self._wire_wal(index)
        self._started = True
        return self

    def _await_ready(self, replicas: List[_Replica], timeout: float) -> None:
        for replica in replicas:
            if not replica.ready.wait(timeout=timeout):
                self.stop()
                raise TimeoutError(
                    f"replica {replica.index} did not start in {timeout}s")
        failed = [replica for replica in replicas
                  if replica.error is not None]
        if failed:
            self.stop()
            raise RuntimeError(
                f"replica {failed[0].index} failed to start"
            ) from failed[0].error

    # -- replication wiring ------------------------------------------------

    @property
    def leader(self) -> _Replica:
        """The write leader (replica 0, by construction)."""
        return self.replicas[0]

    def _follower_addresses(self) -> List[Tuple[str, int]]:
        return [replica.address for replica in self.replicas[1:]
                if replica.is_alive()]

    def _wire_wal(self, index: int) -> None:
        """Attach a (new) coordinator to one just-started replica.

        Construction runs on the replica's own gateway executor
        (:meth:`NetServer.call_serialized`): the leader's recovery
        replay and a follower's initial catch-up both *apply* records,
        and must serialize with any request already arriving over the
        socket.  Until the coordinator attaches, ``wal_expected`` makes
        the server refuse mutations instead of applying them
        unreplicated.
        """
        from repro.serving.wal.log import WriteAheadLog
        from repro.serving.wal.shipper import (FollowerCoordinator,
                                               LeaderCoordinator)
        replica = self.replicas[index]
        if index == 0:
            def build_leader():
                log = WriteAheadLog(self.wal_dir,
                                    sync_every=self.wal_sync_every,
                                    fault_injector=self.fault_injector,
                                    registry=self.registry,
                                    metrics_labels={"replica": index})
                return LeaderCoordinator(
                    replica.service, log,
                    ship_cooldown=self.ship_cooldown,
                    ship_backoff_max=self.ship_backoff_max,
                    ship_backoff_seed=self.ship_backoff_seed,
                    tracer=self.tracer)
            coordinator = replica.server.call_serialized(build_leader)
            replica.server.set_wal(coordinator)
            coordinator.set_followers(self._follower_addresses())
        else:
            coordinator = FollowerCoordinator(replica.service,
                                              self.leader.address,
                                              tracer=self.tracer)
            replica.server.set_wal(coordinator)
            if self.leader.is_alive():
                replica.server.call_serialized(coordinator.catch_up)
            leader_wal = (self.leader.server.wal
                          if self.leader.is_alive() and
                          self.leader.server is not None else None)
            if leader_wal is not None:
                leader_wal.set_followers(self._follower_addresses())

    # -- fleet operations --------------------------------------------------

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """Connect targets, one per replica (give this to the client)."""
        return [replica.address for replica in self.replicas
                if replica.is_alive()]

    def kill(self, index: int) -> None:
        """Hard-kill one replica (tests and failure drills).

        Killing a follower costs capacity only.  Killing the leader
        stops *writes* (they fail loudly, nothing is half-applied) while
        reads keep flowing; :meth:`restart` brings writes back, with
        every acked write intact when the log is durable.
        """
        self.replicas[index].kill()

    def pause(self, index: int, seconds: float) -> None:
        """Stall one replica's gateway executor for ``seconds`` (chaos).

        The replica stays connected but stops answering — the shape of a
        GC pause or an I/O hiccup, distinct from :meth:`kill`'s dropped
        connections.  Clients ride it out with their socket timeout and
        failover.
        """
        replica = self.replicas[index]
        if replica.is_alive() and replica.server is not None:
            replica.server.stall(float(seconds))

    def restart(self, index: int, timeout: float = 60.0) -> None:
        """Bring a dead (or live) replica back up on its old port.

        The replacement gets a fresh gateway from ``make_service``; a
        restarted leader then recovers by replaying its log (every
        acked write returns), a restarted follower catches up from the
        leader by seqno range — either way the fleet reconverges to
        bit-identical mutable state.
        """
        old = self.replicas[index]
        if old.is_alive():
            old.kill()
        port = old.server.port if old.server is not None else old._port
        replica = _Replica(index, self._make_service, self._make_watcher,
                           self._host, port, self._options)
        self.replicas[index] = replica
        replica.start()
        self._await_ready([replica], timeout)
        if self.replicate:
            self._wire_wal(index)

    def stop(self) -> None:
        """Gracefully drain and stop every replica (idempotent)."""
        for replica in self.replicas:
            replica.stop()
        self._started = False

    def stats(self) -> List[Optional[Dict[str, int]]]:
        """Per-replica server counters (``None`` for dead replicas)."""
        return [replica.server.stats()
                if replica.is_alive() and replica.server is not None
                else None
                for replica in self.replicas]

    def wal_stats(self) -> List[Optional[Dict[str, object]]]:
        """Per-replica coordinator counters (``None`` when absent/dead)."""
        return [replica.server.wal.stats()
                if replica.is_alive() and replica.server is not None
                and replica.server.wal is not None else None
                for replica in self.replicas]

    def metrics_snapshot(self) -> Dict[str, object]:
        """One dotted snapshot across the fleet (shared registry).

        Keys carry a ``replica=<index>`` label, so the same counter on
        different replicas stays distinguishable.
        """
        return self.registry.snapshot()

    def spans(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Recorded spans from the fleet's shared tracer (``[]`` untraced)."""
        if self.tracer is None:
            return []
        return self.tracer.spans(limit)

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
