"""Replicated serving: N independent gateways behind one address list.

The cluster of PR 4 recovers from a dead worker by respawning the whole
pool — correct, but the gateway blips.  :class:`ReplicaSet` removes the
blip at one level up: it runs ``n_replicas`` fully independent gateway
replicas (each with its own factor segments, worker pool and
:class:`~repro.serving.net.server.NetServer` on its own port), and the
client library fails reads over between them.  Losing a replica loses
capacity, never availability — the ``kill-a-replica-mid-storm`` test in
``tests/test_net_replica.py`` pins 100% read success while one of two
replicas dies under concurrent load.

Each replica runs on its own thread with a private asyncio loop, so a
wedged replica cannot stall its siblings.  Replicas are intentionally
share-nothing: mutations (``rate``/``foldin``) apply to one replica only
and are *not* replicated — durable writes belong to the training
pipeline, which reaches every replica through the snapshot watchers.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.serving.net.server import NetServer
from repro.utils.validation import check_positive

__all__ = ["ReplicaSet"]


class _Replica(threading.Thread):
    """One replica: gateway + server + event loop on a daemon thread."""

    def __init__(self, index: int, make_service, make_watcher,
                 host: str, port: int, server_options: Dict[str, object]):
        super().__init__(daemon=True, name=f"repro-net-replica-{index}")
        self.index = index
        self._make_service = make_service
        self._make_watcher = make_watcher
        self._host = host
        self._port = port
        self._server_options = dict(server_options)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[NetServer] = None
        self.service = None
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        try:
            self.service = self._make_service(self.index)
            watcher = (self._make_watcher(self.service)
                       if self._make_watcher is not None else None)
            self.server = NetServer(self.service, host=self._host,
                                    port=self._port, watcher=watcher,
                                    **self._server_options)
            self.loop.run_until_complete(self.server.start())
        except BaseException as error:  # surfaced by ReplicaSet.start()
            self.error = error
            self._close_service()
            self.ready.set()
            return
        self.ready.set()
        try:
            self.loop.run_forever()
        finally:
            self._close_service()
            self.loop.close()

    def _close_service(self) -> None:
        # Teardown happens on the owning thread so shared-memory segments
        # are unlinked even when the replica was hard-killed.
        close = getattr(self.service, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # pragma: no cover - already going down
                pass

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self.server.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful: drain in-flight requests, then stop the loop."""
        if self.loop is None or not self.is_alive():
            return
        if self.server is not None:
            future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                      self.loop)
            try:
                future.result(timeout=timeout)
            except Exception:  # pragma: no cover - drain best-effort
                pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.join(timeout=timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Abrupt: drop connections without drain (failure injection)."""
        if self.loop is None or not self.is_alive():
            return
        if self.server is not None:
            future = asyncio.run_coroutine_threadsafe(self.server.abort(),
                                                      self.loop)
            try:
                future.result(timeout=timeout)
            except Exception:  # pragma: no cover - it is being killed
                pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.join(timeout=timeout)


class ReplicaSet:
    """Run N independent serving replicas; one address list in front.

    Parameters
    ----------
    make_service:
        ``make_service(replica_index) -> gateway``.  Called once per
        replica on that replica's thread, so each replica owns a fully
        independent gateway (its own segments and worker pool).
    n_replicas:
        How many replicas to run.
    host, ports:
        Bind host, and optionally one explicit port per replica
        (default: one free port each).
    make_watcher:
        Optional ``make_watcher(service) -> SnapshotWatcher`` so every
        replica hot-reloads snapshots independently.
    fuse_window_ms, fuse_max_batch, max_in_flight:
        Per-replica :class:`NetServer` options.  Fused dispatch is on by
        default; ``fuse_window_ms=None`` (or ``<= 0``) disables it.
    """

    def __init__(self, make_service: Callable[[int], object],
                 n_replicas: int = 2, host: str = "127.0.0.1",
                 ports: Optional[List[int]] = None,
                 make_watcher: Optional[Callable[[object], object]] = None,
                 fuse_window_ms: Optional[float] = 2.0,
                 fuse_max_batch: int = 64, max_in_flight: int = 64):
        check_positive("n_replicas", n_replicas)
        if ports is not None and len(ports) != n_replicas:
            raise ValueError(
                f"got {len(ports)} ports for {n_replicas} replicas")
        options = {"fuse_window_ms": fuse_window_ms,
                   "fuse_max_batch": fuse_max_batch,
                   "max_in_flight": max_in_flight}
        self.replicas = [
            _Replica(index, make_service, make_watcher, host,
                     ports[index] if ports is not None else 0, options)
            for index in range(n_replicas)]
        self._started = False

    def start(self, timeout: float = 60.0) -> "ReplicaSet":
        """Start every replica; raises if any fails to come up."""
        if self._started:
            return self
        for replica in self.replicas:
            replica.start()
        for replica in self.replicas:
            if not replica.ready.wait(timeout=timeout):
                self.stop()
                raise TimeoutError(
                    f"replica {replica.index} did not start in {timeout}s")
        failed = [replica for replica in self.replicas
                  if replica.error is not None]
        if failed:
            self.stop()
            raise RuntimeError(
                f"replica {failed[0].index} failed to start"
            ) from failed[0].error
        self._started = True
        return self

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """Connect targets, one per replica (give this to the client)."""
        return [replica.address for replica in self.replicas
                if replica.is_alive()]

    def kill(self, index: int) -> None:
        """Hard-kill one replica (tests and failure drills)."""
        self.replicas[index].kill()

    def stop(self) -> None:
        """Gracefully drain and stop every replica (idempotent)."""
        for replica in self.replicas:
            replica.stop()
        self._started = False

    def stats(self) -> List[Optional[Dict[str, int]]]:
        """Per-replica server counters (``None`` for dead replicas)."""
        return [replica.server.stats()
                if replica.is_alive() and replica.server is not None
                else None
                for replica in self.replicas]

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
