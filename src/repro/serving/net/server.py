"""Asyncio TCP server wrapping a serving gateway.

:class:`NetServer` puts a real socket in front of
:class:`~repro.serving.service.PredictionService` or the sharded
:class:`~repro.serving.cluster.ShardedScorer`:

* **Framing** — every connection speaks the length-prefixed frame
  protocol (:mod:`repro.serving.net.protocol`), opening with a version
  handshake; framing violations drop only the offending connection.
  The handshake also negotiates the payload encoding: clients that
  advertise ``"binary"`` get raw-ndarray score blocks, everyone else
  gets the JSON fallback — bit-exact either way.
* **Pipelining** — requests carrying an ``id`` are served concurrently
  and replies may arrive out of order (the id is echoed); bare requests
  keep strict one-at-a-time ordering, which the REPL-style raw-socket
  callers rely on.
* **Bounded concurrency** — a semaphore caps in-flight requests across
  all connections; excess requests queue in arrival order instead of
  piling onto the gateway.
* **Blocking isolation** — gateway calls run on a dedicated
  single-thread executor (the gateways serialize internally anyway), so
  the event loop never blocks on worker IPC and connection accept/read
  latency stays flat under load.
* **Query fusion (default)** — concurrent ``top_n`` requests across
  connections coalesce into one batched gateway dispatch
  (:class:`~repro.serving.net.fusion.QueryFuser`), bit-identical per
  request to serving them alone.  Dispatch is eager, so a lone
  sequential caller pays no window latency; pass
  ``fuse_window_ms=None`` (CLI: ``--fuse-window 0``) to disable fusion
  and serve every request unbatched.
* **Graceful drain** — :meth:`stop` stops accepting, lets every in-flight
  request finish and its reply flush, then closes connections; pair it
  with a SIGTERM handler (the CLI does) and the existing gateway teardown
  closes worker pools and unlinks the shared-memory segments.
* **Hot reload** — an optional :class:`SnapshotWatcher` is started and
  stopped with the server; its double-buffered swap happens under the
  gateway lock, so a reload never drops a connection or a request.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, dotted_stats
from repro.obs.trace import TraceContext, Tracer
from repro.serving.net.fusion import DeadlineExpired, QueryFuser
from repro.serving.net.protocol import (
    ENCODINGS,
    ERROR_DEADLINE,
    ERROR_OVERLOADED,
    Frame,
    FrameDecoder,
    MUTATION_KINDS,
    PROTOCOL_VERSION,
    ProtocolError,
    TRACE_FEATURE,
    error_frame,
    recommendation_payload,
    check_hello,
    encode_frame,
    execute,
    negotiated_encoding,
)
from repro.serving.service import check_user_range
from repro.utils.validation import ValidationError, check_positive

__all__ = ["NetServer"]

_READ_CHUNK = 1 << 16

#: Request kinds that mutate state, for per-class admission control:
#: shedding reads under a read storm must not also starve writes (and
#: vice versa), so each class has its own queue-depth budget.
_WRITE_KINDS = frozenset(MUTATION_KINDS | {"wal_append"})


def _request_class(kind: str) -> str:
    return "write" if kind in _WRITE_KINDS else "read"


class NetServer:
    """One TCP serving frontend over one gateway (see module docstring).

    Parameters
    ----------
    service:
        The gateway to serve (``PredictionService`` or ``ShardedScorer``).
    host, port:
        Bind address; port ``0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    fuse_window_ms:
        Fused dispatch is the default: concurrent ``top_n`` requests
        ride the :class:`QueryFuser` into one batched dispatch, with
        this fallback flush timer (dispatch itself is eager — see the
        fuser docs).  ``None`` or a non-positive value disables fusion
        entirely and serves every request unbatched.
    fuse_max_batch:
        Fusion flushes early at this many pending requests.
    max_in_flight:
        Cap on concurrently admitted requests across all connections.
    max_queue_depth:
        Admission control: with every in-flight slot busy, at most this
        many requests *per class* (reads vs writes, independently) may
        queue for a slot; the excess is shed immediately with a
        retryable ``overloaded`` error frame instead of building an
        unbounded backlog.  ``None`` disables shedding (the historical
        queue-forever behaviour).
    watcher:
        Optional :class:`SnapshotWatcher` whose lifecycle should follow
        the server's.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When set, the
        server advertises the ``trace`` hello feature and opens
        admission spans (queue wait vs execute split) for every request
        frame carrying trace context.  ``None`` (the default) keeps the
        traced-request path completely cold — one ``is None`` check per
        request.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` hosting this
        server's latency histograms and stats providers; a private one
        is created when omitted.  A :class:`ReplicaSet` shares one
        registry across its replicas, disambiguated by
        ``metrics_labels`` (e.g. ``{"replica": 0}``).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 fuse_window_ms: Optional[float] = 2.0,
                 fuse_max_batch: int = 64, max_in_flight: int = 64,
                 max_queue_depth: Optional[int] = 256,
                 watcher=None, wal_expected: bool = False,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 metrics_labels: Optional[Dict[str, object]] = None):
        check_positive("max_in_flight", max_in_flight)
        if max_queue_depth is not None:
            check_positive("max_queue_depth", max_queue_depth)
        self.service = service
        self.host = host
        self.port = int(port)
        self.watcher = watcher
        self.wal_expected = bool(wal_expected)
        self.max_in_flight = int(max_in_flight)
        self.max_queue_depth = (int(max_queue_depth)
                                if max_queue_depth is not None else None)
        self.tracer = tracer
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._metrics_labels = dict(metrics_labels or {})
        self._queue_wait_ms = self.registry.histogram(
            "serving.server.queue_wait_ms", **self._metrics_labels)
        self._execute_ms = self.registry.histogram(
            "serving.server.execute_ms", **self._metrics_labels)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-exec")
        self.fuser: Optional[QueryFuser] = None
        if fuse_window_ms is not None and fuse_window_ms > 0:
            self.fuser = QueryFuser(service.top_n_batch,
                                    window_ms=fuse_window_ms,
                                    max_batch=fuse_max_batch,
                                    executor=self._executor,
                                    tracer=tracer)
        self._server: Optional[asyncio.base_events.Server] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._closing: Optional[asyncio.Event] = None
        self._connections: Set[asyncio.Task] = set()
        self.wal = None
        self._wal_io: Optional[ThreadPoolExecutor] = None
        self.n_connections = 0
        self.n_requests = 0
        self.n_error_replies = 0
        self.n_protocol_errors = 0
        self.n_stalls = 0
        # Admission / deadline bookkeeping: requests currently waiting
        # for an in-flight slot, per class, plus shed counters.
        self._queued: Dict[str, int] = {"read": 0, "write": 0}
        self.n_overload_shed: Dict[str, int] = {"read": 0, "write": 0}
        self.n_deadline_shed = 0
        # Re-home the stats() dicts onto the registry's dotted
        # namespace: snapshot() pulls them live, the flat dicts keep
        # flowing through stats/health frames as aliases.
        self.registry.register_provider("serving.server", self.metrics,
                                        **self._metrics_labels)
        self.registry.register_provider(
            getattr(service, "METRICS_PREFIX", "serving.service"),
            service.stats, **self._metrics_labels)
        if self.fuser is not None:
            self.registry.register_provider("serving.fusion",
                                            self.fuser.metrics,
                                            **self._metrics_labels)

    # -- replication wiring ------------------------------------------------

    def set_wal(self, coordinator) -> None:
        """Attach a WAL coordinator; mutations now route through it.

        On the leader, ``wal_catchup`` gets its own single-thread
        executor: it reads only immutable log records, and serving it
        off the gateway executor lets a follower close a gap while the
        leader is mid-commit (the commit holds the gateway executor
        while it ships).  Everything that *applies* records — commits
        here, shipped appends on followers — stays on the gateway
        executor, so mutations still serialize with reads.
        """
        self.wal = coordinator
        if coordinator is not None and coordinator.role == "leader" \
                and self._wal_io is None:
            self._wal_io = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-wal-io")
        attach = getattr(self.service, "attach_wal_stats", None)
        if attach is not None and coordinator is not None:
            attach(coordinator.stats)
        if coordinator is not None:
            self.registry.register_provider("wal", coordinator.stats,
                                            **self._metrics_labels)

    def call_serialized(self, fn, *args, **kwargs):
        """Run ``fn`` on the gateway executor and return its result.

        The out-of-band way onto the one thread that serializes every
        gateway call — replica wiring uses it so a follower's initial
        catch-up (which applies records) cannot race a shipment arriving
        over the socket.  Safe from any thread.
        """
        return self._executor.submit(fn, *args, **kwargs).result()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    async def start(self) -> "NetServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            return self
        self._slots = asyncio.Semaphore(self.max_in_flight)
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.watcher is not None:
            self.watcher.start()
        return self

    async def stop(self) -> None:
        """Graceful drain: finish in-flight requests, then close.

        Idle connections (blocked waiting for the next frame) are woken
        and closed; a connection mid-request finishes that request and
        flushes the reply first.  Safe to call more than once.
        """
        if self._server is None:
            return
        self._server.close()
        # The drain signal must be raised *before* awaiting wait_closed():
        # on Python >= 3.12.1 wait_closed() blocks until every connection
        # handler returns, and the handlers only return once _closing is
        # set — the old order deadlocks under any idle connection.
        self._closing.set()
        if self.watcher is not None:
            self.watcher.stop()
        if self.fuser is not None:
            await self.fuser.drain()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self._server.wait_closed()
        self._server = None
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        if self._wal_io is not None:
            self._wal_io.shutdown(wait=True)
            self._wal_io = None
        self._executor.shutdown(wait=True)

    async def abort(self) -> None:
        """Abrupt shutdown: cancel connections without draining.

        The failure-injection path (:meth:`ReplicaSet.kill`): clients see
        resets/EOF mid-request, exactly like a crashed process, which is
        what the failover tests need to provoke.
        """
        if self._server is not None:
            self._server.close()
        if self.watcher is not None:
            self.watcher.stop()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._server = None
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        if self._wal_io is not None:
            self._wal_io.shutdown(wait=False, cancel_futures=True)
            self._wal_io = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection handling ----------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _read_chunk(self, reader: asyncio.StreamReader,
                          closing_task: asyncio.Task) -> bytes:
        """One transport read, interruptible by the drain signal."""
        read = asyncio.get_running_loop().create_task(
            reader.read(_READ_CHUNK))
        done, _ = await asyncio.wait({read, closing_task},
                                     return_when=asyncio.FIRST_COMPLETED)
        if read in done:
            return read.result()
        read.cancel()
        try:
            await read
        except (asyncio.CancelledError, ConnectionError):
            pass
        return b""  # draining: treated exactly like client EOF

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.n_connections += 1
        decoder = FrameDecoder()
        closing_task = asyncio.get_running_loop().create_task(
            self._closing.wait())
        pending: Set[asyncio.Task] = set()
        try:
            binary = await self._handshake(reader, writer, decoder,
                                           closing_task, pending)
            if binary is None:
                return
            while not self._closing.is_set():
                try:
                    data = await self._read_chunk(reader, closing_task)
                except (ConnectionError, asyncio.IncompleteReadError):
                    return
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except ProtocolError as error:
                    self.n_protocol_errors += 1
                    await self._send(writer,
                                     Frame("error", {"message": str(error)}))
                    return
                for frame in frames:
                    await self._admit(writer, frame, binary, pending)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # Flush concurrently-served (id-tagged) requests before the
            # socket closes, so a drain never truncates a pipeline.
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            closing_task.cancel()
            try:
                await closing_task
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _admit(self, writer: asyncio.StreamWriter, frame: Frame,
                     binary: bool, pending: Set[asyncio.Task]) -> None:
        """Serve one request: concurrently when id-tagged, else in order.

        An ``id`` marks the client as pipelining-aware (it matches
        replies by id, so out-of-order completion is fine); bare frames
        keep the strict request/reply ordering raw-socket callers expect.
        """
        if frame.payload.get("id") is not None:
            task = asyncio.get_running_loop().create_task(
                self._respond_safely(writer, frame, binary))
            pending.add(task)
            task.add_done_callback(pending.discard)
        else:
            await self._respond(writer, frame, binary)

    async def _respond_safely(self, writer: asyncio.StreamWriter,
                              frame: Frame, binary: bool) -> None:
        try:
            await self._respond(writer, frame, binary)
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def _handshake(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         decoder: FrameDecoder,
                         closing_task: asyncio.Task,
                         pending: Set[asyncio.Task]) -> Optional[bool]:
        """Read the hello frame; refuse version/shape mismatches.

        Returns ``None`` on refusal, else whether the connection
        negotiated binary payload frames (the client advertised the
        capability in its hello).
        """
        while True:
            try:
                data = await self._read_chunk(reader, closing_task)
            except (ConnectionError, asyncio.IncompleteReadError):
                return None
            if not data:
                return None
            try:
                frames = decoder.feed(data)
            except ProtocolError as error:
                self.n_protocol_errors += 1
                await self._send(writer,
                                 Frame("error", {"message": str(error)}))
                return None
            if frames:
                break
        refusal = check_hello(frames[0])
        if refusal is not None:
            self.n_protocol_errors += 1
            await self._send(writer, refusal)
            return None
        binary = negotiated_encoding(frames[0].payload) == "binary"
        # The hello reply itself stays JSON (readable by every peer);
        # it advertises our encodings (and optional features, e.g.
        # trace-context support) so the client can commit too.
        hello_reply: Dict[str, object] = {
            "version": PROTOCOL_VERSION, "server": "repro-serving",
            "encodings": list(ENCODINGS)}
        if self.tracer is not None:
            hello_reply["features"] = [TRACE_FEATURE]
        await self._send(writer, Frame("ok", hello_reply))
        # Any frames pipelined behind the hello are served in order.
        for frame in frames[1:]:
            await self._admit(writer, frame, binary, pending)
        return binary

    async def _send(self, writer: asyncio.StreamWriter, frame: Frame,
                    binary: bool = False) -> None:
        if frame.is_error:
            self.n_error_replies += 1
        # One write call per frame: writes are atomic appends to the
        # transport buffer, so concurrent pipelined replies interleave
        # at frame granularity, never inside one.
        writer.write(encode_frame(frame, binary=binary))
        await writer.drain()

    # -- request execution -------------------------------------------------

    def _health_extra(self) -> Dict[str, object]:
        counters: Dict[str, object] = {"server": self.stats()}
        if self.fuser is not None:
            counters["fusion"] = self.fuser.stats()
        if self.wal is not None:
            counters["wal"] = self.wal.stats()
        # The normalized (dotted) view of the same numbers; protocol
        # health assembly merges it with the service's own dotted stats.
        metrics = dotted_stats("serving.server", self.metrics())
        if self.fuser is not None:
            metrics.update(dotted_stats("serving.fusion",
                                        self.fuser.metrics()))
        if self.wal is not None:
            metrics.update(dotted_stats("wal", self.wal.stats()))
        counters["metrics"] = metrics
        return counters

    def _trace_reply(self, frame: Frame) -> Frame:
        """Serve a ``trace`` frame: buffered spans (or a drain)."""
        if self.tracer is None:
            return Frame("ok", {"enabled": False, "spans": []})
        if frame.payload.get("drain"):
            spans = self.tracer.drain()
        else:
            limit = frame.payload.get("limit")
            try:
                limit = int(limit) if limit is not None else None
            except (TypeError, ValueError):
                limit = None
            spans = self.tracer.spans(limit)
        return Frame("ok", {"enabled": True, "spans": spans,
                            "tracer": self.tracer.stats()})

    async def _respond_wal(self, frame: Frame) -> Frame:
        """Route WAL traffic and (when a coordinator is attached)
        mutations — see :meth:`set_wal` for the executor assignments."""
        from repro.serving.wal.log import WalError, WalWriteError
        from repro.serving.wal.shipper import WalUnavailableError
        loop = asyncio.get_running_loop()
        try:
            if self.wal is None:
                # wal_expected and not wired yet (the attach window at
                # replica start/restart): refusing is what keeps the
                # mutation out of the unreplicated plain-execute path.
                raise WalUnavailableError(
                    f"{frame.kind!r} needs a wal coordinator and this "
                    "server has none attached yet")
            if frame.kind == "wal_append":
                payload = await loop.run_in_executor(
                    self._executor, self.wal.handle_wal_append,
                    frame.payload)
            elif frame.kind == "wal_catchup":
                executor = self._wal_io if self._wal_io is not None \
                    else self._executor
                payload = await loop.run_in_executor(
                    executor, self.wal.handle_wal_catchup, frame.payload)
            else:
                # A commit on the leader (gateway executor: mutations
                # serialize with reads); a forward on a follower (its
                # own thread: the gateway executor must stay free to
                # apply the shipment the forward triggers).
                executor = self._executor if self.wal.role == "leader" \
                    else self.wal.forward_pool
                payload = await loop.run_in_executor(
                    executor, self.wal.handle_mutation, frame.kind,
                    dict(frame.payload))
            return Frame("ok", dict(payload))
        except (ValidationError, WalError, KeyError, TypeError,
                ValueError) as error:
            body: Dict[str, object] = {"message": str(error)}
            if isinstance(error, (WalUnavailableError, WalWriteError)):
                # The write was NOT applied (leader unreachable, or the
                # append rolled itself back): tell the client it may
                # safely retry elsewhere even though mutations are
                # normally not retried on errors.
                body["retryable"] = True
            return Frame("error", body)

    @staticmethod
    def _frame_deadline(frame: Frame, arrival: float) -> Optional[float]:
        """The absolute monotonic deadline a request frame carries.

        ``deadline_ms`` is a *relative* budget (milliseconds remaining
        when the client sent this attempt) — relative so clock skew
        between client and server never mis-expires a request; the cost
        is that one-way network latency eats silently into the budget.
        """
        budget = frame.payload.get("deadline_ms")
        if budget is None:
            return None
        try:
            return arrival + float(budget) / 1000.0
        except (TypeError, ValueError):
            return None  # unparseable budgets never constrain a request

    def _shed_overload(self, frame: Frame) -> Optional[Frame]:
        """Admission control: refuse the request if its class's queue is
        full.  Runs before anything waits on the slot semaphore, so a
        shed request costs the server one frame decode and one error
        frame — nothing else."""
        if self.max_queue_depth is None or not self._slots.locked():
            return None
        cls = _request_class(frame.kind)
        if self._queued[cls] < self.max_queue_depth:
            return None
        self.n_overload_shed[cls] += 1
        return error_frame(
            f"overloaded: {self._queued[cls]} {cls}s already queued "
            f"behind {self.max_in_flight} in-flight requests",
            code=ERROR_OVERLOADED, retryable=True)

    async def _respond(self, writer: asyncio.StreamWriter,
                       frame: Frame, binary: bool = False) -> None:
        self.n_requests += 1
        arrival = time.monotonic()
        # The admission span parents every server-side span for this
        # request; it exists only when tracing is on AND the frame
        # carries context, so the untraced path pays one `is None`.
        admit = None
        if self.tracer is not None:
            ctx = TraceContext.from_wire(frame.payload.get("trace"))
            if ctx is not None:
                admit = self.tracer.start("server.admit", parent=ctx,
                                          attrs={"kind": frame.kind})
        deadline = self._frame_deadline(frame, arrival)
        response = self._shed_overload(frame)
        if response is None:
            cls = _request_class(frame.kind)
            self._queued[cls] += 1
            try:
                await self._slots.acquire()
            finally:
                self._queued[cls] -= 1
            # Queue wait (slot acquisition) vs execute, split: the two
            # intervals that matter when diagnosing tail latency.
            queue_wait_ms = (time.monotonic() - arrival) * 1000.0
            self._queue_wait_ms.observe(queue_wait_ms)
            if admit is not None:
                self.tracer.emit("server.queue", parent=admit,
                                 dur_ms=queue_wait_ms,
                                 attrs={"class": cls})
            try:
                # The gate sits *after* the slot wait on purpose: time
                # spent queueing counts against the budget, so a request
                # that expired in the queue is shed before any gateway
                # work, not scored late.
                if deadline is not None and time.monotonic() >= deadline:
                    self.n_deadline_shed += 1
                    response = error_frame(
                        f"deadline_exceeded: {frame.kind!r} spent its "
                        f"{frame.payload.get('deadline_ms')} ms budget "
                        "queueing", code=ERROR_DEADLINE, retryable=True)
                elif self.fuser is not None and frame.kind == "top_n":
                    response = await self._fused_top_n(frame, deadline,
                                                       admit)
                elif frame.kind in ("wal_append", "wal_catchup") or (
                        frame.kind in MUTATION_KINDS
                        and (self.wal is not None or self.wal_expected)):
                    if admit is not None:
                        # Re-parent the downstream WAL spans (commit,
                        # append, ship, follower apply) on admission.
                        frame.payload["trace"] = admit.context().to_wire()
                    response = await self._respond_wal(frame)
                elif frame.kind == "metrics":
                    payload = await asyncio.get_running_loop() \
                        .run_in_executor(self._executor,
                                         self.registry.snapshot)
                    response = Frame("ok", {"metrics": payload})
                elif frame.kind == "trace":
                    response = self._trace_reply(frame)
                else:
                    # arrays=True: replies keep the gateway's own ndarray
                    # response buffers, encoded once at _send — no
                    # per-element re-encode on the event loop.
                    response = await asyncio.get_running_loop() \
                        .run_in_executor(self._executor, self._execute,
                                         frame, admit)
            finally:
                self._slots.release()
        elif admit is not None:
            admit.set_attr("shed", "overload")
        if admit is not None:
            if response.is_error:
                admit.set_attr("error",
                               response.payload.get("message"))
            admit.finish()
        request_id = frame.payload.get("id")
        if request_id is not None:
            response.payload.setdefault("id", request_id)
        await self._send(writer, response, binary)

    def _execute(self, frame: Frame, admit=None) -> Frame:
        """Plain gateway execution (runs on the gateway executor),
        wrapped in the execute histogram and — for traced requests — a
        ``server.execute`` span whose thread-local activation lets the
        layers below (scorer, WAL, chaos shims) attach children."""
        start = time.perf_counter()
        try:
            if admit is None:
                return execute(self.service, frame, self._health_extra,
                               True)
            with self.tracer.start("server.execute", parent=admit,
                                   attrs={"kind": frame.kind}):
                return execute(self.service, frame, self._health_extra,
                               True)
        finally:
            self._execute_ms.observe(
                (time.perf_counter() - start) * 1000.0)

    async def _fused_top_n(self, frame: Frame,
                           deadline: Optional[float] = None,
                           admit=None) -> Frame:
        """Route one ``top_n`` through the fuser.

        Arguments are validated *before* entering the window, so one bad
        request cannot poison the whole fused batch.  The deadline rides
        into the window: a waiter still queued when it passes is shed by
        the fuser instead of dispatched (see :class:`DeadlineExpired`).
        """
        payload = frame.payload
        try:
            user = int(payload["user"])
            n = int(payload.get("n", 10))
            check_positive("n", n)
            check_user_range(np.array([user], dtype=np.int64),
                             self.service.n_users,
                             self.service.n_train_users)
        except (ValidationError, KeyError, TypeError, ValueError) as error:
            return Frame("error", {"message": str(error)})
        try:
            recommendation = await self.fuser.top_n(
                user, n=n,
                exclude_seen=bool(payload.get("exclude_seen", True)),
                deadline=deadline,
                trace=admit.context() if admit is not None else None)
        except DeadlineExpired as error:
            self.n_deadline_shed += 1
            return error_frame(str(error), code=ERROR_DEADLINE,
                               retryable=True)
        except Exception as error:  # noqa: BLE001 - worker/gateway failure
            return Frame("error", {"message": str(error)})
        return Frame("ok", recommendation_payload(recommendation,
                                                  arrays=True))

    # -- chaos hooks --------------------------------------------------------

    def stall(self, seconds: float) -> None:
        """Wedge the gateway executor for ``seconds`` (fault injection).

        Schedules a sleep on the single gateway thread and returns
        immediately: every queued request behind it waits it out,
        exactly like a gateway stuck in a long worker IPC — the drill
        that provokes deadline expiry and queue shedding without killing
        anything.  Safe to call from any thread.
        """
        self.n_stalls += 1
        self._executor.submit(time.sleep, float(seconds))

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Server-level counters (connections, requests, errors, load)."""
        return {
            "n_connections": self.n_connections,
            "n_open_connections": len(self._connections),
            "n_requests": self.n_requests,
            "n_error_replies": self.n_error_replies,
            "n_protocol_errors": self.n_protocol_errors,
            "n_deadline_shed": self.n_deadline_shed,
            "n_overload_shed": dict(self.n_overload_shed),
            "n_stalls": self.n_stalls,
            "queue_depth": dict(self._queued),
            "max_queue_depth": self.max_queue_depth,
            "max_in_flight": self.max_in_flight,
        }

    def metrics(self) -> Dict[str, object]:
        """:meth:`stats` under the normalized registry schema: dropped
        ``n_`` prefixes, shed counters grouped under ``shed_*`` — the
        names that appear dotted as ``serving.server.<key>`` in registry
        snapshots and health-frame ``metrics`` blocks.  (The latency
        histograms ``serving.server.queue_wait_ms`` / ``execute_ms``
        live natively in the registry, not here.)"""
        return {
            "connections": self.n_connections,
            "open_connections": len(self._connections),
            "requests": self.n_requests,
            "error_replies": self.n_error_replies,
            "protocol_errors": self.n_protocol_errors,
            "shed_deadline": self.n_deadline_shed,
            "shed_overload": dict(self.n_overload_shed),
            "stalls": self.n_stalls,
            "queue_depth": dict(self._queued),
            "max_queue_depth": self.max_queue_depth,
            "max_in_flight": self.max_in_flight,
        }
