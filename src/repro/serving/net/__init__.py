"""Network serving frontend: framed RPC over TCP, fusion, replication.

The serving stack's front door.  PR 2–4 built the posterior snapshot
store, the single-process :class:`~repro.serving.service.PredictionService`
and the sharded shared-memory :class:`~repro.serving.cluster.ShardedScorer`;
this package turns them into a networked service:

* :mod:`repro.serving.net.protocol` — versioned, length-prefixed frames
  (stdlib ``struct``), one parser and one executor shared by the TCP
  transport *and* the stdin REPL.  Payloads are JSON by default; peers
  that both advertise the ``"binary"`` encoding in the hello handshake
  ship ndarray vectors as raw little-endian blocks instead — bit-exact
  either way;
* :mod:`repro.serving.net.server` — :class:`NetServer`: asyncio TCP
  server with a protocol-version handshake, bounded in-flight requests,
  concurrent service of id-tagged (pipelined) requests, graceful
  SIGTERM drain and snapshot hot-reload that never drops a connection;
* :mod:`repro.serving.net.fusion` — :class:`QueryFuser` (the default
  dispatch path): merges concurrent cross-user ``top_n`` requests into
  one batched gateway dispatch per window with zero added latency when
  idle, bit-identical per request to serving them alone;
* :mod:`repro.serving.net.replica` — :class:`ReplicaSet`: N gateway
  replicas behind one address list, converging through the durable
  mutation log (:mod:`repro.serving.wal`): replica 0 is the write
  leader, acked writes are readable on every live replica and, with a
  log directory, survive crashes;
* :mod:`repro.serving.net.client` — :class:`ServingClient` /
  :class:`AsyncServingClient`: health-checked round-robin with
  automatic failover; reads retry across replicas, and mutations do
  too (exactly-once — every mutation carries a ``write_id`` the WAL
  leader dedups).

``python -m repro.serving serve --tcp HOST:PORT [--replicas N]
[--fuse-window MS]`` wires it all together from the command line.
"""

from repro.serving.net.backoff import Backoff
from repro.serving.net.client import (
    AsyncServingClient,
    DeadlineError,
    NetError,
    ServingClient,
)
from repro.serving.net.fusion import QueryFuser
from repro.serving.net.protocol import (
    ENCODINGS,
    ERROR_DEADLINE,
    ERROR_OVERLOADED,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    error_frame,
    execute,
    format_reply,
    hello_frame,
    negotiated_encoding,
    parse_line,
)
from repro.serving.net.replica import ReplicaSet
from repro.serving.net.server import NetServer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD",
    "ENCODINGS",
    "hello_frame",
    "negotiated_encoding",
    "Frame",
    "FrameDecoder",
    "ProtocolError",
    "encode_frame",
    "parse_line",
    "format_reply",
    "execute",
    "NetServer",
    "QueryFuser",
    "ReplicaSet",
    "ServingClient",
    "AsyncServingClient",
    "NetError",
    "DeadlineError",
    "Backoff",
    "ERROR_DEADLINE",
    "ERROR_OVERLOADED",
    "error_frame",
]
