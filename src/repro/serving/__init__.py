"""Posterior snapshot store + online serving subsystem.

The training side of this repository ends with a fitted posterior in
memory; this package is what happens *after* training in a production
recommender:

* :mod:`repro.serving.checkpoint` — versioned, integrity-checked ``.npz``
  posterior snapshots with exact-resume support (the samplers' checkpoint
  hook lives here too);
* :mod:`repro.serving.service` — :class:`PredictionService`: predictions,
  micro-batched lookups and top-N ranked retrieval over one or more
  snapshots, with an LRU score cache;
* :mod:`repro.serving.foldin` — conditional-Gaussian fold-in for
  cold-start users, executed through the batched block-Cholesky engine,
  plus incremental rank-k posterior updates (:class:`FoldInState`);
* :mod:`repro.serving.cluster` — the sharded, hot-reloading serving
  cluster: :class:`ShardedScorer` (parallel top-N over shared-memory
  item shards, bit-identical to the single process) and
  :class:`SnapshotWatcher` (serve while training writes);
* :mod:`repro.serving.net` — the network frontend: framed RPC protocol
  over asyncio TCP (:class:`NetServer`), cross-user query fusion
  (:class:`QueryFuser`), replica failover (:class:`ReplicaSet`) and the
  sync/async client library;
* ``python -m repro.serving`` — train → snapshot → serve → query from the
  command line.
"""

from repro.serving.checkpoint import (
    SNAPSHOT_FORMAT,
    CheckpointConfig,
    Snapshot,
    coerce_snapshot,
    load_snapshot,
    restore_generator,
    save_snapshot,
    snapshot_from_result,
)
from repro.serving.foldin import (
    FoldInState,
    fold_in_posterior,
    fold_in_user,
    fold_in_users,
)
from repro.serving.service import MicroBatcher, PendingPrediction, PredictionService
from repro.serving.cluster import ClusterError, ShardedScorer, SnapshotWatcher
from repro.serving.net import (
    AsyncServingClient,
    NetError,
    NetServer,
    QueryFuser,
    ReplicaSet,
    ServingClient,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "CheckpointConfig",
    "Snapshot",
    "save_snapshot",
    "load_snapshot",
    "coerce_snapshot",
    "restore_generator",
    "snapshot_from_result",
    "fold_in_users",
    "fold_in_user",
    "fold_in_posterior",
    "FoldInState",
    "PredictionService",
    "MicroBatcher",
    "PendingPrediction",
    "ShardedScorer",
    "SnapshotWatcher",
    "ClusterError",
    "NetServer",
    "QueryFuser",
    "ReplicaSet",
    "ServingClient",
    "AsyncServingClient",
    "NetError",
]
