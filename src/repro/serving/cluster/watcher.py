"""Hot snapshot reload: watch a training run's checkpoints and swap them in.

A training process with ``CheckpointConfig`` keeps atomically overwriting
one snapshot file (or dropping versioned files into a directory).
:class:`SnapshotWatcher` polls that location, and whenever the newest
candidate's ``(path, mtime, size)`` signature changes it loads the file —
which re-verifies the SHA-256 integrity checksum — and hands the snapshot
to :meth:`ShardedScorer.load_version` for the double-buffered swap.
A snapshot that fails validation (truncated copy, checksum mismatch,
shape drift) is *rejected and recorded*; the cluster keeps serving the
previous version, so only fully-validated snapshots ever go live.

``check_once()`` is the synchronous unit of work — tests and the CLI
smoke drive it directly for determinism; ``start()`` runs it on a daemon
thread every ``interval`` seconds for real serve-while-training use.
"""

from __future__ import annotations

import stat as stat_module
import threading
from pathlib import Path
from typing import Optional

from repro.serving.checkpoint import PathLike, load_snapshot
from repro.serving.cluster.scorer import ShardedScorer
from repro.utils.validation import check_positive

__all__ = ["SnapshotWatcher"]


class SnapshotWatcher:
    """Polls a snapshot path (file or directory) and hot-swaps new versions.

    Parameters
    ----------
    scorer:
        The gateway to swap new snapshots into.
    path:
        A snapshot file a trainer keeps overwriting, or a directory of
        versioned ``*.npz`` snapshots (the newest by mtime-then-name is
        the candidate).
    interval:
        Poll period in seconds for the background thread.
    prime:
        When True (default) the currently-present candidate's signature is
        recorded at construction *without* loading it — the scorer was
        normally just built from that very snapshot, and re-loading it
        would burn a swap for nothing.
    max_attempts:
        How many polls may retry one failing candidate before it is given
        up on.  Retrying distinguishes *transient* failures (segment
        memory momentarily exhausted mid-swap) — where the final
        checkpoint of a finished training run must eventually be served —
        from a genuinely corrupt file, which would otherwise be
        re-checksummed on every poll forever.
    """

    def __init__(self, scorer: ShardedScorer, path: PathLike,
                 interval: float = 0.5, prime: bool = True,
                 max_attempts: int = 3):
        check_positive("interval", interval)
        check_positive("max_attempts", max_attempts)
        self.scorer = scorer
        self.path = Path(path)
        self.interval = float(interval)
        self.max_attempts = int(max_attempts)
        self.n_reloads = 0
        self.n_rejected = 0
        self.last_error: Optional[str] = None
        self._last_signature = None
        self._attempts = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        if prime:
            self._last_signature = self._signature(self._candidate())

    # -- candidate discovery ----------------------------------------------

    def _candidate(self) -> Optional[Path]:
        if self.path.is_dir():
            snapshots = []
            for entry in self.path.glob("*.npz"):
                if entry.name.endswith(".tmp.npz"):
                    continue  # a writer's in-flight atomic-save temp file
                try:
                    status = entry.stat()
                except OSError:
                    continue  # renamed/removed between glob and stat
                if stat_module.S_ISREG(status.st_mode):
                    snapshots.append((status.st_mtime_ns, entry.name, entry))
            if not snapshots:
                return None
            return max(snapshots)[2]
        return self.path if self.path.is_file() else None

    @staticmethod
    def _signature(candidate: Optional[Path]):
        if candidate is None:
            return None
        try:
            stat = candidate.stat()
        except OSError:  # pragma: no cover - raced with a writer
            return None
        return (str(candidate), stat.st_mtime_ns, stat.st_size)

    # -- the poll body -----------------------------------------------------

    def check_once(self) -> bool:
        """Load-and-swap if the candidate changed; True on a new version.

        A failing candidate is retried for up to ``max_attempts`` polls
        (then ignored until its signature changes): the file itself never
        transitions from invalid to valid — the trainer writes atomically
        — but a swap can also fail for *gateway-side* reasons (transient
        segment-memory exhaustion), and a training run's final checkpoint
        must not be skipped forever because of one.
        """
        candidate = self._candidate()
        signature = self._signature(candidate)
        if signature is None:
            return False
        if signature == self._last_signature:
            if self._attempts == 0 or self._attempts >= self.max_attempts:
                return False  # already served, or given up on
        else:
            self._last_signature = signature
            self._attempts = 0
        self._attempts += 1
        try:
            snapshot = load_snapshot(candidate)  # verifies the checksum
            self.scorer.load_version(snapshot)
        except Exception as error:
            # Anything a bad file can throw (checksum ValidationError,
            # BadZipFile, truncation OSError, shape mismatch) must reject
            # the candidate, never kill the watcher or the serving path.
            self.n_rejected += 1
            self.last_error = f"{candidate}: {error}"
            return False
        self._attempts = 0
        self.n_reloads += 1
        self.last_error = None
        return True

    # -- background thread -------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SnapshotWatcher":
        """Run :meth:`check_once` every ``interval`` seconds on a thread."""
        if self.running:
            return self
        self._stop.clear()

        def poll() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.check_once()
                except Exception as error:  # pragma: no cover - last resort
                    self.n_rejected += 1
                    self.last_error = str(error)

        self._thread = threading.Thread(target=poll, daemon=True,
                                        name="repro-snapshot-watcher")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SnapshotWatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
