"""Sharded, hot-reloading serving cluster.

Scales the single-process :class:`~repro.serving.service.PredictionService`
out across worker processes:

* :class:`~repro.serving.cluster.scorer.ShardedScorer` — partitions the
  item factor block into contiguous shards in shared memory; each worker
  ranks its slice and the gateway performs an exact k-way merge, so the
  served top-N is bit-identical to the single-process service;
* :class:`~repro.serving.cluster.watcher.SnapshotWatcher` — polls the
  checkpoint a training run keeps overwriting and hot-swaps validated
  snapshots into fresh shard segments without dropping requests;
* incremental fold-in — a known cold-start user rating new items costs a
  rank-k posterior update of just their row, propagated to the shards
  through the gateway's delta queue.
"""

from repro.serving.cluster.scorer import ClusterError, ShardedScorer
from repro.serving.cluster.watcher import SnapshotWatcher

__all__ = ["ShardedScorer", "SnapshotWatcher", "ClusterError"]
