"""Sharded top-N scoring over a persistent shared-memory worker pool.

:class:`ShardedScorer` is the query gateway of the serving cluster.  The
item factor block is cut into contiguous shards
(:func:`repro.sparse.shard.shard_bounds`), each placed in a
:mod:`multiprocessing.shared_memory` segment and owned by one scoring
worker; the user factor block lives in a single shared segment every
worker can read.  A ``top_n`` query fans out to the workers, each ranks
its slice with the deterministic
:func:`~repro.core.recommend.select_top_n` rule, and the gateway
recombines the local lists with the exact k-way merge
:func:`~repro.core.recommend.merge_top_n` — the served ranking is
bit-identical to the single-process
:meth:`~repro.serving.service.PredictionService.top_n`
(``tests/test_serving_cluster.py`` pins this across shard counts,
including exact score ties).

The pool/teardown machinery is reused from
:mod:`repro.core.shared_engine` (same segment wrapper, same worker
attach-and-untrack discipline, same dead-worker detection), so segment
hygiene follows one proven pattern.

Versioned snapshots are double-buffered: a hot swap
(:meth:`ShardedScorer.load_version`) builds the new version's segments
off-line, registers them with the workers, flips the active version under
the gateway lock, and only then retires the old segments — an in-flight
request always completes against the version it started on, and only
fully-validated snapshots are ever activated.

User-side mutations flow through a small **delta queue**: fold-in appends
and buffer growth are staged as messages flushed to the workers before
the next query dispatch, while in-place row rewrites (incremental
fold-in, :meth:`ShardedScorer.add_ratings`) propagate through the shared
segment itself.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.recommend import Recommendation, merge_top_n, select_top_n
from repro.obs.trace import maybe_span
# The pool lifecycle and segment plumbing are the training engine's.
from repro.core.shared_engine import (
    WorkerPool,
    WorkerPoolError,
    _SharedBlock,
    _segment_view,
)
from repro.serving.checkpoint import Snapshot, coerce_snapshot
from repro.serving.foldin import FoldInRegistry, fold_in_users
from repro.serving.service import (
    PredictionService,
    SnapshotLike,
    check_item_range,
    check_user_range,
)
from repro.sparse.csr import RatingMatrix
from repro.sparse.shard import shard_bounds, slice_item_range
from repro.utils.validation import ValidationError, check_positive

__all__ = ["ShardedScorer", "ClusterError"]


class ClusterError(WorkerPoolError):
    """A cluster worker failed or died while serving a request."""


# ---------------------------------------------------------------------------
# the scoring worker
# ---------------------------------------------------------------------------

def _cluster_worker_main(worker_id: int, untrack: bool, task_queue,
                         result_queue) -> None:
    """Serve scoring requests until a stop message arrives.

    Worker state is exactly what the gateway registered: per-version item
    shard views + the user block view, plus the (version-independent)
    training-rating slices used for ``exclude_seen`` filtering.
    """
    import traceback

    segments: Dict[str, shared_memory.SharedMemory] = {}
    versions: Dict[int, dict] = {}
    train_shards: Dict[int, RatingMatrix] = {}
    n_train_users = 0

    def view(descriptor):
        return _segment_view(segments, descriptor, untrack)

    def close_version_segments(version: dict) -> None:
        for name in version["segment_names"]:
            segment = segments.pop(name, None)
            if segment is not None:
                segment.close()

    def user_shard_part(version: dict, shard: Tuple, user: int, n: int,
                        exclude_seen: bool):
        """One (user, shard) slice of a top-N request.

        The single-user and batched paths both call exactly this function,
        so a fused batch's per-user arithmetic is the single request's
        arithmetic — bit-identical by construction, not by tolerance.
        """
        shard_id, lo, hi, items_view = shard
        scores = items_view @ version["users"][user]
        scores += version["offset"]
        candidates = np.arange(hi - lo, dtype=np.int64)
        train_shard = train_shards.get(shard_id)
        if exclude_seen and train_shard is not None \
                and user < n_train_users:
            seen, _ = train_shard.user_ratings(user)
            candidates = np.setdiff1d(candidates, seen, assume_unique=False)
        if candidates.shape[0] == 0:
            return None
        local = scores[candidates]
        order = select_top_n(local, n)
        return (candidates[order] + lo, local[order].copy())

    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "train-shards":
                _, shards, n_train_users = message
                train_shards = shards
                continue
            if kind == "load-version":
                _, version_id, payload = message
                names = [payload["users"][0]]
                shards = []
                for shard_id, lo, hi, descriptor in payload["shards"]:
                    shards.append((shard_id, lo, hi, view(descriptor)))
                    names.append(descriptor[0])
                versions[version_id] = {
                    "offset": payload["offset"],
                    "shards": shards,
                    "users": view(payload["users"]),
                    "n_users": payload["n_users"],
                    "segment_names": names,
                }
                continue
            if kind == "retire-version":
                version = versions.pop(message[1], None)
                if version is not None:
                    close_version_segments(version)
                continue
            if kind == "user-count":
                versions[message[1]]["n_users"] = message[2]
                continue
            if kind == "user-block":
                _, version_id, descriptor, n_users = message
                version = versions[version_id]
                # The old user segment's name stays in segment_names, so
                # retire/exit still closes the local mapping.
                version["users"] = view(descriptor)
                version["n_users"] = n_users
                version["segment_names"].append(descriptor[0])
                continue
        except BaseException:  # registration failures are fatal per-worker
            result_queue.put(("error", worker_id, -1, traceback.format_exc()))
            continue

        # Request messages: ("topn"|"gather", sequence, version_id, ...).
        sequence = message[1]
        try:
            version = versions[message[2]]
            if kind == "topn":
                _, _, _, user, n, exclude_seen = message
                if not 0 <= user < version["n_users"]:
                    raise ValidationError(
                        f"user {user} outside [0, {version['n_users']})")
                parts: List[Tuple[np.ndarray, np.ndarray]] = []
                for shard in version["shards"]:
                    part = user_shard_part(version, shard, user, n,
                                           exclude_seen)
                    if part is not None:
                        parts.append(part)
                result_queue.put(("done", worker_id, sequence,
                                  merge_top_n(parts, n)))
            elif kind == "topn-batch":
                # The cross-user fused form: one worker visit ranks every
                # user of the window.  The sweep is shard-outer so the
                # shard's item block stays cache-hot across the user loop
                # (a blocked GEMM whose microkernel is the single-user
                # GEMV), and each (user, shard) cell is computed by the
                # same `user_shard_part` as a lone request.
                _, _, _, users, n, exclude_seen = message
                for user in users:
                    if not 0 <= user < version["n_users"]:
                        raise ValidationError(
                            f"user {user} outside [0, {version['n_users']})")
                user_parts: List[List[Tuple[np.ndarray, np.ndarray]]] = \
                    [[] for _ in users]
                for shard in version["shards"]:
                    for position, user in enumerate(users):
                        part = user_shard_part(version, shard, user, n,
                                               exclude_seen)
                        if part is not None:
                            user_parts[position].append(part)
                # Response buffers: the whole window's candidate lists go
                # back as three packed arrays (per-user lengths + one
                # item-id buffer + one score buffer) instead of a Python
                # list of per-user tuples — one pickle of contiguous
                # memory per window, and the gateway slices views out of
                # it without copying a single element.
                merged = [merge_top_n(parts, n) for parts in user_parts]
                counts = np.array([items.shape[0] for items, _ in merged],
                                  dtype=np.int64)
                items_buf = np.concatenate(
                    [items for items, _ in merged]) if merged \
                    else np.empty(0, dtype=np.int64)
                scores_buf = np.concatenate(
                    [scores for _, scores in merged]) if merged \
                    else np.empty(0)
                result_queue.put(("done", worker_id, sequence,
                                  (counts, items_buf, scores_buf)))
            elif kind == "gather":
                _, _, _, requests = message
                shards = {shard_id: items_view for shard_id, _, _, items_view
                          in version["shards"]}
                rows = [shards[shard_id][local_ids].copy()
                        for shard_id, local_ids in requests]
                result_queue.put(("done", worker_id, sequence, rows))
            else:
                result_queue.put(("error", worker_id, sequence,
                                  f"unknown message kind {kind!r}"))
        except BaseException:
            result_queue.put(("error", worker_id, sequence,
                              traceback.format_exc()))

    for segment in segments.values():
        segment.close()


# ---------------------------------------------------------------------------
# gateway-side version bookkeeping
# ---------------------------------------------------------------------------

class _VersionState:
    """One snapshot version's shared-memory residency (gateway side)."""

    def __init__(self, version_id: int, item_factors: np.ndarray,
                 bounds: Sequence[Tuple[int, int]], user_factors: np.ndarray,
                 n_train_users: int, offset: float):
        self.version_id = version_id
        self.bounds = list(bounds)
        self.offset = float(offset)
        self.n_train_users = int(n_train_users)
        self.n_users = int(user_factors.shape[0])
        num_latent = int(item_factors.shape[1])
        self.item_blocks: List[_SharedBlock] = []
        for lo, hi in self.bounds:
            block = _SharedBlock((hi - lo, num_latent), np.float64)
            block.view()[...] = item_factors[lo:hi]
            self.item_blocks.append(block)
        capacity = max(self.n_users + 64, 2 * self.n_users)
        self.user_block = _SharedBlock((capacity, num_latent), np.float64)
        self.user_block.view()[:self.n_users] = user_factors

    @property
    def user_capacity(self) -> int:
        return self.user_block.shape[0]

    def user_view(self) -> np.ndarray:
        return self.user_block.view()[:self.n_users]

    def payload(self, shard_ids: Sequence[int]) -> dict:
        """One worker's ``load-version`` registration message body.

        Listing only the worker's own shards is what makes the fan-out
        partition exact: no item is scored twice, none is skipped.
        """
        return {
            "offset": self.offset,
            "shards": tuple(
                (shard_id, *self.bounds[shard_id],
                 self.item_blocks[shard_id].descriptor())
                for shard_id in shard_ids),
            "users": self.user_block.descriptor(),
            "n_users": self.n_users,
        }

    def grow_users(self, need: int) -> _SharedBlock:
        """Replace the user segment with a doubled one; returns the old."""
        num_latent = self.user_block.shape[1]
        capacity = max(need, 2 * self.user_capacity)
        replacement = _SharedBlock((capacity, num_latent), np.float64)
        replacement.view()[:self.n_users] = self.user_block.view()[:self.n_users]
        old, self.user_block = self.user_block, replacement
        return old

    def destroy(self) -> None:
        for block in self.item_blocks:
            block.destroy()
        self.item_blocks = []
        self.user_block.destroy()


# ---------------------------------------------------------------------------
# the gateway
# ---------------------------------------------------------------------------

class ShardedScorer:
    """Sharded, hot-swappable serving gateway (see module docstring).

    Parameters
    ----------
    snapshots, mode, train, clip:
        As for :class:`~repro.serving.service.PredictionService`; snapshot
        combination, offset handling and seen-item exclusion semantics are
        identical (the constructor literally derives the serving factors
        through a transient ``PredictionService``).
    n_shards:
        Number of contiguous item shards.
    n_workers:
        Worker process count; default one per shard.  Fewer workers than
        shards is allowed — shards are assigned round-robin and each
        worker merges across its shards locally before the gateway's
        global merge.
    """

    #: Dotted prefix this gateway's :meth:`stats` surfaces under in a
    #: :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
    METRICS_PREFIX = "cluster.scorer"

    def __init__(self, snapshots: Union[SnapshotLike, Sequence[SnapshotLike]],
                 n_shards: int = 2, mode: str = "mean",
                 train: Optional[RatingMatrix] = None,
                 clip: Optional[Tuple[float, float]] = None,
                 n_workers: Optional[int] = None):
        check_positive("n_shards", n_shards)
        service = PredictionService(snapshots, mode=mode, train=train,
                                    clip=clip)
        self.mode = mode
        self.clip = clip
        self.n_shards = int(n_shards)
        self.n_items = service.n_items
        self.num_latent = service.num_latent
        self._n_train_users = service.n_train_users
        self._user_prior = service._user_prior
        self._alpha = service._alpha
        self._train = train
        self._bounds = shard_bounds(self.n_items, self.n_shards)
        if n_workers is None:
            n_workers = self.n_shards
        check_positive("n_workers", n_workers)
        self.n_workers = min(int(n_workers), self.n_shards)
        self._shard_owner = [shard % self.n_workers
                             for shard in range(self.n_shards)]
        self._train_shards: Dict[int, RatingMatrix] = {}
        if train is not None:
            self._train_shards = {
                shard: slice_item_range(train, lo, hi)
                for shard, (lo, hi) in enumerate(self._bounds)}

        self._lock = threading.RLock()
        self._pool = WorkerPool(self.n_workers, _cluster_worker_main,
                                name_prefix="repro-cluster-worker")
        self._sequence = itertools.count()
        self._version_ids = itertools.count()
        self._pending_deltas: List[Tuple] = []
        self._foldin = FoldInRegistry(self._user_prior, self._alpha)
        self._wal_stats = None
        self._closed = False
        self.n_swaps = 0
        self.n_queries = 0
        self.n_batch_dispatches = 0
        self.n_deltas_flushed = 0

        self._active = _VersionState(
            next(self._version_ids), service._item_factors, self._bounds,
            service._user_factors, self._n_train_users, service.offset)
        del service  # the cluster's factors now live in the segments

    # -- shape properties --------------------------------------------------

    @property
    def offset(self) -> float:
        return self._active.offset

    @property
    def n_users(self) -> int:
        """Total users served, including folded-in cold-start users."""
        return self._active.n_users

    @property
    def n_train_users(self) -> int:
        return self._n_train_users

    @property
    def version(self) -> int:
        """Active snapshot version id (increments on every hot swap)."""
        return self._active.version_id

    @property
    def pool_running(self) -> bool:
        return self._pool.running

    @property
    def _workers(self) -> List[Tuple]:
        """The pool's (Process, task_queue) pairs (tests kill through it)."""
        return self._pool.workers

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill one shard worker process (chaos drills).

        The in-flight query against it fails with :class:`ClusterError`;
        the next query respawns the whole pool and re-registers every
        shard, so the scorer self-heals without caller intervention.
        """
        workers = self._pool.workers
        if not 0 <= worker_id < len(workers):
            raise ValidationError(
                f"worker_id must be in [0, {len(workers)}), got {worker_id}")
        process = workers[worker_id][0]
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)

    # -- pool lifecycle ----------------------------------------------------

    def _owned_shards(self, worker_id: int) -> List[int]:
        return [shard for shard, owner in enumerate(self._shard_owner)
                if owner == worker_id]

    def _ensure_pool(self) -> None:
        if self._closed:
            raise ValidationError("ShardedScorer is closed")
        try:
            spawned = self._pool.ensure()
        except WorkerPoolError as error:
            raise ClusterError(
                f"{error} — the next query respawns it") from error
        if not spawned:
            return
        self._pending_deltas = []  # the fresh registration supersedes them
        for worker_id in range(self.n_workers):
            mine = self._owned_shards(worker_id)
            self._pool.send(worker_id,
                            ("train-shards",
                             {shard: self._train_shards[shard]
                              for shard in mine
                              if shard in self._train_shards},
                             self._n_train_users))
            self._pool.send(worker_id,
                            ("load-version", self._active.version_id,
                             self._active.payload(mine)))

    def close(self, _terminal: bool = True) -> None:
        """Stop the workers and unlink every shared-memory segment.

        Terminal for serving: the factors live only in the segments, so a
        closed scorer cannot answer further queries.  (The internal
        non-terminal variant tears down a crashed pool while keeping the
        gateway state, letting the next query respawn workers.)
        """
        with self._lock:
            self._pool.stop()
            if _terminal and not self._closed:
                self._active.destroy()
                self._closed = True

    def __enter__(self) -> "ShardedScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- request plumbing --------------------------------------------------

    def _flush_deltas(self) -> None:
        """Push queued user-side structural deltas to every worker.

        Called with a freshly-spawned pool the queue is already empty —
        ``_ensure_pool``'s full registration supersedes pending deltas.
        """
        if not self._pending_deltas or not self._pool.started:
            return
        deltas, self._pending_deltas = self._pending_deltas, []
        for delta in deltas:
            self._pool.broadcast(delta)
        self.n_deltas_flushed += len(deltas)

    def _dispatch(self, make_message) -> Dict[int, object]:
        """Send one request to every worker and collect the responses.

        ``make_message(worker_id, sequence)`` returns the message for one
        worker, or ``None`` to skip it.  Dead workers and worker-side
        registration failures surface as :class:`ClusterError` (and tear
        the pool down), exactly like the training engine's phase wait —
        the machinery is literally :meth:`WorkerPool.collect`.
        """
        self._ensure_pool()
        self._flush_deltas()
        sequence = next(self._sequence)
        pending: Dict[int, None] = {}
        try:
            for worker_id in range(self.n_workers):
                message = make_message(worker_id, sequence)
                if message is None:
                    continue
                self._pool.send(worker_id, message)
                pending[worker_id] = None
            return self._pool.collect(pending, sequence, label="query")
        except WorkerPoolError as error:
            self.close(_terminal=False)
            if isinstance(error, ClusterError):
                raise
            raise ClusterError(str(error)) from error

    def _check_users(self, users: np.ndarray) -> None:
        check_user_range(users, self.n_users, self._n_train_users)

    def _check_items(self, items: np.ndarray) -> None:
        check_item_range(items, self.n_items)

    # -- ranked retrieval --------------------------------------------------

    def top_n(self, user: int, n: int = 10,
              exclude_seen: bool = True) -> Recommendation:
        """Top-``n`` items for ``user``, scored shard-parallel.

        Bit-identical to the single-process
        :meth:`PredictionService.top_n` on the same snapshot: every shard
        ranks its slice with the shared deterministic rule and the
        gateway's k-way merge is exact.
        """
        check_positive("n", n)
        with self._lock:
            self._check_users(np.array([user], dtype=np.int64))
            user = int(user)
            version_id = self._active.version_id
            responses = self._dispatch(
                lambda worker_id, sequence:
                ("topn", sequence, version_id, user, int(n),
                 bool(exclude_seen)))
            self.n_queries += 1
            items, scores = merge_top_n(responses.values(), n)
        if self.clip is not None:
            scores = np.clip(scores, self.clip[0], self.clip[1])
        return Recommendation(user=user, items=items, scores=scores)

    def top_n_batch(self, users: Sequence[int], n: int = 10,
                    exclude_seen: bool = True) -> Dict[int, Recommendation]:
        """Ranked lists for several users in one fan-out.

        The whole batch costs a single dispatch to every worker (one
        round-trip per window instead of one per user), and each worker
        sweeps its shards once for all users.  Every user's ranking is
        bit-identical to their lone :meth:`top_n` — worker-side the batch
        runs the same per-(user, shard) function, and the gateway merge is
        the same exact k-way merge.  This is the entry point the network
        frontend's query fuser batches into.
        """
        check_positive("n", n)
        unique = list(dict.fromkeys(int(user) for user in users))
        if not unique:
            return {}
        # Inside a traced fused window (fusion.window active on this
        # thread) the worker fan-out gets its own child span; untraced,
        # maybe_span is a no-op.
        with maybe_span("cluster.scorer.batch", users=len(unique),
                        n=int(n), workers=self.n_workers,
                        shards=self.n_shards), self._lock:
            self._check_users(np.array(unique, dtype=np.int64))
            version_id = self._active.version_id
            responses = self._dispatch(
                lambda worker_id, sequence:
                ("topn-batch", sequence, version_id, tuple(unique), int(n),
                 bool(exclude_seen)))
            self.n_queries += len(unique)
            self.n_batch_dispatches += 1
            # Unpack each worker's packed response buffers into per-user
            # views (cumsum offsets into the shared item/score buffers —
            # no per-element copies) and run the same exact k-way merge.
            per_worker: List[List[Tuple[np.ndarray, np.ndarray]]] = []
            for counts, items_buf, scores_buf in responses.values():
                offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
                np.cumsum(counts, out=offsets[1:])
                per_worker.append(
                    [(items_buf[offsets[position]:offsets[position + 1]],
                      scores_buf[offsets[position]:offsets[position + 1]])
                     for position in range(len(unique))])
            merged = [merge_top_n([parts[position]
                                   for parts in per_worker], n)
                      for position in range(len(unique))]
        results: Dict[int, Recommendation] = {}
        for user, (items, scores) in zip(unique, merged):
            if self.clip is not None:
                scores = np.clip(scores, self.clip[0], self.clip[1])
            results[user] = Recommendation(user=user, items=items,
                                           scores=scores)
        return results

    # -- point predictions -------------------------------------------------

    def _gather_item_rows(self, items: np.ndarray) -> np.ndarray:
        """Fetch ``item_factors[items]`` from the owning shards."""
        lows = np.array([lo for lo, _ in self._bounds], dtype=np.int64)
        shard_of = np.searchsorted(lows, items, side="right") - 1
        per_worker: Dict[int, List[Tuple[int, np.ndarray, np.ndarray]]] = {}
        for shard in np.unique(shard_of):
            mask = shard_of == shard
            owner = self._shard_owner[int(shard)]
            per_worker.setdefault(owner, []).append(
                (int(shard), items[mask] - lows[shard],
                 np.nonzero(mask)[0]))
        version_id = self._active.version_id
        responses = self._dispatch(
            lambda worker_id, sequence:
            None if worker_id not in per_worker else
            ("gather", sequence, version_id,
             tuple((shard, local_ids)
                   for shard, local_ids, _ in per_worker[worker_id])))
        rows = np.empty((items.shape[0], self.num_latent))
        for worker_id, chunks in per_worker.items():
            for (_, _, positions), gathered in zip(chunks,
                                                   responses[worker_id]):
                rows[positions] = gathered
        return rows

    def predict_batch(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predicted ratings for parallel (user, item) index arrays.

        Item rows are gathered from the owning shards; the arithmetic
        matches :meth:`PredictionService.predict_batch` exactly.
        """
        users = np.asarray(users, dtype=np.int64).ravel()
        items = np.asarray(items, dtype=np.int64).ravel()
        if users.shape != items.shape:
            raise ValidationError("users and items must align")
        with self._lock:
            self._check_users(users)
            self._check_items(items)
            if users.size == 0:
                return np.empty(0)
            item_rows = self._gather_item_rows(items)
            user_rows = self._active.user_view()[users]
            scores = np.einsum("ij,ij->i", user_rows, item_rows) + self.offset
        if self.clip is not None:
            scores = np.clip(scores, self.clip[0], self.clip[1])
        return scores

    def predict(self, user: int, item: int) -> float:
        """Predicted rating for one (user, item) pair."""
        return float(self.predict_batch(np.array([user]),
                                        np.array([item]))[0])

    # -- cold start and incremental fold-in --------------------------------

    def _append_user_rows(self, rows: np.ndarray) -> None:
        version = self._active
        need = version.n_users + rows.shape[0]
        if need > version.user_capacity:
            old = version.grow_users(need)
            # Workers switch segments through the delta queue; the old
            # segment stays mapped on their side until then, and unlink
            # here only removes the name.
            self._pending_deltas.append(
                ("user-block", version.version_id,
                 version.user_block.descriptor(), need))
            old.destroy()
        else:
            self._pending_deltas.append(
                ("user-count", version.version_id, need))
        version.user_block.view()[version.n_users:need] = rows
        version.n_users = need

    def fold_in(self, items: np.ndarray, values: np.ndarray) -> int:
        """Register an unseen user; semantics match the single service."""
        return self.fold_in_batch([items], [values])[0]

    def fold_in_batch(self, item_lists: Sequence[np.ndarray],
                      value_lists: Sequence[np.ndarray]) -> List[int]:
        """Register several unseen users in one stacked fold-in pass.

        The gateway holds no item factors, so the rated items' rows are
        gathered from the shards into a compact matrix and the indices
        remapped before the stacked fold-in runs.  The batched engine's
        arithmetic only ever sees the gathered rows in per-user order, so
        the resulting factor rows are bit-identical to the full-matrix
        fold-in the single-process service performs.
        """
        with self._lock:
            item_lists = [np.asarray(items, dtype=np.int64).ravel()
                          for items in item_lists]
            value_lists = [np.asarray(vals, dtype=np.float64).ravel()
                           - self.offset for vals in value_lists]
            for items in item_lists:
                self._check_items(items)
            self._ensure_pool()
            all_items = (np.concatenate(item_lists) if item_lists
                         else np.empty(0, dtype=np.int64))
            unique_items = np.unique(all_items)
            if unique_items.size:
                compact = self._gather_item_rows(unique_items)
            else:
                compact = np.empty((0, self.num_latent))
            remapped = [np.searchsorted(unique_items, items)
                        for items in item_lists]
            rows = fold_in_users(compact, self._user_prior, self._alpha,
                                 remapped, value_lists)
            first = self.n_users
            self._append_user_rows(rows)
            self._foldin.register(
                first, item_lists, value_lists,
                lambda items: compact[np.searchsorted(unique_items, items)])
            return list(range(first, first + rows.shape[0]))

    def add_ratings(self, user: int, items: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        """Rank-k posterior update for a known folded-in user.

        Gathers only the *new* items' factor rows, updates the user's
        sufficient statistics, rewrites their row in the shared user
        segment (visible to every worker through the segment itself — no
        re-registration needed), and returns the new row.
        """
        with self._lock:
            user = int(user)
            items = np.asarray(items, dtype=np.int64).ravel()
            values = np.asarray(values, dtype=np.float64).ravel() - self.offset
            self._check_items(items)
            self._ensure_pool()
            row = self._foldin.update(
                user, self._n_train_users, self.n_users, items, values,
                lambda items: (self._gather_item_rows(items) if items.size
                               else np.empty((0, self.num_latent))))
            self._active.user_block.view()[user] = row
            return row

    # -- hot snapshot swap -------------------------------------------------

    def load_version(self, source: Union[Snapshot, SnapshotLike]) -> int:
        """Validate and atomically activate a new posterior snapshot.

        The snapshot is fully loaded (integrity-checked when read from
        disk), shape-validated against the serving configuration, and
        staged into *fresh* segments before anything is swapped; folded-in
        users are re-folded against the new item factors so they survive
        the swap.  The flip happens under the gateway lock, after which
        the old version's segments are retired — requests never observe a
        half-loaded version.  Returns the new version id.
        """
        snapshot = coerce_snapshot(source)
        staging = PredictionService(snapshot, mode=self.mode,
                                    train=self._train, clip=self.clip)
        if (staging.n_items, staging.num_latent) \
                != (self.n_items, self.num_latent):
            raise ValidationError(
                f"snapshot factors are {staging.n_items} items x "
                f"K={staging.num_latent}, but the cluster serves "
                f"{self.n_items} items x K={self.num_latent}")
        if staging.n_train_users != self._n_train_users:
            raise ValidationError(
                f"snapshot has {staging.n_train_users} training users, "
                f"the cluster serves {self._n_train_users}")
        if staging.offset != self.offset:
            # Folded-in users' stored rating values (and their sufficient
            # statistics) had *this* offset removed; swapping in a
            # re-centred snapshot would silently shift their predictions
            # by the offset delta.  Same invariant PredictionService
            # enforces across pooled snapshots.
            raise ValidationError(
                f"snapshot was centred with offset {staging.offset}, the "
                f"cluster serves offset {self.offset}")

        with self._lock:
            if self._closed:
                raise ValidationError("ShardedScorer is closed")
            # Re-fold every registered cold-start user against the new
            # item factors, preserving their ids (buffer order).
            refreshed = self._foldin.refreshed(staging._item_factors)
            user_factors = staging._user_factors
            if refreshed.states:
                user_factors = np.vstack(
                    [user_factors]
                    + [refreshed.states[user].row()[None, :]
                       for user in sorted(refreshed.states)])
            replacement = _VersionState(
                next(self._version_ids), staging._item_factors,
                self._bounds, user_factors, self._n_train_users,
                staging.offset)
            del staging
            old, self._active = self._active, replacement
            self._pending_deltas.clear()
            self._foldin = refreshed
            if self._pool.started:
                for worker_id in range(self.n_workers):
                    self._pool.send(
                        worker_id,
                        ("load-version", replacement.version_id,
                         replacement.payload(self._owned_shards(worker_id))))
                    self._pool.send(worker_id,
                                    ("retire-version", old.version_id))
            old.destroy()
            self.n_swaps += 1
            return replacement.version_id

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Gateway counters (queries, swaps, deltas, population, pool).

        Includes the :class:`WorkerPool` health counters (respawns after
        dead workers, worker-side registration failures), so the network
        frontend's ``health`` frame can report pool churn.
        """
        counters = {
            "n_queries": self.n_queries,
            "n_batch_dispatches": self.n_batch_dispatches,
            "n_swaps": self.n_swaps,
            "n_deltas_flushed": self.n_deltas_flushed,
            "n_shards": self.n_shards,
            "n_workers": self.n_workers,
            "n_users": self.n_users,
            "n_folded_in": self.n_users - self._n_train_users,
            "version": self.version,
        }
        counters.update(self._pool.stats())
        if self._wal_stats is not None:
            counters["wal"] = dict(self._wal_stats())
        return counters

    def attach_wal_stats(self, stats_fn) -> None:
        """Merge a WAL coordinator's counters into :meth:`stats`."""
        self._wal_stats = stats_fn

    def state_digest(self) -> str:
        """A hex digest of all mutable serving state, bit-exact.

        Same contract as :meth:`PredictionService.state_digest` — the
        in-use user rows plus the fold-in registry — so a sharded
        gateway and a single-process service that absorbed the same
        mutation history digest identically.
        """
        with self._lock:
            payload = hashlib.sha256()
            payload.update(f"{self._n_train_users}:{self.n_users}"
                           .encode("ascii"))
            rows = self._active.user_block.view()[:self.n_users]
            payload.update(np.ascontiguousarray(rows).tobytes())
            payload.update(self._foldin.digest().encode("ascii"))
            return payload.hexdigest()
