"""Online prediction/ranking service over persisted posterior snapshots.

:class:`PredictionService` is the read path of the system: it loads one or
more snapshots (averaging multiple chains when given several), precomputes
a C-contiguous item-factor block for fast ranked retrieval, and answers

* ``predict(user, item)`` / ``predict_batch`` — rating predictions with
  the training offset restored and optional clipping;
* ``top_n(user)`` — ranked recommendations, identical (same selection and
  tie-breaking) to :func:`repro.core.recommend.recommend_for_user` on the
  equivalent in-memory state;
* ``fold_in(items, values)`` — register a cold-start user never seen at
  training time (:mod:`repro.serving.foldin`) and serve them like any
  other user.

Two serving-throughput mechanisms are built in:

* a bounded **LRU score cache** of per-user full score vectors, so repeat
  ``top_n``/score traffic for hot users costs one dict lookup instead of a
  GEMV;
* **request micro-batching** (:class:`MicroBatcher`): single-pair lookups
  are queued and executed as one vectorized gather when the batch fills or
  a result is demanded — the classic trick for amortizing per-request
  overhead under heavy traffic.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.priors import GaussianPrior
from repro.core.recommend import Recommendation, select_top_n
from repro.core.state import BPMFState
from repro.serving.checkpoint import PathLike, Snapshot, coerce_snapshot
from repro.serving.foldin import FoldInRegistry, fold_in_users
from repro.sparse.csr import RatingMatrix
from repro.utils.validation import ValidationError, check_in, check_positive

__all__ = ["PredictionService", "MicroBatcher", "PendingPrediction",
           "check_user_range", "check_item_range"]

SnapshotLike = Union[Snapshot, PathLike]


def check_user_range(users: np.ndarray, n_users: int,
                     n_train_users: int) -> None:
    """Reject user indices outside ``[0, n_users)``.

    Shared by the single service and the cluster gateway so both reject
    with the same message (including the folded-in count, the usual
    source of off-by-confusion).
    """
    if users.size and (int(users.min()) < 0 or int(users.max()) >= n_users):
        raise ValidationError(
            f"user index outside [0, {n_users}) "
            f"({n_users - n_train_users} folded-in users)")


def check_item_range(items: np.ndarray, n_items: int) -> None:
    """Reject item indices outside ``[0, n_items)`` (shared, see above)."""
    if items.size and (int(items.min()) < 0 or int(items.max()) >= n_items):
        raise ValidationError(f"item index outside [0, {n_items})")


class PredictionService:
    """Serves predictions and rankings from posterior snapshots.

    Parameters
    ----------
    snapshots:
        One snapshot (or path), or a sequence of them.  Several snapshots —
        e.g. independent chains, or snapshots taken along one chain — are
        combined into a single factor model: ``mode="mean"`` pools their
        posterior-mean accumulators (weighted by sample counts), while
        ``mode="last"`` averages their last Gibbs samples.
    mode:
        ``"mean"`` (default) serves from posterior-mean factors, falling
        back to the last sample for snapshots that never left burn-in;
        ``"last"`` serves from the last Gibbs sample — the mode that
        reproduces in-memory ``recommend_for_user`` results exactly.
    train:
        Optional training rating matrix; when provided, ``top_n`` excludes
        items the user already rated (the standard serving rule).
    clip:
        Optional ``(low, high)`` rating range applied to served scores.
    cache_size:
        Maximum number of per-user score vectors kept in the LRU cache.
    """

    #: Dotted prefix this gateway's :meth:`stats` surfaces under in a
    #: :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
    METRICS_PREFIX = "serving.service"

    def __init__(self, snapshots: Union[SnapshotLike, Sequence[SnapshotLike]],
                 mode: str = "mean", train: Optional[RatingMatrix] = None,
                 clip: Optional[Tuple[float, float]] = None,
                 cache_size: int = 256):
        check_in("mode", mode, ("mean", "last"))
        check_positive("cache_size", cache_size)
        if isinstance(snapshots, (Snapshot, str)) or hasattr(snapshots, "__fspath__"):
            snapshots = [snapshots]
        loaded = [coerce_snapshot(source) for source in snapshots]
        if not loaded:
            raise ValidationError("at least one snapshot is required")
        if clip is not None and clip[0] > clip[1]:
            raise ValidationError(f"invalid clip range {clip}")

        shapes = {(snap.state.n_users, snap.state.n_movies, snap.state.num_latent)
                  for snap in loaded}
        if len(shapes) > 1:
            raise ValidationError(
                f"snapshots disagree on factor shapes: {sorted(shapes)}")
        offsets = {float(snap.offset) for snap in loaded}
        if len(offsets) > 1:
            raise ValidationError(
                f"snapshots disagree on the rating offset: {sorted(offsets)}")

        user_factors, item_factors = self._combine(loaded, mode)
        self.mode = mode
        self.offset = float(loaded[0].offset)
        self.clip = clip
        # C-contiguous blocks: top_n is one GEMV against the item block.
        # The user block lives in a geometrically grown buffer so fold-in
        # registration is amortized O(K), not O(n_users) per request;
        # `_user_factors` is always the view of the rows in use.
        self._user_buffer = np.ascontiguousarray(user_factors)
        self._user_factors = self._user_buffer
        self._item_factors = np.ascontiguousarray(item_factors)
        self._n_train_users = int(user_factors.shape[0])
        self._user_prior: GaussianPrior = loaded[0].state.user_prior.copy()
        self._movie_prior: GaussianPrior = loaded[0].state.movie_prior.copy()
        self._alpha = loaded[0].alpha
        self._train = train
        if train is not None and (train.n_users != self._n_train_users
                                  or train.n_movies != self.n_items):
            raise ValidationError(
                "train matrix shape does not match the snapshot factors")
        self._cache_size = int(cache_size)
        self._score_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.n_snapshots = len(loaded)
        # Incremental-update state per folded-in user id (rank-k posterior
        # updates when a known cold-start user rates new items).
        self._foldin = FoldInRegistry(self._user_prior, self._alpha)
        self._wal_stats: Optional[Callable[[], Dict[str, object]]] = None

    @staticmethod
    def _combine(loaded: List[Snapshot], mode: str) -> Tuple[np.ndarray, np.ndarray]:
        if mode == "last":
            user = np.mean([snap.state.user_factors for snap in loaded], axis=0)
            item = np.mean([snap.state.movie_factors for snap in loaded], axis=0)
            return user, item
        # "mean": pool the running sums so chains with more retained samples
        # weigh proportionally; snapshots without samples fall back to their
        # last state with weight 1.
        user_sum = np.zeros_like(loaded[0].state.user_factors)
        item_sum = np.zeros_like(loaded[0].state.movie_factors)
        count = 0
        for snap in loaded:
            if snap.mean_count > 0 and snap.mean_user_sum is not None:
                user_sum += snap.mean_user_sum
                item_sum += snap.mean_movie_sum
                count += snap.mean_count
            else:
                user_sum += snap.state.user_factors
                item_sum += snap.state.movie_factors
                count += 1
        return user_sum / count, item_sum / count

    # -- shape properties --------------------------------------------------

    @property
    def n_users(self) -> int:
        """Total users served, including folded-in cold-start users."""
        return int(self._user_factors.shape[0])

    @property
    def n_train_users(self) -> int:
        """Users present at training time (fold-in ids start here)."""
        return self._n_train_users

    @property
    def n_items(self) -> int:
        return int(self._item_factors.shape[0])

    @property
    def num_latent(self) -> int:
        return int(self._item_factors.shape[1])

    def state(self) -> BPMFState:
        """The serving factors as a :class:`BPMFState` (parity/diagnostics)."""
        return BPMFState(
            user_factors=self._user_factors.copy(),
            movie_factors=self._item_factors.copy(),
            user_prior=self._user_prior.copy(),
            movie_prior=self._movie_prior.copy(),
        )

    # -- scoring -----------------------------------------------------------

    def _check_users(self, users: np.ndarray) -> None:
        check_user_range(users, self.n_users, self._n_train_users)

    def _check_items(self, items: np.ndarray) -> None:
        check_item_range(items, self.n_items)

    def predict_batch(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predicted ratings for parallel (user, item) index arrays."""
        users = np.asarray(users, dtype=np.int64).ravel()
        items = np.asarray(items, dtype=np.int64).ravel()
        if users.shape != items.shape:
            raise ValidationError("users and items must align")
        self._check_users(users)
        self._check_items(items)
        scores = np.einsum("ij,ij->i", self._user_factors[users],
                           self._item_factors[items]) + self.offset
        if self.clip is not None:
            scores = np.clip(scores, self.clip[0], self.clip[1])
        return scores

    def predict(self, user: int, item: int) -> float:
        """Predicted rating for one (user, item) pair."""
        return float(self.predict_batch(np.array([user]), np.array([item]))[0])

    def batcher(self, max_batch: int = 256) -> "MicroBatcher":
        """A micro-batching front-end over this service (see class docs)."""
        return MicroBatcher(self, max_batch=max_batch)

    # -- ranked retrieval ----------------------------------------------------

    def _user_scores(self, user: int) -> np.ndarray:
        """Full (LRU-cached) score vector of one user over all items."""
        cached = self._score_cache.get(user)
        if cached is not None:
            self._score_cache.move_to_end(user)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        scores = self._item_factors @ self._user_factors[user] + self.offset
        scores.setflags(write=False)
        while len(self._score_cache) >= self._cache_size:
            self._score_cache.popitem(last=False)
        self._score_cache[user] = scores
        return scores

    def top_n(self, user: int, n: int = 10,
              exclude_seen: bool = True) -> Recommendation:
        """Top-``n`` items for ``user`` by predicted rating.

        Selection and tie-breaking mirror
        :func:`repro.core.recommend.recommend_for_user`; with
        ``exclude_seen`` (and a ``train`` matrix) the user's training-time
        ratings are excluded.  Folded-in users have no training rows, so
        all items are candidates for them.
        """
        check_positive("n", n)
        users = np.array([user], dtype=np.int64)
        self._check_users(users)
        user = int(user)

        candidates = np.arange(self.n_items, dtype=np.int64)
        if exclude_seen and self._train is not None \
                and user < self._n_train_users:
            seen, _ = self._train.user_ratings(user)
            candidates = np.setdiff1d(candidates, seen, assume_unique=False)
        if candidates.shape[0] == 0:
            return Recommendation(user=user, items=np.empty(0, dtype=np.int64),
                                  scores=np.empty(0))

        scores = self._user_scores(user)[candidates]
        order = select_top_n(scores, n)
        items = candidates[order].copy()
        selected = scores[order].copy()
        if self.clip is not None:
            selected = np.clip(selected, self.clip[0], self.clip[1])
        return Recommendation(user=user, items=items, scores=selected)

    def top_n_batch(self, users: Sequence[int], n: int = 10,
                    exclude_seen: bool = True) -> Dict[int, Recommendation]:
        """Ranked lists for several users."""
        return {int(user): self.top_n(int(user), n=n, exclude_seen=exclude_seen)
                for user in users}

    # -- cache bookkeeping ---------------------------------------------------

    def _invalidate_cached_scores(self, user: int) -> None:
        """Drop a user's cached score vector after their row changed."""
        if self._score_cache.pop(user, None) is not None:
            self.cache_invalidations += 1

    def stats(self) -> Dict[str, object]:
        """Serving counters: cache behaviour and population sizes.

        When a WAL coordinator is attached (:meth:`attach_wal_stats`)
        its counters ride along under ``"wal"`` — role, appended,
        replayed, duplicates skipped, catch-up batches.
        """
        counters: Dict[str, object] = {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidations": self.cache_invalidations,
            "cache_entries": len(self._score_cache),
            "n_users": self.n_users,
            "n_folded_in": self.n_users - self._n_train_users,
        }
        if self._wal_stats is not None:
            counters["wal"] = dict(self._wal_stats())
        return counters

    def attach_wal_stats(self,
                         stats_fn: Callable[[], Dict[str, object]]) -> None:
        """Merge a WAL coordinator's counters into :meth:`stats`."""
        self._wal_stats = stats_fn

    def state_digest(self) -> str:
        """A hex digest of all mutable serving state, bit-exact.

        Covers the user-factor rows in use plus the fold-in registry's
        incremental statistics — everything ``rate``/``foldin`` can
        touch.  Two replicas that applied the same mutation sequence to
        the same snapshot digest identically; a single ULP of drift in
        any factor row changes it.  This is the fleet convergence
        invariant the replication tests pin.
        """
        payload = hashlib.sha256()
        payload.update(f"{self._n_train_users}:{self.n_users}"
                       .encode("ascii"))
        payload.update(np.ascontiguousarray(self._user_factors).tobytes())
        payload.update(self._foldin.digest().encode("ascii"))
        return payload.hexdigest()

    # -- cold start ----------------------------------------------------------

    def fold_in(self, items: np.ndarray, values: np.ndarray) -> int:
        """Register an unseen user from their observed ratings.

        ``values`` are raw ratings on the served scale; the training offset
        is removed before the conditional posterior is computed.  Returns
        the new user id (``>= n_train_users``), immediately usable with
        :meth:`predict` and :meth:`top_n`.
        """
        return self.fold_in_batch([items], [values])[0]

    def fold_in_batch(self, item_lists: Sequence[np.ndarray],
                      value_lists: Sequence[np.ndarray]) -> List[int]:
        """Register several unseen users in one stacked fold-in pass."""
        item_lists = [np.asarray(items, dtype=np.int64)
                      for items in item_lists]
        value_lists = [np.asarray(vals, dtype=np.float64) - self.offset
                       for vals in value_lists]
        rows = fold_in_users(self._item_factors, self._user_prior,
                             self._alpha, item_lists, value_lists)
        first = self.n_users
        self._append_user_rows(rows)
        self._foldin.register(first, item_lists, value_lists,
                              lambda items: self._item_factors[items])
        for new_id in range(first, first + rows.shape[0]):
            # A buffer id can never be recycled, but drop any entry anyway
            # so a stale vector cannot survive an id-accounting bug.
            self._invalidate_cached_scores(new_id)
        return list(range(first, first + rows.shape[0]))

    def add_ratings(self, user: int, items: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
        """Incrementally update a folded-in user who rated new items.

        A rank-``k`` update of the user's conditional posterior
        (:class:`~repro.serving.foldin.FoldInState`) — their full history
        is *not* re-folded.  The user's factor row is rewritten in place
        and their cached score vector invalidated, so the next ``top_n``
        reflects the new ratings.  Only folded-in users carry the
        incremental state; training users' rows belong to the sampler.
        """
        user = int(user)
        items = np.asarray(items, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel() - self.offset
        self._check_items(items)
        row = self._foldin.update(user, self._n_train_users, self.n_users,
                                  items, values,
                                  lambda items: self._item_factors[items])
        self._user_buffer[user] = row
        self._invalidate_cached_scores(user)
        return row

    def _append_user_rows(self, rows: np.ndarray) -> None:
        """Append factor rows, doubling the buffer when it fills."""
        used, n_new = self.n_users, rows.shape[0]
        if used + n_new > self._user_buffer.shape[0]:
            capacity = max(used + n_new, 2 * self._user_buffer.shape[0])
            buffer = np.empty((capacity, self.num_latent))
            buffer[:used] = self._user_buffer[:used]
            self._user_buffer = buffer
        self._user_buffer[used:used + n_new] = rows
        self._user_factors = self._user_buffer[:used + n_new]


class PendingPrediction:
    """Handle for one queued prediction (resolved when the batch runs)."""

    __slots__ = ("user", "item", "_value")

    def __init__(self, user: int, item: int):
        self.user = int(user)
        self.item = int(item)
        self._value: Optional[float] = None

    @property
    def done(self) -> bool:
        return self._value is not None

    def _resolve(self, value: float) -> None:
        self._value = float(value)

    def result(self) -> float:
        """The predicted rating; raises if the batch has not run yet."""
        if self._value is None:
            raise ValidationError(
                "prediction is still queued — call MicroBatcher.flush() "
                "(or use MicroBatcher.result(handle))")
        return self._value


class MicroBatcher:
    """Queues single-pair requests and executes them as vectorized batches.

    ``submit`` is O(1); the queue drains through one
    :meth:`PredictionService.predict_batch` call when ``max_batch``
    requests have accumulated, when :meth:`flush` is called, or when
    :meth:`result` demands an unresolved handle.
    """

    def __init__(self, service: PredictionService, max_batch: int = 256):
        check_positive("max_batch", max_batch)
        self.service = service
        self.max_batch = int(max_batch)
        self._queue: List[PendingPrediction] = []
        self.n_flushes = 0
        self.n_requests = 0

    def submit(self, user: int, item: int) -> PendingPrediction:
        """Queue one request; auto-flushes when the batch is full.

        Indices are validated here, so a bad request fails at submit time
        instead of poisoning the whole batch at flush time.
        """
        pending = PendingPrediction(user, item)
        self.service._check_users(np.array([pending.user], dtype=np.int64))
        self.service._check_items(np.array([pending.item], dtype=np.int64))
        self._queue.append(pending)
        self.n_requests += 1
        if len(self._queue) >= self.max_batch:
            self.flush()
        return pending

    def flush(self) -> int:
        """Run every queued request in one vectorized call; returns count."""
        if not self._queue:
            return 0
        batch, self._queue = self._queue, []
        users = np.array([pending.user for pending in batch], dtype=np.int64)
        items = np.array([pending.item for pending in batch], dtype=np.int64)
        values = self.service.predict_batch(users, items)
        for pending, value in zip(batch, values):
            pending._resolve(value)
        self.n_flushes += 1
        return len(batch)

    def result(self, pending: PendingPrediction) -> float:
        """Resolve (flushing if needed) and return one request's value."""
        if not pending.done:
            self.flush()
        return pending.result()
