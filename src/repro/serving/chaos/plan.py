"""Deterministic, seedable fault schedules for the serving stack.

Every robustness claim in this repo used to rest on hand-written drills
(kill replica 0 at one hard-coded moment).  This module turns fault
injection into a *seeded, replayable schedule*:

* :class:`FaultEvent` — one planned fault: at the ``step``-th operation
  on an injection ``site`` (or at a wall-clock offset, for fleet
  events), perform ``action`` with parameter ``arg``.
* :class:`FaultPlan` — a complete schedule, generated deterministically
  from an integer seed: per-call-site events (socket sends/recvs, WAL
  appends/fsyncs) plus a timeline of fleet events (kill / pause a
  replica, then recover).  ``FaultPlan.generate(seed)`` is a pure
  function of its arguments — the same seed always yields the
  byte-identical schedule, which is what lets a CI failure replay
  exactly.
* :class:`FaultInjector` — the runtime half: shims in the stack call
  :meth:`FaultInjector.check` with their site name, the injector counts
  calls per site and hands back the event scheduled for exactly that
  call (or ``None``).  Every *triggered* event is appended to
  :attr:`FaultInjector.log` with its sequence position, so two runs
  that make the same calls trigger the identical log (pinned by a
  hypothesis property in ``tests/test_chaos_plan.py``).

Injection is strictly opt-in: no plan, no injector, no behaviour change
anywhere — every shim's fast path is ``if injector is None``.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import annotate_active

__all__ = ["FaultEvent", "FleetEvent", "FaultPlan", "FaultInjector",
           "SITE_ACTIONS", "FLEET_ACTIONS"]

#: Injection sites and the fault actions each supports.  ``arg`` units
#: depend on the action: seconds for delays/pauses, unused otherwise.
SITE_ACTIONS: Dict[str, Tuple[str, ...]] = {
    # Client/replication socket wrapper (ChaosSocket).
    "net.connect": ("fail", "delay"),
    "net.send": ("delay", "drop", "reset"),
    "net.recv": ("delay", "slow", "drop", "reset"),
    # Filesystem shim inside WriteAheadLog.append.
    "wal.append": ("enospc", "torn"),
    "wal.fsync": ("fail",),
}

#: Fleet-level actions applied by a conductor at wall-clock offsets.
FLEET_ACTIONS: Tuple[str, ...] = ("kill", "pause")

#: Bounds for generated ``arg`` values, per action (seconds).
_ARG_RANGES = {
    "delay": (0.002, 0.03),
    "kill": (0.2, 0.8),    # downtime before the conductor restarts it
    "pause": (0.1, 0.5),   # gateway-executor stall length
}


@dataclass(frozen=True)
class FaultEvent:
    """One planned per-site fault: fire on the ``step``-th call."""

    site: str
    step: int          # 1-based call index at this site
    action: str
    arg: float = 0.0


@dataclass(frozen=True)
class FleetEvent:
    """One planned fleet fault at a wall-clock offset from storm start."""

    at: float          # seconds after the conductor starts
    action: str        # "kill" (arg = downtime) or "pause" (arg = stall)
    replica: int
    arg: float


@dataclass
class FaultPlan:
    """A deterministic fault schedule (see module docstring).

    Build one with :meth:`generate`; construct directly only in tests
    that need a hand-written schedule.
    """

    seed: int
    events: List[FaultEvent] = field(default_factory=list)
    fleet: List[FleetEvent] = field(default_factory=list)

    @classmethod
    def generate(cls, seed: int, n_events: int = 24, horizon: int = 200,
                 n_replicas: int = 0, n_fleet_events: int = 3,
                 fleet_span: float = 6.0,
                 sites: Optional[Sequence[str]] = None) -> "FaultPlan":
        """Draw a schedule from ``seed`` — a pure function of its inputs.

        ``n_events`` per-site faults are spread over call steps
        ``1..horizon``; with ``n_replicas > 0``, ``n_fleet_events``
        kill/pause events land at offsets within ``fleet_span`` seconds.
        Replica 0 (the write leader) is eligible like any other — the
        invariants must hold through leader loss too.
        """
        rng = random.Random(int(seed))
        site_names = tuple(sites) if sites is not None \
            else tuple(sorted(SITE_ACTIONS))
        taken = set()
        events: List[FaultEvent] = []
        for _ in range(int(n_events)):
            site = rng.choice(site_names)
            action = rng.choice(SITE_ACTIONS[site])
            step = rng.randint(1, int(horizon))
            if (site, step) in taken:
                continue  # one event per (site, step); skip, stay seeded
            taken.add((site, step))
            low, high = _ARG_RANGES.get(action, (0.0, 0.0))
            arg = round(rng.uniform(low, high), 6) if high else 0.0
            events.append(FaultEvent(site=site, step=step,
                                     action=action, arg=arg))
        events.sort(key=lambda event: (event.site, event.step))
        fleet: List[FleetEvent] = []
        if n_replicas > 0:
            offsets = sorted(round(rng.uniform(0.3, float(fleet_span)), 3)
                             for _ in range(int(n_fleet_events)))
            for at in offsets:
                action = rng.choice(FLEET_ACTIONS)
                low, high = _ARG_RANGES[action]
                fleet.append(FleetEvent(
                    at=at, action=action,
                    replica=rng.randrange(int(n_replicas)),
                    arg=round(rng.uniform(low, high), 6)))
        return cls(seed=int(seed), events=events, fleet=fleet)

    def to_json(self) -> Dict[str, object]:
        """The schedule as a JSON-able dict (the drill's report artifact)."""
        return {
            "seed": self.seed,
            "events": [asdict(event) for event in self.events],
            "fleet": [asdict(event) for event in self.fleet],
        }

    def digest(self) -> str:
        """SHA-256 over the canonical schedule (reproducibility pin)."""
        canonical = json.dumps(self.to_json(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class FaultInjector:
    """Runtime dispatcher of a :class:`FaultPlan` (thread-safe).

    Shims call :meth:`check` once per operation; the injector counts
    calls per site and returns the event scheduled for exactly that
    call, recording it in :attr:`log`.  With ``plan=None`` every check
    answers ``None`` — the disabled injector is safe to thread through
    unconditionally.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._scheduled: Dict[Tuple[str, int], FaultEvent] = {}
        if plan is not None:
            for event in plan.events:
                self._scheduled[(event.site, event.step)] = event
        #: Every event that actually fired, in firing order, as dicts
        #: ``{seq, site, step, action, arg}`` — JSON-able for reports.
        self.log: List[Dict[str, object]] = []

    def check(self, site: str) -> Optional[FaultEvent]:
        """Count one call at ``site``; the event due now, or ``None``."""
        if self.plan is None:
            return None
        with self._lock:
            step = self._counts.get(site, 0) + 1
            self._counts[site] = step
            event = self._scheduled.get((site, step))
            if event is not None:
                fired = {"seq": len(self.log), "site": site,
                         "step": step, "action": event.action,
                         "arg": event.arg}
                self.log.append(fired)
                # A fault landing inside a traced request annotates the
                # live span, so the trace shows exactly which request
                # the fault hit (no-op when nothing is active).
                annotate_active("fault", dict(fired))
            return event

    def counts(self) -> Dict[str, int]:
        """Calls observed per site (how much traffic crossed each shim)."""
        with self._lock:
            return dict(self._counts)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"triggered": len(self.log),
                    "scheduled": len(self._scheduled),
                    "sites": dict(self._counts)}
