"""Injectable fault shims: the runtime hooks a :class:`FaultPlan` drives.

Three hook families, matching the plan's site names:

* :class:`ChaosSocket` — wraps a blocking socket (the sync client's
  cached connections, or a WAL shipping link) and consults the injector
  on every ``sendall``/``recv``: delay, drop the bytes, reset the
  connection, or degrade to one-byte reads (``slow`` — which also
  exercises the frame decoder's partial-reassembly path).
* The WAL filesystem faults (``wal.append``/``wal.fsync``) live inside
  :meth:`~repro.serving.wal.log.WriteAheadLog.append` itself — they
  must manipulate the segment file mid-append — but are driven by the
  same injector object threaded through
  :class:`~repro.serving.net.replica.ReplicaSet`.
* :class:`FleetConductor` — a thread that applies the plan's
  :class:`~repro.serving.chaos.plan.FleetEvent` timeline to a live
  :class:`~repro.serving.net.replica.ReplicaSet`: hard-kill a replica
  and restart it after its scheduled downtime, or pause one replica's
  gateway executor.  Events apply sequentially, so at most one replica
  is down at a time and the fleet never loses quorum entirely.

All hooks are no-ops without an injector — the production path never
pays for them beyond one ``is None`` check.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional

from repro.serving.chaos.plan import FaultInjector

__all__ = ["ChaosSocket", "FleetConductor", "InjectedConnectError"]


class InjectedConnectError(ConnectionError):
    """A scheduled ``net.connect`` failure (raised before any byte moves)."""


class ChaosSocket:
    """A blocking socket proxy that executes scheduled socket faults.

    Wraps an already-connected socket; every method the serving clients
    and WAL links use is forwarded, with ``sendall`` and ``recv``
    consulting the injector first.  Faults mimic real failure modes:

    * ``delay`` — sleep ``arg`` seconds, then do the operation (a stalled
      network; the peer still gets/serves the data).
    * ``drop`` on send — discard the frame and report success (a lost
      request: the caller's next read times out).
    * ``drop`` on recv — wait out the socket timeout and raise
      ``socket.timeout`` (a lost reply).
    * ``reset`` — close the underlying socket and raise
      ``ConnectionResetError`` (a peer crash / RST).
    * ``slow`` on recv — return at most one byte per call for this and
      every later read on the connection, forcing the frame decoder to
      reassemble frames from single-byte chunks.
    """

    def __init__(self, sock: socket.socket, injector: FaultInjector):
        self._sock = sock
        self._injector = injector
        self._slow = False

    # -- faultable operations ----------------------------------------------

    def sendall(self, data: bytes) -> None:
        event = self._injector.check("net.send")
        if event is not None:
            if event.action == "delay":
                time.sleep(event.arg)
            elif event.action == "drop":
                return  # the bytes vanish; the caller's read will time out
            elif event.action == "reset":
                self._sock.close()
                raise ConnectionResetError("injected reset on send")
        self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        event = self._injector.check("net.recv")
        if event is not None:
            if event.action == "delay":
                time.sleep(event.arg)
            elif event.action == "slow":
                self._slow = True
            elif event.action == "drop":
                # Swallow whatever arrives until the timeout fires — the
                # reply is "lost"; a timeout-less socket gets a reset
                # instead so the caller can never hang here.
                if self._sock.gettimeout() is None:
                    self._sock.close()
                    raise ConnectionResetError("injected drop on recv "
                                               "(no timeout to wait out)")
                deadline = time.monotonic() + self._sock.gettimeout()
                try:
                    while time.monotonic() < deadline:
                        if not self._sock.recv(bufsize):
                            raise ConnectionError(
                                "peer closed during injected drop")
                except socket.timeout:
                    pass
                raise socket.timeout("injected dropped reply")
            elif event.action == "reset":
                self._sock.close()
                raise ConnectionResetError("injected reset on recv")
        return self._sock.recv(1 if self._slow else bufsize)

    # -- plain passthrough --------------------------------------------------

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def gettimeout(self):
        return self._sock.gettimeout()

    def close(self) -> None:
        self._sock.close()

    def __getattr__(self, name):
        return getattr(self._sock, name)


class FleetConductor(threading.Thread):
    """Apply a plan's fleet timeline to a live :class:`ReplicaSet`.

    ``start()`` begins the clock; each event waits for its offset, then
    runs to completion before the next (kill → scheduled downtime →
    restart), so at most one replica is ever down.  Every action is
    recorded in :attr:`log` with its wall-clock offset for the drill's
    report artifact.  :meth:`finish` joins the thread and re-raises
    anything a restart raised.
    """

    def __init__(self, replica_set, fleet_events):
        super().__init__(daemon=True, name="repro-chaos-conductor")
        self._replicas = replica_set
        self._events = sorted(fleet_events, key=lambda event: event.at)
        self.log: List[Dict[str, object]] = []
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        start = time.monotonic()
        try:
            for event in self._events:
                wait = event.at - (time.monotonic() - start)
                if wait > 0:
                    time.sleep(wait)
                offset = round(time.monotonic() - start, 3)
                if event.action == "kill":
                    self._replicas.kill(event.replica)
                    self.log.append({"at": offset, "action": "kill",
                                     "replica": event.replica,
                                     "downtime": event.arg})
                    time.sleep(event.arg)
                    self._replicas.restart(event.replica)
                    self.log.append({
                        "at": round(time.monotonic() - start, 3),
                        "action": "restart", "replica": event.replica})
                elif event.action == "pause":
                    self._replicas.pause(event.replica, event.arg)
                    self.log.append({"at": offset, "action": "pause",
                                     "replica": event.replica,
                                     "seconds": event.arg})
        except BaseException as error:  # surfaced by finish()
            self.error = error

    def finish(self, timeout: float = 60.0) -> List[Dict[str, object]]:
        """Join the conductor; returns its action log, raising on failure."""
        self.join(timeout=timeout)
        if self.is_alive():
            raise TimeoutError("fleet conductor did not finish")
        if self.error is not None:
            raise self.error
        return self.log
