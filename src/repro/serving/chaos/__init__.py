"""Deterministic fault injection for the serving stack.

* :mod:`repro.serving.chaos.plan` — :class:`FaultPlan` (a seeded,
  replayable schedule of fault events) and :class:`FaultInjector` (the
  thread-safe runtime dispatcher whose triggered-event log is
  deterministic given the same call sequence).
* :mod:`repro.serving.chaos.shims` — the hooks a plan drives:
  :class:`ChaosSocket` (delay / drop / reset / slow-read on scheduled
  frames), the WAL filesystem faults (driven through
  :meth:`~repro.serving.wal.log.WriteAheadLog.append`), and
  :class:`FleetConductor` (scheduled replica kill / pause against a
  :class:`~repro.serving.net.replica.ReplicaSet`).

``python -m repro.serving chaos-smoke --seed N`` runs the whole layer
end to end: a replica fleet under a seeded schedule while a read/write
storm asserts the standing invariants (no acked write lost, reads
bit-exact or retryable within their deadline, no hangs, post-schedule
convergence).
"""

from repro.serving.chaos.plan import (
    FLEET_ACTIONS,
    SITE_ACTIONS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FleetEvent,
)
from repro.serving.chaos.shims import (
    ChaosSocket,
    FleetConductor,
    InjectedConnectError,
)

__all__ = [
    "FaultEvent",
    "FleetEvent",
    "FaultPlan",
    "FaultInjector",
    "SITE_ACTIONS",
    "FLEET_ACTIONS",
    "ChaosSocket",
    "FleetConductor",
    "InjectedConnectError",
]
