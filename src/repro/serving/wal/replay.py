"""Deterministic, exactly-once replay of logged mutations into a gateway.

The log (:mod:`repro.serving.wal.log`) gives mutations durability and an
order; this module gives them *semantics*: :func:`apply_record` turns
one record back into the gateway call it describes, and
:class:`MutationReplayer` wraps a gateway with an **applied-seqno
high-water mark** so that at-least-once delivery (log shipping retries,
catch-up overlap, duplicated batches) becomes exactly-once application:

* a record at or below the high-water mark is a counted no-op;
* the record just above it is applied and advances the mark;
* a record further ahead raises :class:`WalGapError` — the caller is
  missing history and must catch up before applying (the follower side
  of the shipper does exactly that).

Replay is deterministic because the gateways are: ``fold_in`` assigns
``service.n_users`` as the new id and ``add_ratings`` is a fixed
sequence of float operations, so two replicas applying the same record
sequence from the same snapshot produce bit-identical factor rows.  The
assigned fold-in id is recorded at commit time and checked on every
replay — an id mismatch means the replica diverged *before* this
record, and :class:`WalDivergenceError` makes that loud instead of
letting the fleet drift.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.obs.trace import annotate_active
from repro.serving.wal.log import WalError, WalRecord
from repro.utils.validation import ValidationError

__all__ = ["WalGapError", "WalDivergenceError", "validate_mutation",
           "mutation_record_payload", "apply_record", "MutationReplayer"]


class WalGapError(WalError):
    """A record arrived ahead of the high-water mark: history is missing."""

    def __init__(self, expected: int, got: int):
        super().__init__(
            f"record seqno {got} arrived with high-water mark expecting "
            f"{expected}: catch up before applying")
        self.expected = expected
        self.got = got


class WalDivergenceError(WalError):
    """Replay produced a different result than the leader recorded."""


def validate_mutation(service, kind: str, payload: Dict[str, object]) -> None:
    """Reject a mutation that could not be applied, *before* it is logged.

    The leader runs this ahead of the append so the log only ever holds
    applicable records — replay can then treat an application failure as
    a programming error instead of a client one.  Raises
    :class:`~repro.utils.validation.ValidationError` (or ``KeyError``/
    ``TypeError``/``ValueError`` for malformed payloads, matching the
    executor's error surface).
    """
    from repro.serving.service import check_item_range

    items = np.asarray(payload["items"], dtype=np.int64).ravel()
    values = np.asarray(payload["values"], dtype=np.float64).ravel()
    if items.shape != values.shape:
        raise ValidationError("items and values must align")
    check_item_range(items, service.n_items)
    if kind == "rate":
        user = int(payload["user"])
        if not service.n_train_users <= user < service.n_users:
            raise ValidationError(
                f"add_ratings only applies to folded-in users "
                f"[{service.n_train_users}, {service.n_users}), got {user}")
    elif kind != "foldin":
        raise ValidationError(f"unknown mutation kind {kind!r}")


def mutation_record_payload(service, kind: str,
                            payload: Dict[str, object],
                            write_id: Optional[str] = None
                            ) -> Dict[str, object]:
    """The log-record payload for one validated mutation request.

    Values go in as plain Python floats/ints (JSON round-trips IEEE
    doubles exactly, so replay applies bit-identical numbers).  For
    ``foldin`` the id the gateway *will* assign — ``service.n_users`` at
    this point in the mutation order — is recorded so every replay can
    verify it assigns the same one.
    """
    items = [int(item) for item in np.asarray(payload["items"]).ravel()]
    values = [float(value) for value in np.asarray(payload["values"]).ravel()]
    record: Dict[str, object] = {"kind": kind, "items": items,
                                 "values": values}
    if kind == "rate":
        record["user"] = int(payload["user"])
    else:
        record["user"] = int(service.n_users)
    if write_id is not None:
        record["write_id"] = str(write_id)
    return record


def apply_record(service, payload: Dict[str, object]) -> Dict[str, object]:
    """Apply one record payload to a gateway; returns the ack payload.

    Deterministic by construction (see module docstring).  Raises
    :class:`WalDivergenceError` when a ``foldin`` lands on a different
    user id than the leader recorded.
    """
    kind = payload["kind"]
    items = np.asarray(payload["items"], dtype=np.int64)
    values = np.asarray(payload["values"], dtype=np.float64)
    if kind == "rate":
        user = int(payload["user"])
        service.add_ratings(user, items, values)
        return {"user": user}
    if kind == "foldin":
        assigned = int(service.fold_in(items, values))
        recorded = payload.get("user")
        if recorded is not None and int(recorded) != assigned:
            raise WalDivergenceError(
                f"replayed foldin assigned user {assigned}, leader "
                f"recorded {recorded}: this replica diverged earlier")
        return {"user": assigned}
    raise WalError(f"unknown mutation kind {kind!r} in the log")


class MutationReplayer:
    """Exactly-once application of an at-least-once record stream.

    Wraps one gateway with the applied-seqno high-water mark and the
    counters the observability surface reports (``replayed``,
    ``duplicates_skipped``).
    """

    def __init__(self, service):
        self.service = service
        self.applied_seqno = 0
        self.n_replayed = 0
        self.n_duplicates_skipped = 0

    def apply(self, record: WalRecord) -> Optional[Dict[str, object]]:
        """Apply one record exactly once.

        Returns the ack payload when the record was applied, ``None``
        when it was a duplicate (already at or below the high-water
        mark).  Raises :class:`WalGapError` when records are missing in
        between — nothing is applied in that case.
        """
        if record.seqno <= self.applied_seqno:
            self.n_duplicates_skipped += 1
            return None
        if record.seqno != self.applied_seqno + 1:
            raise WalGapError(self.applied_seqno + 1, record.seqno)
        ack = apply_record(self.service, record.payload)
        self.applied_seqno = record.seqno
        self.n_replayed += 1
        # A traced commit/apply (wal.commit or wal.follower_apply span
        # active on this thread) records which seqnos it replayed.
        annotate_active("replayed_seqno", record.seqno)
        return ack

    def apply_all(self, records: Iterable[WalRecord]) -> int:
        """Apply a record batch in order; returns how many were applied."""
        applied = 0
        for record in records:
            if self.apply(record) is not None:
                applied += 1
        return applied

    def stats(self) -> Dict[str, int]:
        return {
            "applied_seqno": self.applied_seqno,
            "replayed": self.n_replayed,
            "duplicates_skipped": self.n_duplicates_skipped,
        }
