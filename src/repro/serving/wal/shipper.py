"""Log shipping: one write leader, N converging followers.

The replication layer between the durable log (:mod:`.log`) and the
serving fleet (:class:`~repro.serving.net.replica.ReplicaSet`):

* :class:`LeaderCoordinator` owns the :class:`WriteAheadLog`.  A
  mutation committed through it is validated, appended (durably, per
  the log's ``sync_every``), applied to the leader's own gateway, then
  fanned out to every follower as a ``wal_append`` frame over the
  existing framed RPC — only then is the ack (carrying the assigned
  seqno) returned, so an acked write is durable *and* readable on every
  live replica (read-your-writes across the fleet).
* :class:`FollowerCoordinator` applies shipped records through a
  :class:`MutationReplayer` (duplicates are counted no-ops), forwards
  any mutation a client sent *it* to the leader, and closes gaps by
  pulling ``wal_catchup`` batches — on spawn, on reconnect after missed
  shipments, whenever a record arrives ahead of its high-water mark.

Exactly-once has two independent layers: the replayer's seqno
high-water mark makes at-least-once *shipping* apply once, and the
leader's ``write_id`` dedup table makes at-least-once *client retries*
apply once — a retried mutation whose first attempt was actually
committed gets the original ack back, byte for byte.  The dedup table
is rebuilt from the log on recovery, so retries spanning a leader
restart stay exactly-once too.

Threading contract (deadlock-freedom): the leader's ``commit`` and the
follower's ``receive`` both run on their server's single gateway
executor (mutations serialize with reads).  A follower *forwards* on a
dedicated I/O thread so its gateway executor stays free to apply the
leader's resulting shipment, and the leader serves ``wal_catchup``
from a dedicated I/O executor (it reads only immutable log records) so
a follower can catch up while the leader is mid-commit.
"""

from __future__ import annotations

import collections
import secrets
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import (NULL_SPAN, Span, TraceContext, Tracer,
                             maybe_span)
from repro.serving.net.backoff import Backoff
from repro.serving.net.protocol import (
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    hello_frame,
)
from repro.serving.wal.log import (
    WalError,
    WalRecord,
    WalWriteError,
    WriteAheadLog,
)
from repro.serving.wal.replay import (
    MutationReplayer,
    WalDivergenceError,
    WalGapError,
    mutation_record_payload,
    validate_mutation,
)

__all__ = ["LeaderCoordinator", "FollowerCoordinator", "WalUnavailableError",
           "MUTATION_KINDS", "CATCHUP_BATCH"]

#: Request kinds the coordinators own (routed before the plain executor).
MUTATION_KINDS = frozenset({"rate", "foldin"})

#: Records per ``wal_catchup`` reply (and the follower's pull size).
CATCHUP_BATCH = 256

#: Client-retry dedup entries the leader retains (LRU).
DEDUP_CAPACITY = 65536

_READ_CHUNK = 1 << 16


class _TraceMixin:
    """Trace plumbing shared by both coordinators.

    Trace context rides coordinator payloads under the reserved
    ``"trace"`` key (the server stamps its admission span before
    routing here); it is always *popped* before the payload flows into
    validation or the durable record, so the log bytes stay identical
    with tracing on or off.
    """

    _tracer: Optional[Tracer]

    def _trace_context(self,
                       payload: Dict[str, object]
                       ) -> Optional[TraceContext]:
        value = payload.pop("trace", None)
        if self._tracer is None:
            return None
        return TraceContext.from_wire(value)

    def _span(self, name: str, ctx: Optional[TraceContext], **attrs):
        if self._tracer is None or ctx is None:
            return NULL_SPAN
        return self._tracer.start(name, parent=ctx, attrs=attrs)


class WalUnavailableError(WalError):
    """The write path is down (leader unreachable / not wired yet)."""


class _WalLink:
    """One blocking framed-RPC connection for coordinator traffic.

    JSON payload encoding only — log records are JSON scalars already,
    and Python's JSON round-trips IEEE doubles exactly, so replicated
    values stay bit-identical without the binary negotiation.  Each link
    is used from exactly one thread (see the module threading contract);
    reconnects happen on demand.
    """

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0):
        self.address = (str(address[0]), int(address[1]))
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._frames: collections.deque = collections.deque()

    def _ensure(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._decoder = FrameDecoder()
        self._frames.clear()
        try:
            reply = self.request(hello_frame(("json",)))
        except BaseException:
            self.close()
            raise
        if reply.is_error:
            self.close()
            raise WalUnavailableError(
                f"replica {self.address} refused the wal handshake: "
                f"{reply.payload.get('message')}")
        return sock

    def request(self, frame: Frame) -> Frame:
        """One round-trip; a broken cached socket is dropped and — when
        the frame is safe to replay — retried once on a fresh connection.

        Safe to replay: ``wal_append``/``wal_catchup`` (idempotent via
        the replayer's high-water mark) and mutations carrying a
        ``write_id`` (the leader dedups).  This is what lets a follower
        heal through a leader restart: the first request after the
        restart always hits the stale pre-restart socket.
        """
        stale = self._sock is not None
        try:
            return self._roundtrip(frame)
        except (OSError, ConnectionError, ProtocolError):
            self.close()
            replayable = frame.kind in ("wal_append", "wal_catchup") \
                or "write_id" in frame.payload
            if frame.kind == "hello" or not stale or not replayable:
                raise
            return self._roundtrip(frame)

    def _roundtrip(self, frame: Frame) -> Frame:
        sock = self._ensure() if frame.kind != "hello" else self._sock
        sock.sendall(encode_frame(frame))
        while not self._frames:
            data = sock.recv(_READ_CHUNK)
            if not data:
                raise ConnectionError("peer closed the wal link")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.popleft()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None


def _record_wire(record: WalRecord) -> Dict[str, object]:
    return {"seqno": int(record.seqno), "payload": dict(record.payload)}


def _record_from_wire(entry: Dict[str, object]) -> WalRecord:
    return WalRecord(seqno=int(entry["seqno"]),
                     payload=dict(entry["payload"]))


class _FollowerLink:
    """A leader-side shipping target with exponential failure backoff.

    Consecutive shipment failures double the skip window (capped,
    jittered — the shared :class:`Backoff` policy), so a down follower
    stops costing the commit path a connect-timeout per write; the first
    successful shipment resets it.  ``applied_seqno`` remembers the
    follower's acked high-water mark from its last shipment reply — the
    leader's view of that follower's replication lag.
    """

    def __init__(self, address: Tuple[str, int], timeout: float,
                 backoff: Backoff):
        self.link = _WalLink(address, timeout=timeout)
        self.backoff = backoff
        self.failures = 0
        self.dead_until = 0.0
        self.applied_seqno = 0

    @property
    def shippable(self) -> bool:
        return time.monotonic() >= self.dead_until

    def mark_alive(self) -> None:
        self.failures = 0
        self.dead_until = 0.0

    def mark_dead(self) -> None:
        self.link.close()
        self.failures += 1
        self.dead_until = (time.monotonic()
                           + self.backoff.delay(self.failures))


class LeaderCoordinator(_TraceMixin):
    """The write leader: durable append, local apply, fan-out (see module).

    Parameters
    ----------
    service:
        The leader's own gateway; recovery replays the log into it.
    log:
        The (possibly freshly recovered) :class:`WriteAheadLog`.  The
        coordinator owns it from here on and closes it with itself.
    ship_timeout, ship_cooldown:
        Per-follower socket timeout and the *base* skip window after a
        failed shipment (it self-heals any gap by catch-up once shipping
        resumes).
    ship_backoff_max, ship_backoff_seed:
        Cap and jitter seed for the per-follower exponential backoff:
        consecutive failures double the skip window from ``ship_cooldown``
        up to ``ship_backoff_max``.  Seeding makes the jitter sequence
        reproducible for the chaos drills.
    """

    role = "leader"

    def __init__(self, service, log: WriteAheadLog,
                 ship_timeout: float = 10.0, ship_cooldown: float = 1.0,
                 ship_backoff_max: float = 30.0,
                 ship_backoff_seed: Optional[int] = None,
                 tracer: Optional[Tracer] = None):
        self.service = service
        self.log = log
        self._tracer = tracer
        self.replayer = MutationReplayer(service)
        self.instance = secrets.token_hex(4)
        self._followers: Dict[Tuple[str, int], _FollowerLink] = {}
        self._ship_timeout = float(ship_timeout)
        self._ship_cooldown = float(ship_cooldown)
        self._ship_backoff_max = max(float(ship_backoff_max),
                                     float(ship_cooldown))
        self._ship_backoff_seed = ship_backoff_seed
        self._dedup: "collections.OrderedDict[str, Dict[str, object]]" = \
            collections.OrderedDict()
        self.n_shipped = 0
        self.n_ship_failures = 0
        self.n_dedup_hits = 0
        self.n_catchup_batches_served = 0
        self.last_ship_error: Optional[str] = None
        self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Replay the recovered log into the gateway; rebuild client dedup."""
        for record in self.log.records():
            ack = self.replayer.apply(record)
            write_id = record.payload.get("write_id")
            if ack is not None and write_id is not None:
                ack = dict(ack)
                ack["seqno"] = record.seqno
                self._remember(str(write_id), ack)

    def _remember(self, write_id: str, ack: Dict[str, object]) -> None:
        self._dedup[write_id] = ack
        while len(self._dedup) > DEDUP_CAPACITY:
            self._dedup.popitem(last=False)

    # -- membership --------------------------------------------------------

    def set_followers(self, addresses: List[Tuple[str, int]]) -> None:
        """Replace the shipping target list (ReplicaSet wiring/rewiring)."""
        wanted = {(str(host), int(port)) for host, port in addresses}
        for address in list(self._followers):
            if address not in wanted:
                self._followers.pop(address).link.close()
        for address in wanted:
            if address not in self._followers:
                # Each follower gets its own Backoff so one flapping
                # target does not advance another's jitter stream; the
                # port keeps seeded runs deterministic per follower.
                seed = self._ship_backoff_seed
                if seed is not None:
                    seed = int(seed) + int(address[1])
                self._followers[address] = _FollowerLink(
                    address, self._ship_timeout,
                    Backoff(base=self._ship_cooldown,
                            cap=self._ship_backoff_max, seed=seed))

    # -- the write path ----------------------------------------------------

    def handle_mutation(self, kind: str,
                        payload: Dict[str, object]) -> Dict[str, object]:
        """Commit one mutation: validate → append → apply → ship → ack.

        A traced commit (the payload carries trace context) runs inside
        an activated ``wal.commit`` span, so the log's append/fsync
        spans and the shipping span attach as its children.
        """
        ctx = self._trace_context(payload)
        with self._span("wal.commit", ctx, kind=kind) as span:
            write_id = payload.get("write_id")
            if write_id is not None:
                cached = self._dedup.get(str(write_id))
                if cached is not None:
                    self.n_dedup_hits += 1
                    span.set_attr("dedup_hit", True)
                    return dict(cached)
            validate_mutation(self.service, kind, payload)
            record_payload = mutation_record_payload(
                self.service, kind, payload,
                str(write_id) if write_id is not None else None)
            seqno = self.log.append(record_payload)
            record = WalRecord(seqno=seqno, payload=record_payload)
            ack = self.replayer.apply(record)
            assert ack is not None  # fresh seqno, never a duplicate
            ack["seqno"] = seqno
            span.set_attr("seqno", seqno)
            self._ship(record)
            if write_id is not None:
                self._remember(str(write_id), dict(ack))
            return ack

    def _ship(self, record: WalRecord) -> None:
        """Fan one record out to every shippable follower.

        A failed follower goes on cooldown instead of failing the
        commit — it reconverges by catch-up (the seqno gap it sees on
        the next successful shipment triggers the pull).
        """
        ship_span = maybe_span("wal.ship", seqno=record.seqno,
                               followers=len(self._followers))
        payload = {"records": [_record_wire(record)],
                   "leader_hwm": self.log.high_seqno,
                   "leader_instance": self.instance}
        if isinstance(ship_span, Span):
            # The shipment carries the ship span's context, so the
            # follower's apply joins the same trace across the wire.
            payload["trace"] = ship_span.context().to_wire()
        with ship_span:
            self._ship_payload(payload)

    def _ship_payload(self, payload: Dict[str, object]) -> None:
        for follower in self._followers.values():
            if not follower.shippable:
                self.n_ship_failures += 1
                continue
            try:
                reply = follower.link.request(Frame("wal_append", payload))
                if reply.is_error:
                    raise WalError(str(reply.payload.get("message")))
                self.n_shipped += 1
                follower.mark_alive()
                follower.applied_seqno = int(
                    reply.payload.get("applied", follower.applied_seqno))
            except (OSError, ConnectionError, ProtocolError,
                    WalError) as error:
                follower.mark_dead()
                self.n_ship_failures += 1
                self.last_ship_error = repr(error)

    # -- serving catch-up --------------------------------------------------

    def handle_wal_catchup(self,
                           payload: Dict[str, object]) -> Dict[str, object]:
        """One catch-up batch.  Reads only immutable, already-appended
        records, so it may run concurrently with a commit (the follower
        simply re-pulls anything it races past)."""
        start = int(payload.get("from", 1))
        limit = min(int(payload.get("limit", CATCHUP_BATCH)), CATCHUP_BATCH)
        records = self.log.read_range(start, max(1, limit))
        self.n_catchup_batches_served += 1
        return {"records": [_record_wire(record) for record in records],
                "high_seqno": self.log.high_seqno,
                "leader_instance": self.instance}

    def handle_wal_append(self, payload) -> Dict[str, object]:
        raise WalError("the leader does not accept shipped records")

    # -- lifecycle / observability ----------------------------------------

    def close(self) -> None:
        for follower in self._followers.values():
            follower.link.close()
        self._followers.clear()
        self.log.close()

    def stats(self) -> Dict[str, object]:
        log_stats = self.log.stats()
        replay_stats = self.replayer.stats()
        # Replication lag as the leader sees it: its own high seqno minus
        # each follower's last-acked applied seqno.  A follower that has
        # never acked reads as fully lagged — which is the truth.
        follower_applied = {
            f"{host}:{port}": follower.applied_seqno
            for (host, port), follower in self._followers.items()}
        high = log_stats["high_seqno"]
        max_lag = max((high - applied
                       for applied in follower_applied.values()),
                      default=0)
        return {
            "role": "leader",
            "appended": log_stats["appended"],
            "high_seqno": log_stats["high_seqno"],
            "applied_seqno": replay_stats["applied_seqno"],
            "replayed": replay_stats["replayed"],
            "duplicates_skipped": replay_stats["duplicates_skipped"],
            "recovered": log_stats["recovered"],
            "catchup_batches": self.n_catchup_batches_served,
            "shipped": self.n_shipped,
            "ship_failures": self.n_ship_failures,
            "dedup_hits": self.n_dedup_hits,
            "followers": len(self._followers),
            "follower_applied": follower_applied,
            "max_follower_lag": max_lag,
            "log": log_stats,
        }


class FollowerCoordinator(_TraceMixin):
    """A follower: apply shipments, forward writes, pull catch-up batches."""

    role = "follower"

    def __init__(self, service, leader_address: Tuple[str, int],
                 timeout: float = 10.0, tracer: Optional[Tracer] = None):
        self.service = service
        self._tracer = tracer
        self.leader_address = (str(leader_address[0]),
                               int(leader_address[1]))
        self.replayer = MutationReplayer(service)
        # Two links on purpose: forwarding runs on the dedicated forward
        # thread while catch-up runs on the gateway executor — one
        # socket shared across threads would interleave frames.
        self._forward_link = _WalLink(self.leader_address, timeout=timeout)
        self._catchup_link = _WalLink(self.leader_address, timeout=timeout)
        self._forward_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-wal-forward")
        self._leader_instance: Optional[str] = None
        #: Highest leader seqno this follower has *heard of* (from
        #: shipment and catch-up headers) — the reference point for its
        #: own replication lag.
        self.leader_hwm = 0
        self.n_forwarded = 0
        self.n_forward_failures = 0
        self.n_catchup_batches = 0

    # -- the write path (forwarding) ---------------------------------------

    @property
    def forward_pool(self) -> ThreadPoolExecutor:
        """Run :meth:`handle_mutation` here, never on the gateway
        executor: forwarding blocks on the leader, whose resulting
        shipment needs this replica's gateway executor to apply."""
        return self._forward_pool

    def handle_mutation(self, kind: str,
                        payload: Dict[str, object]) -> Dict[str, object]:
        """Forward one mutation to the leader; relay its ack or error."""
        ctx = self._trace_context(payload)
        with self._span("wal.forward", ctx, kind=kind) as span:
            forwarded = {key: value for key, value in payload.items()
                         if key != "id"}
            if isinstance(span, Span):
                # The leader's commit span joins this trace.
                forwarded["trace"] = span.context().to_wire()
            frame = Frame(kind, forwarded)
            try:
                reply = self._forward_link.request(frame)
            except (OSError, ConnectionError, ProtocolError) as error:
                self._forward_link.close()
                self.n_forward_failures += 1
                raise WalUnavailableError(
                    f"write leader {self.leader_address} unreachable "
                    f"({error!r}); the write was not applied here — "
                    "retry (mutations carry a write_id, so a retry is "
                    "exactly-once)") from error
            self.n_forwarded += 1
            if reply.is_error:
                message = str(reply.payload.get("message"))
                if reply.payload.get("retryable"):
                    # The leader said the write was NOT applied (e.g.
                    # the append rolled itself back): keep that
                    # retryability when relaying, or the client would
                    # treat an injected disk fault as a definitive
                    # domain error.
                    raise WalWriteError(message)
                raise WalError(message)
            return dict(reply.payload)

    # -- the replication path ----------------------------------------------

    def _check_instance(self, payload: Dict[str, object],
                        leader_hwm: int) -> None:
        instance = payload.get("leader_instance")
        if instance is None:
            return
        if self._leader_instance is None:
            self._leader_instance = str(instance)
            return
        if str(instance) != self._leader_instance:
            self._leader_instance = str(instance)
            if leader_hwm < self.replayer.applied_seqno:
                # A restarted leader with *less* history than we applied
                # (an in-memory log died with it): silently rewinding
                # would diverge the fleet — fail loudly instead.
                raise WalDivergenceError(
                    f"leader restarted with high seqno {leader_hwm} below "
                    f"this replica's applied seqno "
                    f"{self.replayer.applied_seqno}; a non-durable log was "
                    "lost — restart this replica from the snapshot")

    def handle_wal_append(self,
                          payload: Dict[str, object]) -> Dict[str, object]:
        """Apply one shipped batch; close any gap by catching up first."""
        ctx = self._trace_context(payload)
        with self._span("wal.follower_apply", ctx) as span:
            leader_hwm = int(payload.get("leader_hwm", 0))
            self._check_instance(payload, leader_hwm)
            self.leader_hwm = max(self.leader_hwm, leader_hwm)
            for entry in payload.get("records", ()):
                record = _record_from_wire(entry)
                try:
                    self.replayer.apply(record)
                except WalGapError:
                    self.catch_up(up_to=record.seqno - 1)
                    self.replayer.apply(record)  # duplicate-safe by now
            span.set_attr("applied", self.replayer.applied_seqno)
            return {"applied": self.replayer.applied_seqno}

    def catch_up(self, up_to: Optional[int] = None) -> int:
        """Pull records from the leader until the gap is closed.

        Pulls batches starting at the high-water mark until the leader
        reports nothing newer (or ``up_to`` is reached).  Returns how
        many records were applied.  Runs on the gateway executor —
        callers already hold it (``receive``) or request it
        (ReplicaSet wiring) — so application serializes with reads.
        """
        applied = 0
        while True:
            start = self.replayer.applied_seqno + 1
            if up_to is not None and start > up_to:
                return applied
            try:
                reply = self._catchup_link.request(Frame("wal_catchup", {
                    "from": start, "limit": CATCHUP_BATCH}))
            except (OSError, ConnectionError, ProtocolError) as error:
                self._catchup_link.close()
                raise WalUnavailableError(
                    f"catch-up from leader {self.leader_address} failed "
                    f"({error!r})") from error
            if reply.is_error:
                raise WalError(str(reply.payload.get("message")))
            high_seqno = int(reply.payload.get("high_seqno", 0))
            self._check_instance(reply.payload, high_seqno)
            self.leader_hwm = max(self.leader_hwm, high_seqno)
            records = [_record_from_wire(entry)
                       for entry in reply.payload.get("records", ())]
            applied += self.replayer.apply_all(records)
            self.n_catchup_batches += 1
            high = high_seqno
            if not records or self.replayer.applied_seqno >= \
                    (min(high, up_to) if up_to is not None else high):
                return applied

    def handle_wal_catchup(self, payload) -> Dict[str, object]:
        raise WalError("catch-up is served by the leader")

    # -- lifecycle / observability ----------------------------------------

    def close(self) -> None:
        self._forward_pool.shutdown(wait=False, cancel_futures=True)
        self._forward_link.close()
        self._catchup_link.close()

    def stats(self) -> Dict[str, object]:
        replay_stats = self.replayer.stats()
        applied = replay_stats["applied_seqno"]
        return {
            "role": "follower",
            "applied_seqno": applied,
            "replayed": replay_stats["replayed"],
            "duplicates_skipped": replay_stats["duplicates_skipped"],
            "catchup_batches": self.n_catchup_batches,
            "forwarded": self.n_forwarded,
            "forward_failures": self.n_forward_failures,
            "leader": list(self.leader_address),
            "leader_hwm": self.leader_hwm,
            "lag": max(0, self.leader_hwm - applied),
        }
