"""Append-only segment-file write-ahead log for serving mutations.

:class:`WriteAheadLog` is the durability substrate under the replicated
serving fleet: every ``rate``/``foldin`` mutation the write leader acks
is first appended here as a CRC-checked, length-prefixed record with a
monotonic sequence number.  The design goals, in order:

* **An acked write survives a crash.**  Appends hit the OS immediately
  and ``fsync`` according to ``sync_every`` (``1`` = fsync before every
  append returns — the strict default; ``N`` batches the syncs, trading
  the tail of unsynced records on a *power* failure for throughput — a
  process crash alone loses nothing either way).
* **A torn tail is not corruption.**  A crash mid-append leaves a
  truncated or CRC-broken final record; recovery truncates the segment
  back to the last whole record and carries on.  Such a record was by
  construction never acked (acks follow the append), so nothing
  acknowledged is lost.  A broken record *followed by valid data* — or
  any damage in a non-final segment — cannot be explained by a torn
  append and raises :class:`WalCorruptionError` instead of silently
  dropping acked writes.
* **Replay is exact.**  Record payloads are JSON (Python's JSON
  round-trips IEEE doubles exactly), so replaying a record applies
  bit-identical floats to what the leader applied live.

Wire format of one record (integers big-endian)::

    +----------+---------+---------+------------------+
    | length   | crc32   | seqno   | payload          |
    | u32      | u32     | u64     | length bytes     |
    +----------+---------+---------+------------------+

``crc32`` covers the seqno bytes plus the payload, so a record that was
relocated or half-written never validates.  Segments are named by the
seqno of their first record (``wal-<seqno>.seg``); rotation starts a new
segment once the current one passes ``segment_bytes``, and
:meth:`compact` drops whole segments that fall entirely below a caller-
supplied retain point (e.g. once a published snapshot covers them).

``directory=None`` gives the same API over an in-process list — the
replication machinery uses it when no ``--wal DIR`` is configured:
shipping and exactly-once replay still work, only crash durability is
gone.
"""

from __future__ import annotations

import json
import os
import re
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.obs.trace import maybe_span

__all__ = ["WalRecord", "WriteAheadLog", "WalError", "WalCorruptionError",
           "WalWriteError"]

_RECORD_HEADER = struct.Struct(">IIQ")
_SEGMENT_RE = re.compile(r"^wal-(\d{20})\.seg$")

#: Record payloads above this are refused at append time (a mutation
#: frame is tiny; anything near this is a caller bug, not a big write).
MAX_RECORD_PAYLOAD = 8 * 1024 * 1024


class WalError(RuntimeError):
    """A write-ahead-log operation failed."""


class WalCorruptionError(WalError):
    """Damage recovery must not repair silently: a broken record in the
    *interior* of the log (valid data follows it), where truncating
    would drop acknowledged writes."""


class WalWriteError(WalError):
    """An append failed *before* the record became part of the log.

    The contract that makes this retryable: whenever it is raised the
    log's on-disk bytes and in-memory record list are exactly as they
    were before the append — no record, no seqno, no partial bytes — so
    the mutation was never applied and the server surfaces the refusal
    as a retryable error frame.  Raised by the injected filesystem
    faults (ENOSPC / torn write / fsync failure); a real ``OSError``
    from the filesystem still propagates as itself, because then the
    no-partial-state promise cannot be made."""


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation: its sequence number and JSON-able payload."""

    seqno: int
    payload: Dict[str, object]


def _encode_record(seqno: int, payload: Dict[str, object]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf8")
    if len(body) > MAX_RECORD_PAYLOAD:
        raise WalError(
            f"record payload of {len(body)} bytes exceeds the "
            f"{MAX_RECORD_PAYLOAD}-byte record limit")
    seqno_bytes = struct.pack(">Q", seqno)
    crc = zlib.crc32(seqno_bytes + body) & 0xFFFFFFFF
    return _RECORD_HEADER.pack(len(body), crc, seqno) + body


def _segment_name(seqno: int) -> str:
    return f"wal-{seqno:020d}.seg"


class WriteAheadLog:
    """Durable, sequence-numbered mutation log (see module docstring).

    Parameters
    ----------
    directory:
        Segment directory (created if missing); existing segments are
        recovered on open.  ``None`` keeps records in memory only.
    sync_every:
        fsync after every ``sync_every``-th append (``1`` = every
        append, the strict default).  :meth:`sync`, rotation and
        :meth:`close` always flush regardless.
    segment_bytes:
        Rotate to a new segment file once the current one reaches this
        size (checked before each append, so one oversized record never
        splits).
    fault_injector:
        Optional :class:`~repro.serving.chaos.FaultInjector` driving the
        ``wal.append`` (ENOSPC / torn write) and ``wal.fsync`` fault
        sites inside :meth:`append`.  ``None`` (default): no injection,
        no overhead.  An injected fault always rolls the segment back to
        its pre-append bytes and raises :class:`WalWriteError` — the
        torn-write case deliberately exercises the same code path a
        crash-plus-recovery would (partial bytes written, then removed
        before anything was acked).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        every fsync duration is observed into the
        ``wal.append.fsync_ms`` histogram (qualified by
        ``metrics_labels``, e.g. ``replica=0``).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 sync_every: int = 1, segment_bytes: int = 4 * 1024 * 1024,
                 fault_injector=None, registry=None,
                 metrics_labels: Optional[Dict[str, object]] = None):
        if sync_every < 1:
            raise WalError(f"sync_every must be >= 1, got {sync_every}")
        if segment_bytes < 1:
            raise WalError(
                f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory) if directory is not None else None
        self.sync_every = int(sync_every)
        self.segment_bytes = int(segment_bytes)
        self.fault_injector = fault_injector
        self._fsync_ms = None
        if registry is not None:
            self._fsync_ms = registry.histogram(
                "wal.append.fsync_ms", **(metrics_labels or {}))
        self.n_injected_faults = 0
        self._records: List[WalRecord] = []
        self._handle = None
        self._handle_path: Optional[Path] = None
        self._unsynced = 0
        self.n_appended = 0
        self.n_syncs = 0
        self.n_recovered = 0
        self.truncated_bytes = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._recover()

    # -- recovery ----------------------------------------------------------

    def _segment_paths(self) -> List[Path]:
        assert self.directory is not None
        paths = [path for path in self.directory.iterdir()
                 if _SEGMENT_RE.match(path.name)]
        return sorted(paths, key=lambda path: path.name)

    def _recover(self) -> None:
        """Scan every segment; truncate a torn tail, refuse interior damage."""
        paths = self._segment_paths()
        expected: Optional[int] = None
        for position, path in enumerate(paths):
            is_last = position == len(paths) - 1
            raw = path.read_bytes()
            base = int(_SEGMENT_RE.match(path.name).group(1))
            if expected is None:
                expected = base  # compaction may have dropped the prefix
            elif base != expected:
                raise WalCorruptionError(
                    f"segment {path.name} starts at seqno {base}, "
                    f"expected {expected}: a segment is missing")
            offset = 0
            while offset < len(raw):
                record, end = self._parse_record(raw, offset, expected)
                if record is None:
                    # Broken record: a torn tail only if nothing but this
                    # damage stands between us and the end of the log.
                    if not is_last:
                        raise WalCorruptionError(
                            f"broken record at offset {offset} of "
                            f"non-final segment {path.name}")
                    if self._valid_record_follows(raw, offset, expected):
                        raise WalCorruptionError(
                            f"broken record at offset {offset} of "
                            f"{path.name} with valid records after it: "
                            "interior damage, not a torn append — "
                            "truncating would drop acknowledged writes")
                    self.truncated_bytes += len(raw) - offset
                    with open(path, "r+b") as handle:
                        handle.truncate(offset)
                        handle.flush()
                        os.fsync(handle.fileno())
                    break
                self._records.append(record)
                expected += 1
                offset = end
        self.n_recovered = len(self._records)

    @staticmethod
    def _valid_record_follows(raw: bytes, offset: int,
                              broken_seqno: int) -> bool:
        """Does any CRC-valid record with a later seqno start after the
        break?  A torn append damages only the *final* record, so valid
        data beyond the damage proves this is interior corruption.  A
        garbage window validating by chance is a 2^-32 event per probe.
        """
        probe = offset + 1
        while probe + _RECORD_HEADER.size <= len(raw):
            length, crc, seqno = _RECORD_HEADER.unpack_from(raw, probe)
            end = probe + _RECORD_HEADER.size + length
            if (length <= MAX_RECORD_PAYLOAD and end <= len(raw)
                    and seqno > broken_seqno
                    and zlib.crc32(
                        struct.pack(">Q", seqno)
                        + raw[probe + _RECORD_HEADER.size:end])
                    & 0xFFFFFFFF == crc):
                return True
            probe += 1
        return False

    @staticmethod
    def _parse_record(raw: bytes, offset: int,
                      expected_seqno: int) -> tuple:
        """``(record, end_offset)`` or ``(None, offset)`` when broken."""
        if offset + _RECORD_HEADER.size > len(raw):
            return None, offset
        length, crc, seqno = _RECORD_HEADER.unpack_from(raw, offset)
        end = offset + _RECORD_HEADER.size + length
        if length > MAX_RECORD_PAYLOAD or end > len(raw):
            return None, offset
        body = raw[offset + _RECORD_HEADER.size:end]
        if zlib.crc32(struct.pack(">Q", seqno) + body) & 0xFFFFFFFF != crc:
            return None, offset
        if seqno != expected_seqno:
            return None, offset
        try:
            payload = json.loads(body.decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, offset
        if not isinstance(payload, dict):
            return None, offset
        return WalRecord(seqno=seqno, payload=payload), end

    # -- appending ---------------------------------------------------------

    @property
    def high_seqno(self) -> int:
        """Sequence number of the newest record (``0`` when empty)."""
        return self._records[-1].seqno if self._records else 0

    def __len__(self) -> int:
        return len(self._records)

    def _open_segment(self, first_seqno: int) -> None:
        assert self.directory is not None
        self._close_handle()
        self._handle_path = self.directory / _segment_name(first_seqno)
        self._handle = open(self._handle_path, "ab")

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._flush_and_sync()
            self._handle.close()
            self._handle = None
            self._handle_path = None

    def _flush_and_sync(self) -> None:
        if self._handle is not None and self._unsynced:
            with maybe_span("wal.fsync", unsynced=self._unsynced):
                start = time.perf_counter()
                self._handle.flush()
                os.fsync(self._handle.fileno())
                elapsed_ms = (time.perf_counter() - start) * 1000.0
            if self._fsync_ms is not None:
                self._fsync_ms.observe(elapsed_ms)
            self.n_syncs += 1
        self._unsynced = 0

    def _rollback_bytes(self, offset: int) -> None:
        """Remove this append's partial bytes (injected-fault recovery).

        Leaves the segment exactly as before the append, so the live log
        stays self-consistent — an orphan half-record in the *interior*
        would read as corruption (not a torn tail) on the next recovery.
        """
        self._handle.flush()
        self._handle.truncate(offset)
        # truncate() leaves the file position past the new EOF; re-seek
        # so tell() keeps reporting real offsets (the next rollback's
        # truncate target) instead of phantom ones past the end.
        self._handle.seek(0, os.SEEK_END)
        os.fsync(self._handle.fileno())

    def _injected_append_fault(self) -> Optional[str]:
        if self.fault_injector is None:
            return None
        event = self.fault_injector.check("wal.append")
        return event.action if event is not None else None

    def append(self, payload: Dict[str, object]) -> int:
        """Durably append one record; returns its sequence number.

        The record is flushed to the OS before this returns; whether it
        is fsynced too depends on ``sync_every`` (see class docs).
        Inside a traced request (an active span on this thread) the
        append contributes ``wal.append`` / ``wal.fsync`` child spans;
        untraced, the cost is one thread-local read.
        """
        with maybe_span("wal.append") as span:
            seqno = self._append_record(payload)
            span.set_attr("seqno", seqno)
            return seqno

    def _append_record(self, payload: Dict[str, object]) -> int:
        seqno = self.high_seqno + 1
        encoded = _encode_record(seqno, payload)
        record = WalRecord(seqno=seqno, payload=json.loads(
            json.dumps(payload, separators=(",", ":"), sort_keys=True)))
        fault = self._injected_append_fault()
        if fault == "enospc":
            self.n_injected_faults += 1
            raise WalWriteError(
                f"injected ENOSPC: no space for record {seqno}")
        if fault == "torn" and self.directory is None:
            # No file to tear; the append still fails un-applied.
            self.n_injected_faults += 1
            raise WalWriteError(
                f"injected torn write: record {seqno} lost")
        if self.directory is not None:
            if (self._handle is not None
                    and self._handle.tell() >= self.segment_bytes):
                self._close_handle()
            if self._handle is None:
                self._open_segment(seqno)
            start = self._handle.tell()
            if fault == "torn":
                # Write a prefix of the record, then recover exactly as
                # a restart would: truncate the torn tail away.  One
                # step models crash-during-append plus recovery.
                self.n_injected_faults += 1
                self._handle.write(encoded[:max(1, len(encoded) // 2)])
                self._rollback_bytes(start)
                raise WalWriteError(
                    f"injected torn write: record {seqno} truncated "
                    "back out of the segment")
            self._handle.write(encoded)
            self._handle.flush()
            self._unsynced += 1
            if self._unsynced >= self.sync_every:
                if self.fault_injector is not None:
                    event = self.fault_injector.check("wal.fsync")
                    if event is not None and event.action == "fail":
                        # The record hit the OS but its durability sync
                        # failed; honour the WalWriteError contract by
                        # rolling the append back entirely.
                        self.n_injected_faults += 1
                        self._rollback_bytes(start)
                        self._unsynced -= 1
                        raise WalWriteError(
                            f"injected fsync failure: record {seqno} "
                            "rolled back")
                self._flush_and_sync()
        self._records.append(record)
        self.n_appended += 1
        return seqno

    def sync(self) -> None:
        """Force an fsync of any batched (unsynced) appends."""
        self._flush_and_sync()

    # -- reading -----------------------------------------------------------

    def records(self, start_seqno: int = 1) -> Iterator[WalRecord]:
        """All records with ``seqno >= start_seqno``, in order."""
        first = self._records[0].seqno if self._records else 1
        begin = max(0, int(start_seqno) - first)
        return iter(self._records[begin:])

    def read_range(self, start_seqno: int, limit: int) -> List[WalRecord]:
        """Up to ``limit`` records from ``start_seqno`` (catch-up batches)."""
        if limit < 1:
            raise WalError(f"limit must be >= 1, got {limit}")
        result = []
        for record in self.records(start_seqno):
            result.append(record)
            if len(result) >= limit:
                break
        return result

    # -- maintenance -------------------------------------------------------

    def compact(self, retain_from_seqno: int) -> int:
        """Drop whole segments whose records all precede ``retain_from_seqno``.

        Only call once something else (a published snapshot) durably
        covers the dropped range.  The active segment is never dropped.
        Returns the number of segment files removed.
        """
        if self.directory is None:
            before = len(self._records)
            self._records = [record for record in self._records
                             if record.seqno >= retain_from_seqno]
            return 1 if before != len(self._records) else 0
        paths = self._segment_paths()
        removed = 0
        for path, next_path in zip(paths, paths[1:]):
            next_base = int(_SEGMENT_RE.match(next_path.name).group(1))
            if next_base <= retain_from_seqno \
                    and path != self._handle_path:
                path.unlink()
                removed += 1
            else:
                break
        return removed

    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        self._close_handle()

    def stats(self) -> Dict[str, int]:
        """Counters for the observability surface (health/stats frames)."""
        return {
            "appended": self.n_appended,
            "syncs": self.n_syncs,
            "recovered": self.n_recovered,
            "truncated_bytes": self.truncated_bytes,
            "high_seqno": self.high_seqno,
            "durable": self.directory is not None,
            "sync_every": self.sync_every,
            "injected_faults": self.n_injected_faults,
        }

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
