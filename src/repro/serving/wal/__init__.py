"""Durable replicated mutation log for the serving fleet.

Three layers, bottom up:

* :mod:`.log` — :class:`WriteAheadLog`: append-only CRC-checked segment
  files with monotonic seqnos, fsync policy, rotation, compaction and
  torn-tail recovery.
* :mod:`.replay` — :class:`MutationReplayer`: deterministic, exactly-
  once application of logged ``rate``/``foldin`` records into a
  gateway via an applied-seqno high-water mark.
* :mod:`.shipper` — :class:`LeaderCoordinator` /
  :class:`FollowerCoordinator`: one write leader appends durably and
  fans records out over the framed RPC; followers apply, forward and
  catch up by seqno range.
"""

from repro.serving.wal.log import (
    WalCorruptionError,
    WalError,
    WalRecord,
    WriteAheadLog,
)
from repro.serving.wal.replay import (
    MutationReplayer,
    WalDivergenceError,
    WalGapError,
    apply_record,
    mutation_record_payload,
    validate_mutation,
)
from repro.serving.wal.shipper import (
    CATCHUP_BATCH,
    MUTATION_KINDS,
    FollowerCoordinator,
    LeaderCoordinator,
    WalUnavailableError,
)

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalError",
    "WalCorruptionError",
    "WalGapError",
    "WalDivergenceError",
    "WalUnavailableError",
    "MutationReplayer",
    "apply_record",
    "mutation_record_payload",
    "validate_mutation",
    "LeaderCoordinator",
    "FollowerCoordinator",
    "MUTATION_KINDS",
    "CATCHUP_BATCH",
]
