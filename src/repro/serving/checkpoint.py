"""Versioned posterior snapshots: the persistence layer of the serving stack.

A *snapshot* is everything needed to (a) answer prediction queries without
the training process — the last Gibbs sample, the running posterior-mean
factor accumulators and the rating offset — and (b) resume the chain
*exactly* where it stopped: the generator's bit-stream state, the
posterior-predictive accumulators and the RMSE traces.  A chain resumed
from a snapshot is bit-identical to one that never stopped (see
``tests/test_serving_checkpoint.py``).

Snapshots are single ``.npz`` archives with a format tag and a SHA-256
integrity checksum over every stored payload; a corrupted or truncated
snapshot fails to load instead of silently serving garbage.

:class:`CheckpointConfig` is the save-every-k-sweeps policy consumed by
``SamplerOptions.checkpoint`` (and its multicore/distributed counterparts).
Writes are atomic (write to a temporary sibling, then ``os.replace``), so a
crash mid-save never destroys the previous checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.batch_engine import COMPUTE_DTYPES
from repro.core.predict import FactorMeanAccumulator, PosteriorPredictor
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.state import BPMFState
from repro.utils.validation import ValidationError, check_in, check_positive

__all__ = [
    "SNAPSHOT_FORMAT",
    "CheckpointConfig",
    "Snapshot",
    "save_snapshot",
    "load_snapshot",
    "coerce_snapshot",
    "encode_rng_state",
    "restore_generator",
    "snapshot_from_result",
]

PathLike = Union[str, os.PathLike]

SNAPSHOT_FORMAT = "repro-snapshot-v1"

#: Config fields echoed into snapshots (enough to rebuild a ``BPMFConfig``
#: with default hyperpriors and to fold in new users at serving time).
_CONFIG_FIELDS = ("num_latent", "alpha", "burn_in", "n_samples", "beta0",
                  "init_std")


# ---------------------------------------------------------------------------
# RNG state round-tripping
# ---------------------------------------------------------------------------

def encode_rng_state_dict(state: dict) -> dict:
    """Normalise an rng-state dict so it is JSON-serializable.

    Bit-generator states mix plain ints with numpy arrays (``MT19937``
    keeps a ``(624,)`` uint32 key); arrays are tagged so
    :func:`restore_generator` can rebuild them exactly.  Idempotent, so an
    already-encoded dict passes through unchanged.
    """
    def convert(value):
        if isinstance(value, np.ndarray):
            return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, dict):
            return {key: convert(item) for key, item in value.items()}
        return value

    return convert(state)


def encode_rng_state(rng: np.random.Generator) -> dict:
    """Extract a JSON-serializable copy of a generator's bit-stream state."""
    return encode_rng_state_dict(rng.bit_generator.state)


def restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a generator whose bit stream continues from ``state``."""
    def convert(value):
        if isinstance(value, dict):
            if "__ndarray__" in value:
                return np.array(value["__ndarray__"], dtype=value["dtype"])
            return {key: convert(item) for key, item in value.items()}
        return value

    state = convert(state)
    name = state.get("bit_generator") if isinstance(state, dict) else None
    if not name or not hasattr(np.random, name):
        raise ValidationError(f"unknown bit generator in snapshot: {name!r}")
    bit_generator = getattr(np.random, name)()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ---------------------------------------------------------------------------
# checkpoint policy
# ---------------------------------------------------------------------------

@dataclass
class CheckpointConfig:
    """Save-every-k-sweeps checkpoint policy for the samplers.

    Parameters
    ----------
    path:
        Snapshot file (overwritten atomically on every save).
    every:
        Save after every ``every``-th completed sweep.  The final sweep is
        always saved regardless, so ``path`` ends up holding the finished
        run.
    offset:
        Rating offset recorded into each snapshot (the training mean a
        caller subtracted before sampling; 0 when ratings were not centred).
    dtype:
        Storage dtype of the factor-matrix payloads (``"float64"`` default,
        ``"float32"`` opt-in).  ``float32`` halves snapshot size and
        serving memory; resuming from such a snapshot continues a rounded
        chain, so it matches the uninterrupted run to single precision
        rather than bit-exactly.
    metadata:
        Free-form string metadata stored verbatim in each snapshot.
    """

    path: PathLike
    every: int = 1
    offset: float = 0.0
    dtype: str = "float64"
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        check_positive("every", self.every)
        check_in("dtype", self.dtype, COMPUTE_DTYPES)

    def due(self, iteration: int, total_iterations: int) -> bool:
        """Whether a save is due after completed sweep index ``iteration``."""
        return ((iteration + 1) % self.every == 0
                or iteration + 1 == total_iterations)


# ---------------------------------------------------------------------------
# the snapshot bundle
# ---------------------------------------------------------------------------

@dataclass
class Snapshot:
    """One persisted posterior snapshot (serving payload + resume state).

    Attributes
    ----------
    state:
        The last Gibbs sample (factors, resampled priors, sweep count).
    config:
        Echo of the scalar :class:`~repro.core.priors.BPMFConfig` fields
        the run used (``num_latent``, ``alpha``, ``burn_in``, ...).
    rng_state:
        JSON-serializable bit-generator state captured *after* the last
        completed sweep; ``None`` for snapshots built outside a sampler.
    mean_user_sum, mean_movie_sum, mean_count:
        Running posterior-mean factor accumulators (sums over the
        ``mean_count`` post-burn-in samples); ``None``/0 when the run never
        left burn-in.
    prediction_sum, prediction_count:
        The :class:`~repro.core.predict.PosteriorPredictor` accumulator for
        the training run's held-out cells (resume continues the running
        posterior-mean RMSE trace exactly).
    rmse_burn_in, rmse_per_sample, rmse_running_mean:
        RMSE traces up to the checkpointed sweep.
    items_updated:
        Cumulative item-update count (throughput bookkeeping).
    offset:
        Rating offset to add back at serving time.
    metadata:
        Free-form string metadata.
    """

    state: BPMFState
    config: Dict[str, float] = field(default_factory=dict)
    rng_state: Optional[dict] = None
    mean_user_sum: Optional[np.ndarray] = None
    mean_movie_sum: Optional[np.ndarray] = None
    mean_count: int = 0
    prediction_sum: Optional[np.ndarray] = None
    prediction_count: int = 0
    rmse_burn_in: List[float] = field(default_factory=list)
    rmse_per_sample: List[float] = field(default_factory=list)
    rmse_running_mean: List[float] = field(default_factory=list)
    items_updated: int = 0
    offset: float = 0.0
    metadata: Dict[str, str] = field(default_factory=dict)

    # -- derived views ----------------------------------------------------

    @property
    def iteration(self) -> int:
        """Number of completed Gibbs sweeps at save time."""
        return self.state.iteration

    def bpmf_config(self) -> BPMFConfig:
        """Rebuild the run's :class:`BPMFConfig` from the echoed fields.

        Only the scalar fields round-trip; custom Normal–Wishart
        hyperpriors are reconstructed as the defaults for the echoed
        ``num_latent``/``beta0``.
        """
        if not self.config:
            raise ValidationError("snapshot carries no config echo")
        integer = {"num_latent", "burn_in", "n_samples"}
        return BPMFConfig(**{
            key: int(self.config[key]) if key in integer else self.config[key]
            for key in _CONFIG_FIELDS if key in self.config})

    @property
    def alpha(self) -> float:
        """Observation precision the chain was trained with (fold-in needs it)."""
        return float(self.config.get("alpha", 2.0))

    def posterior_mean_state(self) -> BPMFState:
        """Posterior-mean factors as a state; falls back to the last sample.

        The fallback (no accumulated samples, e.g. a burn-in-only
        checkpoint) keeps single-snapshot serving usable either way.
        """
        if self.mean_count > 0 and self.mean_user_sum is not None:
            return BPMFState(
                user_factors=self.mean_user_sum / self.mean_count,
                movie_factors=self.mean_movie_sum / self.mean_count,
                user_prior=self.state.user_prior.copy(),
                movie_prior=self.state.movie_prior.copy(),
                iteration=self.state.iteration,
            )
        return self.state.copy()


def snapshot_from_result(result, rng: Optional[np.random.Generator] = None,
                         offset: float = 0.0,
                         metadata: Optional[Dict[str, str]] = None) -> Snapshot:
    """Build a :class:`Snapshot` from a finished ``BPMFResult``.

    Convenience for "train in memory, persist afterwards" workflows that
    never enabled in-run checkpointing.  Passing the run's generator makes
    the snapshot resumable.  The posterior-predictive accumulator is
    reconstructed as ``mean * count`` (the result only carries the mean),
    so a resume continues the running-mean RMSE trace to floating-point
    accuracy; for the strict bit-identical guarantee use in-run
    checkpointing (:class:`CheckpointConfig`), which saves the raw sums.
    """
    means = result.factor_means
    n_accumulated = len(result.rmse_per_sample)
    return Snapshot(
        state=result.state.copy(),
        config={key: float(getattr(result.config, key))
                for key in _CONFIG_FIELDS},
        rng_state=None if rng is None else encode_rng_state(rng),
        mean_user_sum=None if means is None else means.user_sum.copy(),
        mean_movie_sum=None if means is None else means.movie_sum.copy(),
        mean_count=0 if means is None else means.n_samples,
        prediction_sum=(result.predictions * n_accumulated
                        if n_accumulated else None),
        prediction_count=n_accumulated,
        items_updated=result.items_updated,
        rmse_burn_in=list(result.rmse_burn_in),
        rmse_per_sample=list(result.rmse_per_sample),
        rmse_running_mean=list(result.rmse_running_mean),
        offset=offset,
        metadata=dict(metadata or {}),
    )


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def _payload_checksum(payload: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every stored array, in sorted key order."""
    digest = hashlib.sha256()
    for key in sorted(payload):
        if key == "checksum":
            continue
        array = np.ascontiguousarray(payload[key])
        digest.update(key.encode("utf8"))
        digest.update(str(array.dtype).encode("utf8"))
        digest.update(str(array.shape).encode("utf8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_snapshot(snapshot: Snapshot, path: PathLike,
                  dtype: str = "float64") -> None:
    """Write ``snapshot`` to ``path`` atomically with integrity metadata.

    ``dtype`` selects the storage precision of the factor-matrix payloads
    (factors, posterior-mean sums, the prediction accumulator); scalars,
    priors, traces and the RNG state always stay float64.  The checksum is
    computed over the stored (possibly narrowed) arrays, so integrity
    verification is unaffected.
    """
    check_in("dtype", dtype, COMPUTE_DTYPES)
    factor_dtype = np.dtype(dtype)

    def narrow(array: np.ndarray) -> np.ndarray:
        return np.asarray(array, dtype=factor_dtype)

    state = snapshot.state
    payload: Dict[str, np.ndarray] = {
        "format": np.array(SNAPSHOT_FORMAT),
        "user_factors": narrow(state.user_factors),
        "movie_factors": narrow(state.movie_factors),
        "user_prior_mean": state.user_prior.mean,
        "user_prior_precision": state.user_prior.precision,
        "movie_prior_mean": state.movie_prior.mean,
        "movie_prior_precision": state.movie_prior.precision,
        "iteration": np.array(state.iteration, dtype=np.int64),
        "config": np.array(json.dumps(snapshot.config)),
        "rng_state": np.array(
            "" if snapshot.rng_state is None
            else json.dumps(encode_rng_state_dict(snapshot.rng_state))),
        "mean_count": np.array(snapshot.mean_count, dtype=np.int64),
        "prediction_count": np.array(snapshot.prediction_count, dtype=np.int64),
        "rmse_burn_in": np.asarray(snapshot.rmse_burn_in, dtype=np.float64),
        "rmse_per_sample": np.asarray(snapshot.rmse_per_sample, dtype=np.float64),
        "rmse_running_mean": np.asarray(snapshot.rmse_running_mean,
                                        dtype=np.float64),
        "items_updated": np.array(snapshot.items_updated, dtype=np.int64),
        "offset": np.array(snapshot.offset, dtype=np.float64),
        "metadata": np.array(json.dumps(snapshot.metadata)),
    }
    if snapshot.mean_user_sum is not None:
        payload["mean_user_sum"] = narrow(snapshot.mean_user_sum)
        payload["mean_movie_sum"] = narrow(snapshot.mean_movie_sum)
    if snapshot.prediction_sum is not None:
        payload["prediction_sum"] = narrow(snapshot.prediction_sum)
    payload["checksum"] = np.array(_payload_checksum(payload))

    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    # The temporary name must end in ".npz" so numpy writes *exactly* this
    # path (it appends the suffix otherwise) — a stale leftover from a
    # killed process can then never be mistaken for the fresh archive.
    tmp = path.with_name(path.name + ".tmp.npz")
    try:
        np.savez_compressed(tmp, **payload)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - crash-path hygiene
            tmp.unlink()


def load_snapshot(path: PathLike, verify: bool = True) -> Snapshot:
    """Read a snapshot written by :func:`save_snapshot`.

    With ``verify`` (default) the SHA-256 checksum is recomputed over every
    payload and compared to the stored value; a mismatch raises
    :class:`ValidationError` instead of returning corrupt factors.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        payload = {key: archive[key] for key in archive.files}

    if str(payload.get("format", "")) != SNAPSHOT_FORMAT:
        raise ValidationError(
            f"{path} is not a {SNAPSHOT_FORMAT} snapshot "
            f"(format tag: {payload.get('format')!r})")
    if verify:
        stored = str(payload.get("checksum", ""))
        actual = _payload_checksum(payload)
        if stored != actual:
            raise ValidationError(
                f"snapshot {path} failed its integrity check "
                f"(stored {stored[:12]}..., recomputed {actual[:12]}...)")

    # Factor payloads may have been narrowed to float32 at save time
    # (CheckpointConfig.dtype); widen back so every consumer keeps its
    # float64 invariants (the precision already lost stays lost).
    state = BPMFState(
        user_factors=payload["user_factors"].astype(np.float64),
        movie_factors=payload["movie_factors"].astype(np.float64),
        user_prior=GaussianPrior(payload["user_prior_mean"].copy(),
                                 payload["user_prior_precision"].copy()),
        movie_prior=GaussianPrior(payload["movie_prior_mean"].copy(),
                                  payload["movie_prior_precision"].copy()),
        iteration=int(payload["iteration"]),
    )
    rng_json = str(payload["rng_state"])
    return Snapshot(
        state=state,
        config=json.loads(str(payload["config"])),
        rng_state=json.loads(rng_json) if rng_json else None,
        mean_user_sum=(payload["mean_user_sum"].astype(np.float64)
                       if "mean_user_sum" in payload else None),
        mean_movie_sum=(payload["mean_movie_sum"].astype(np.float64)
                        if "mean_movie_sum" in payload else None),
        mean_count=int(payload["mean_count"]),
        prediction_sum=(payload["prediction_sum"].astype(np.float64)
                        if "prediction_sum" in payload else None),
        prediction_count=int(payload["prediction_count"]),
        rmse_burn_in=payload["rmse_burn_in"].tolist(),
        rmse_per_sample=payload["rmse_per_sample"].tolist(),
        rmse_running_mean=payload["rmse_running_mean"].tolist(),
        items_updated=int(payload["items_updated"]),
        offset=float(payload["offset"]),
        metadata=json.loads(str(payload["metadata"])),
    )


def coerce_snapshot(source: Union[Snapshot, PathLike]) -> Snapshot:
    """Accept a :class:`Snapshot` or a path and return a :class:`Snapshot`."""
    if isinstance(source, Snapshot):
        return source
    return load_snapshot(source)


# ---------------------------------------------------------------------------
# the sampler-side checkpoint hook
# ---------------------------------------------------------------------------

class TrainingCheckpointer:
    """Shared save/restore logic for all three samplers.

    The samplers own the training loop; this object owns everything a
    checkpoint must capture around it.  One instance is created per
    ``run()`` call (possibly from a resume snapshot), accumulates the
    posterior-mean factors, and writes snapshots whenever the
    :class:`CheckpointConfig` says one is due.
    """

    def __init__(self, config: BPMFConfig,
                 checkpoint: Optional[CheckpointConfig],
                 resume: Optional[Snapshot], state: BPMFState,
                 predictor: PosteriorPredictor):
        self.checkpoint = checkpoint
        self.config = config
        self.factor_means = FactorMeanAccumulator.for_state(state)
        self.rmse_burn_in: List[float] = []
        self.rmse_per_sample: List[float] = []
        self.rmse_running_mean: List[float] = []
        self.items_updated = 0
        self.start_iteration = 0
        if resume is not None:
            self.start_iteration = resume.state.iteration
            if self.start_iteration > config.total_iterations:
                raise ValidationError(
                    f"snapshot is at sweep {self.start_iteration}, beyond the "
                    f"configured total of {config.total_iterations}")
            # The model (and the burn-in boundary the accumulators already
            # honoured) must match; only n_samples may grow on resume.
            for key in ("num_latent", "alpha", "burn_in", "beta0"):
                echoed = resume.config.get(key)
                if echoed is not None \
                        and float(echoed) != float(getattr(config, key)):
                    raise ValidationError(
                        f"snapshot was trained with {key}={echoed}, but the "
                        f"resuming config has {key}={getattr(config, key)}")
            self.items_updated = resume.items_updated
            self.rmse_burn_in = list(resume.rmse_burn_in)
            self.rmse_per_sample = list(resume.rmse_per_sample)
            self.rmse_running_mean = list(resume.rmse_running_mean)
            if resume.mean_user_sum is not None:
                self.factor_means.restore(resume.mean_user_sum,
                                          resume.mean_movie_sum,
                                          resume.mean_count)
            if resume.prediction_sum is not None:
                predictor.restore(resume.prediction_sum,
                                  resume.prediction_count)

    @staticmethod
    def open_resume(resume, state, rng):
        """Normalise a ``resume=`` argument into ``(snapshot, state, rng)``.

        ``state`` must not also be supplied; the snapshot's generator state
        (when present) replaces the seed-derived generator so the resumed
        bit stream continues exactly.
        """
        if resume is None:
            return None, state, rng
        if state is not None:
            raise ValidationError("pass either state= or resume=, not both")
        snapshot = coerce_snapshot(resume)
        if snapshot.rng_state is not None:
            rng = restore_generator(snapshot.rng_state)
        return snapshot, snapshot.state.copy(), rng

    def record(self, iteration: int, state: BPMFState,
               sample_rmse: float, mean_rmse: Optional[float]) -> None:
        """Append one sweep's traces and accumulate the factor means."""
        if iteration < self.config.burn_in:
            self.rmse_burn_in.append(sample_rmse)
        else:
            self.factor_means.accumulate(state)
            self.rmse_per_sample.append(sample_rmse)
            if mean_rmse is not None:
                self.rmse_running_mean.append(mean_rmse)

    def maybe_save(self, iteration: int, state: BPMFState,
                   rng: np.random.Generator,
                   predictor: PosteriorPredictor) -> bool:
        """Save a snapshot if one is due after ``iteration``; returns saved."""
        if self.checkpoint is None \
                or not self.checkpoint.due(iteration, self.config.total_iterations):
            return False
        means = self.factor_means
        snapshot = Snapshot(
            state=state.copy(),
            config={key: float(getattr(self.config, key))
                    for key in _CONFIG_FIELDS},
            rng_state=encode_rng_state(rng),
            mean_user_sum=means.user_sum.copy() if means.n_samples else None,
            mean_movie_sum=means.movie_sum.copy() if means.n_samples else None,
            mean_count=means.n_samples,
            prediction_sum=predictor.prediction_sum.copy(),
            prediction_count=predictor.n_samples,
            rmse_burn_in=list(self.rmse_burn_in),
            rmse_per_sample=list(self.rmse_per_sample),
            rmse_running_mean=list(self.rmse_running_mean),
            items_updated=self.items_updated,
            offset=self.checkpoint.offset,
            metadata=dict(self.checkpoint.metadata),
        )
        save_snapshot(snapshot, self.checkpoint.path,
                      dtype=self.checkpoint.dtype)
        return True
