"""Cold-start fold-in: conditional posteriors for users unseen at training.

A new user with observed ratings ``r`` on items ``X`` has the same
conditional Gaussian as any training user,

.. math::

    U_u \\mid \\cdot \\sim \\mathcal{N}\\big(\\Lambda_*^{-1} m_*,
    \\Lambda_*^{-1}\\big), \\quad
    \\Lambda_* = \\Lambda_U + \\alpha X^\\top X, \\quad
    m_* = \\Lambda_U \\mu_U + \\alpha X^\\top r,

evaluated against the *fixed* posterior item factors — the PMF-style
fold-in.  Rather than reimplementing that linear algebra, this module
builds a one-phase :class:`~repro.sparse.csr.CompressedAxis` over the new
users' ratings and pushes it through the batched block-Cholesky engine
(:class:`~repro.core.batch_engine.BatchedUpdateEngine`): with zero noise
the engine's ``mean + L^{-T} z`` sample *is* the posterior mean, and with
real noise it is a posterior sample.  Folding in a thousand cold-start
users therefore costs one stacked LAPACK pass per distinct degree.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batch_engine import UpdateEngine, make_update_engine
from repro.core.priors import GaussianPrior
from repro.core.updates import conditional_distribution
from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError, check_positive

__all__ = ["fold_in_users", "fold_in_user", "fold_in_posterior"]


def _ragged_axis(item_lists: Sequence[np.ndarray],
                 value_lists: Sequence[np.ndarray],
                 n_items: int) -> CompressedAxis:
    """Compress per-user ragged rating lists into one phase axis."""
    if len(item_lists) != len(value_lists):
        raise ValidationError("item_lists and value_lists must align")
    indices = [np.asarray(items, dtype=np.int64).ravel()
               for items in item_lists]
    values = [np.asarray(vals, dtype=np.float64).ravel()
              for vals in value_lists]
    for user, (idx, val) in enumerate(zip(indices, values)):
        if idx.shape != val.shape:
            raise ValidationError(
                f"fold-in user {user}: {idx.shape[0]} items but "
                f"{val.shape[0]} values")
        if idx.size and (idx.min() < 0 or idx.max() >= n_items):
            raise ValidationError(
                f"fold-in user {user}: item index outside [0, {n_items})")
    lengths = np.array([idx.shape[0] for idx in indices], dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    return CompressedAxis(
        indptr=indptr,
        indices=(np.concatenate(indices) if indices
                 else np.empty(0, dtype=np.int64)),
        values=(np.concatenate(values) if values
                else np.empty(0, dtype=np.float64)),
    )


def fold_in_users(
    item_factors: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    item_lists: Sequence[np.ndarray],
    value_lists: Sequence[np.ndarray],
    noise: Optional[np.ndarray] = None,
    engine: Optional[Union[str, UpdateEngine]] = None,
) -> np.ndarray:
    """Posterior factor rows for a batch of unseen users.

    Parameters
    ----------
    item_factors:
        ``(n_items, K)`` posterior item factors (a snapshot's mean factors
        or the last Gibbs sample).
    prior:
        The user-class Gaussian prior ``(mu_U, Lambda_U)`` from the same
        snapshot.
    alpha:
        Observation precision the chain was trained with.
    item_lists, value_lists:
        Per-user ragged arrays of rated item indices and rating values
        (already on the training scale, i.e. with any offset removed).
        A user with no ratings folds in to the prior mean.
    noise:
        Optional ``(n_new, K)`` standard-normal rows.  Default (``None``)
        uses zeros, which makes every returned row the exact conditional
        posterior *mean*; pass real noise to draw posterior *samples*
        instead.
    engine:
        Execution strategy: an engine registry name or a pre-built
        :class:`~repro.core.batch_engine.UpdateEngine`.  Default
        ``"batched"``.  An engine built here from a name is closed before
        returning (so ``engine="shared"`` cannot leak worker processes);
        pass a caller-owned instance instead to amortise one shared pool
        across many fold-in calls — the caller then closes it.  The
        zero-noise posterior-mean semantics hold for every engine.

    Returns
    -------
    ``(n_new, K)`` factor rows, one per folded-in user.
    """
    check_positive("alpha", alpha)
    owns_engine = False
    if engine is None:
        engine = "batched"
    if isinstance(engine, str):
        engine = make_update_engine(engine)
        owns_engine = True
    elif not isinstance(engine, UpdateEngine):
        raise ValidationError(
            f"engine must be a registry name or an UpdateEngine, "
            f"got {type(engine).__name__}")
    item_factors = np.asarray(item_factors, dtype=np.float64)
    if item_factors.ndim != 2:
        raise ValidationError("item_factors must be 2-D (n_items x K)")
    k = prior.num_latent
    if item_factors.shape[1] != k:
        raise ValidationError(
            f"item_factors have K={item_factors.shape[1]} but the prior "
            f"has K={k}")

    axis = _ragged_axis(item_lists, value_lists, item_factors.shape[0])
    n_new = axis.n
    if noise is None:
        noise = np.zeros((n_new, k))
    else:
        noise = np.asarray(noise, dtype=np.float64)
        if noise.shape != (n_new, k):
            raise ValidationError(
                f"noise must have shape ({n_new}, {k}), got {noise.shape}")

    target = np.zeros((n_new, k))
    try:
        engine.update_items(target, item_factors, axis, prior, alpha, noise)
    finally:
        if owns_engine:
            engine.close()
    return target


def fold_in_user(
    item_factors: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    items: np.ndarray,
    values: np.ndarray,
    noise: Optional[np.ndarray] = None,
    engine: Optional[Union[str, UpdateEngine]] = None,
) -> np.ndarray:
    """Posterior factor row for one unseen user (see :func:`fold_in_users`)."""
    noise_rows = None if noise is None else np.asarray(noise)[None, :]
    return fold_in_users(item_factors, prior, alpha, [items], [values],
                         noise=noise_rows, engine=engine)[0]


def fold_in_posterior(
    item_factors: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    items: np.ndarray,
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Full conditional posterior ``(mean, chol_precision)`` for one user.

    For callers that need the posterior *uncertainty* (e.g. exploration
    bonuses), not just a point estimate.  ``chol_precision`` is the lower
    Cholesky factor of ``Lambda_* = Lambda + alpha X^T X``.
    """
    item_factors = np.asarray(item_factors, dtype=np.float64)
    items = np.asarray(items, dtype=np.int64).ravel()
    values = np.asarray(values, dtype=np.float64).ravel()
    if items.shape != values.shape:
        raise ValidationError("items and values must align")
    if items.size and (items.min() < 0 or items.max() >= item_factors.shape[0]):
        raise ValidationError(
            f"item index outside [0, {item_factors.shape[0]})")
    return conditional_distribution(item_factors[items], values, prior, alpha)
