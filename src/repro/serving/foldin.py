"""Cold-start fold-in: conditional posteriors for users unseen at training.

A new user with observed ratings ``r`` on items ``X`` has the same
conditional Gaussian as any training user,

.. math::

    U_u \\mid \\cdot \\sim \\mathcal{N}\\big(\\Lambda_*^{-1} m_*,
    \\Lambda_*^{-1}\\big), \\quad
    \\Lambda_* = \\Lambda_U + \\alpha X^\\top X, \\quad
    m_* = \\Lambda_U \\mu_U + \\alpha X^\\top r,

evaluated against the *fixed* posterior item factors — the PMF-style
fold-in.  Rather than reimplementing that linear algebra, this module
builds a one-phase :class:`~repro.sparse.csr.CompressedAxis` over the new
users' ratings and pushes it through the batched block-Cholesky engine
(:class:`~repro.core.batch_engine.BatchedUpdateEngine`): with zero noise
the engine's ``mean + L^{-T} z`` sample *is* the posterior mean, and with
real noise it is a posterior sample.  Folding in a thousand cold-start
users therefore costs one stacked LAPACK pass per distinct degree.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batch_engine import UpdateEngine, make_update_engine
from repro.core.priors import GaussianPrior
from repro.core.updates import conditional_distribution
from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError, check_positive

__all__ = ["fold_in_users", "fold_in_user", "fold_in_posterior",
           "FoldInState", "FoldInRegistry"]


class FoldInState:
    """Incremental conditional-posterior state for one folded-in user.

    Keeps the Gaussian sufficient statistics ``Lambda = Lambda_0 +
    alpha X^T X`` and ``b = Lambda_0 mu_0 + alpha X^T r`` alongside the raw
    rating history.  A user rating ``k`` new items then costs one rank-``k``
    statistic update plus a single ``K x K`` solve
    (:meth:`update`) — no re-fold over their full history.  The raw
    history is retained so a snapshot hot-swap can rebuild the statistics
    against *new* item factors (:meth:`refreshed`), which is the only
    operation that must start over.

    The posterior-mean row produced here matches a full re-fold of the
    same history up to floating-point summation order; the serving-cluster
    parity tests pin the service and the sharded gateway to this one
    implementation so their rows agree bit-for-bit.
    """

    def __init__(self, prior: GaussianPrior, alpha: float):
        check_positive("alpha", alpha)
        self.prior = prior
        self.alpha = float(alpha)
        k = prior.num_latent
        self.precision = prior.precision.copy()
        self.linear = prior.precision @ prior.mean
        self.items = np.empty(0, dtype=np.int64)
        self.values = np.empty(0, dtype=np.float64)
        self._row = np.linalg.solve(self.precision, self.linear)
        assert self._row.shape == (k,)

    @property
    def n_ratings(self) -> int:
        return int(self.items.shape[0])

    def row(self) -> np.ndarray:
        """The current posterior-mean factor row (a defensive copy)."""
        return self._row.copy()

    def update(self, item_rows: np.ndarray, items: np.ndarray,
               values: np.ndarray) -> np.ndarray:
        """Absorb ``k`` new ratings; returns the updated factor row.

        ``item_rows`` are the ``(k, K)`` factor rows of the newly rated
        items (the caller gathers them — the service from its local item
        block, the cluster gateway from the owning shards).
        """
        item_rows = np.asarray(item_rows, dtype=np.float64)
        items = np.asarray(items, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if item_rows.shape != (items.shape[0], self.prior.num_latent):
            raise ValidationError(
                f"item_rows must be ({items.shape[0]}, "
                f"{self.prior.num_latent}), got {item_rows.shape}")
        if items.shape != values.shape:
            raise ValidationError("items and values must align")
        self.precision += self.alpha * (item_rows.T @ item_rows)
        self.linear += self.alpha * (item_rows.T @ values)
        self.items = np.concatenate([self.items, items])
        self.values = np.concatenate([self.values, values])
        self._row = np.linalg.solve(self.precision, self.linear)
        return self.row()

    def refreshed(self, item_factors: np.ndarray) -> "FoldInState":
        """Rebuild against new item factors (after a snapshot hot-swap).

        The rating history carries over; the statistics are recomputed
        from scratch because ``X`` changed under them.
        """
        rebuilt = FoldInState(self.prior, self.alpha)
        if self.n_ratings:
            rebuilt.update(np.asarray(item_factors,
                                      dtype=np.float64)[self.items],
                           self.items, self.values)
        return rebuilt


#: Maps rated item ids to their ``(k, K)`` factor rows — the single
#: service indexes its local item block, the cluster gateway gathers from
#: the owning shards.
ItemRowsFor = Callable[[np.ndarray], np.ndarray]


class FoldInRegistry:
    """Per-user incremental fold-in bookkeeping, shared by both serving
    front-ends.

    The single-process :class:`~repro.serving.service.PredictionService`
    and the sharded gateway must produce *bit-identical* factor rows for
    the same fold-in history, so the registration and rank-k update logic
    lives here exactly once; the front-ends only differ in how they fetch
    item rows (the ``item_rows_for`` callable) and where they store the
    resulting row.
    """

    def __init__(self, prior: GaussianPrior, alpha: float):
        self.prior = prior
        self.alpha = float(alpha)
        self.states: Dict[int, FoldInState] = {}

    def register(self, first_id: int, item_lists: Sequence[np.ndarray],
                 value_lists: Sequence[np.ndarray],
                 item_rows_for: ItemRowsFor) -> None:
        """Create incremental state for users just folded in as
        ``first_id, first_id + 1, ...`` (values already offset-removed)."""
        for offset, (items, values) in enumerate(zip(item_lists,
                                                     value_lists)):
            state = FoldInState(self.prior, self.alpha)
            if items.size:
                state.update(item_rows_for(items), items, values)
            self.states[first_id + offset] = state

    def update(self, user: int, n_train_users: int, n_users: int,
               items: np.ndarray, values: np.ndarray,
               item_rows_for: ItemRowsFor) -> np.ndarray:
        """Validate ``user`` is folded-in and apply the rank-k update.

        ``item_rows_for`` runs only after validation, so an invalid id
        costs no item-row fetch (which is an IPC round-trip for the
        cluster gateway).
        """
        if not n_train_users <= user < n_users:
            raise ValidationError(
                f"add_ratings only applies to folded-in users "
                f"[{n_train_users}, {n_users}), got {user}")
        return self.states[user].update(item_rows_for(items), items, values)

    def refreshed(self, item_factors: np.ndarray) -> "FoldInRegistry":
        """A new registry rebuilt against new item factors (hot swap)."""
        fresh = FoldInRegistry(self.prior, self.alpha)
        fresh.states = {user: state.refreshed(item_factors)
                        for user, state in sorted(self.states.items())}
        return fresh

    def digest(self) -> str:
        """A hex digest of every user's incremental state, bit-exact.

        Two registries that absorbed the same mutation history digest
        identically; any float-level drift in a precision matrix or a
        rating history changes it.  Part of the fleet convergence check
        (:meth:`PredictionService.state_digest`).
        """
        payload = hashlib.sha256()
        for user in sorted(self.states):
            state = self.states[user]
            payload.update(str(user).encode("ascii"))
            payload.update(np.ascontiguousarray(state.items).tobytes())
            payload.update(np.ascontiguousarray(state.values).tobytes())
            payload.update(np.ascontiguousarray(state.precision).tobytes())
            payload.update(np.ascontiguousarray(state.linear).tobytes())
        return payload.hexdigest()


def _ragged_axis(item_lists: Sequence[np.ndarray],
                 value_lists: Sequence[np.ndarray],
                 n_items: int) -> CompressedAxis:
    """Compress per-user ragged rating lists into one phase axis."""
    if len(item_lists) != len(value_lists):
        raise ValidationError("item_lists and value_lists must align")
    indices = [np.asarray(items, dtype=np.int64).ravel()
               for items in item_lists]
    values = [np.asarray(vals, dtype=np.float64).ravel()
              for vals in value_lists]
    for user, (idx, val) in enumerate(zip(indices, values)):
        if idx.shape != val.shape:
            raise ValidationError(
                f"fold-in user {user}: {idx.shape[0]} items but "
                f"{val.shape[0]} values")
        if idx.size and (idx.min() < 0 or idx.max() >= n_items):
            raise ValidationError(
                f"fold-in user {user}: item index outside [0, {n_items})")
    lengths = np.array([idx.shape[0] for idx in indices], dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    return CompressedAxis(
        indptr=indptr,
        indices=(np.concatenate(indices) if indices
                 else np.empty(0, dtype=np.int64)),
        values=(np.concatenate(values) if values
                else np.empty(0, dtype=np.float64)),
    )


def fold_in_users(
    item_factors: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    item_lists: Sequence[np.ndarray],
    value_lists: Sequence[np.ndarray],
    noise: Optional[np.ndarray] = None,
    engine: Optional[Union[str, UpdateEngine]] = None,
) -> np.ndarray:
    """Posterior factor rows for a batch of unseen users.

    Parameters
    ----------
    item_factors:
        ``(n_items, K)`` posterior item factors (a snapshot's mean factors
        or the last Gibbs sample).
    prior:
        The user-class Gaussian prior ``(mu_U, Lambda_U)`` from the same
        snapshot.
    alpha:
        Observation precision the chain was trained with.
    item_lists, value_lists:
        Per-user ragged arrays of rated item indices and rating values
        (already on the training scale, i.e. with any offset removed).
        A user with no ratings folds in to the prior mean.
    noise:
        Optional ``(n_new, K)`` standard-normal rows.  Default (``None``)
        uses zeros, which makes every returned row the exact conditional
        posterior *mean*; pass real noise to draw posterior *samples*
        instead.
    engine:
        Execution strategy: an engine registry name or a pre-built
        :class:`~repro.core.batch_engine.UpdateEngine`.  Default
        ``"batched"``.  An engine built here from a name is closed before
        returning (so ``engine="shared"`` cannot leak worker processes);
        pass a caller-owned instance instead to amortise one shared pool
        across many fold-in calls — the caller then closes it.  The
        zero-noise posterior-mean semantics hold for every engine.

    Returns
    -------
    ``(n_new, K)`` factor rows, one per folded-in user.
    """
    check_positive("alpha", alpha)
    owns_engine = False
    if engine is None:
        engine = "batched"
    if isinstance(engine, str):
        engine = make_update_engine(engine)
        owns_engine = True
    elif not isinstance(engine, UpdateEngine):
        raise ValidationError(
            f"engine must be a registry name or an UpdateEngine, "
            f"got {type(engine).__name__}")
    item_factors = np.asarray(item_factors, dtype=np.float64)
    if item_factors.ndim != 2:
        raise ValidationError("item_factors must be 2-D (n_items x K)")
    k = prior.num_latent
    if item_factors.shape[1] != k:
        raise ValidationError(
            f"item_factors have K={item_factors.shape[1]} but the prior "
            f"has K={k}")

    axis = _ragged_axis(item_lists, value_lists, item_factors.shape[0])
    n_new = axis.n
    if noise is None:
        noise = np.zeros((n_new, k))
    else:
        noise = np.asarray(noise, dtype=np.float64)
        if noise.shape != (n_new, k):
            raise ValidationError(
                f"noise must have shape ({n_new}, {k}), got {noise.shape}")

    target = np.zeros((n_new, k))
    try:
        engine.update_items(target, item_factors, axis, prior, alpha, noise)
    finally:
        if owns_engine:
            engine.close()
    return target


def fold_in_user(
    item_factors: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    items: np.ndarray,
    values: np.ndarray,
    noise: Optional[np.ndarray] = None,
    engine: Optional[Union[str, UpdateEngine]] = None,
) -> np.ndarray:
    """Posterior factor row for one unseen user (see :func:`fold_in_users`)."""
    noise_rows = None if noise is None else np.asarray(noise)[None, :]
    return fold_in_users(item_factors, prior, alpha, [items], [values],
                         noise=noise_rows, engine=engine)[0]


def fold_in_posterior(
    item_factors: np.ndarray,
    prior: GaussianPrior,
    alpha: float,
    items: np.ndarray,
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Full conditional posterior ``(mean, chol_precision)`` for one user.

    For callers that need the posterior *uncertainty* (e.g. exploration
    bonuses), not just a point estimate.  ``chol_precision`` is the lower
    Cholesky factor of ``Lambda_* = Lambda + alpha X^T X``.
    """
    item_factors = np.asarray(item_factors, dtype=np.float64)
    items = np.asarray(items, dtype=np.int64).ravel()
    values = np.asarray(values, dtype=np.float64).ravel()
    if items.shape != values.shape:
        raise ValidationError("items and values must align")
    if items.size and (items.min() < 0 or items.max() >= item_factors.shape[0]):
        raise ValidationError(
            f"item index outside [0, {item_factors.shape[0]})")
    return conditional_distribution(item_factors[items], values, prior, alpha)
