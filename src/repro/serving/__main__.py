"""Command-line entry point: ``python -m repro.serving <command>``.

The full train → snapshot → serve → query lifecycle from a terminal:

.. code-block:: bash

    # Train on a synthetic workload, checkpointing every 2 sweeps.
    python -m repro.serving train --snapshot /tmp/model.npz \\
        --burn-in 2 --n-samples 3 --checkpoint-every 2

    # Continue a stopped run (bit-identical to never stopping).
    python -m repro.serving train --snapshot /tmp/model.npz \\
        --resume /tmp/model.npz --burn-in 2 --n-samples 6

    # Inspect / query the snapshot.
    python -m repro.serving info  --snapshot /tmp/model.npz
    python -m repro.serving query --snapshot /tmp/model.npz --user 3 --top 5
    python -m repro.serving query --snapshot /tmp/model.npz --pairs 0:1 2:7

    # Interactive line protocol (predict/top/foldin) on stdin.
    echo "top 3 5" | python -m repro.serving serve --snapshot /tmp/model.npz

    # Framed RPC over TCP: 2 independently-failing replicas.  Fused
    # batched dispatch is the default; --fuse-window 0 disables it.
    # Mutations replicate through the write leader (replica 0); add
    # --wal DIR to make them durable across restarts.
    python -m repro.serving serve --snapshot /tmp/model.npz \\
        --tcp 127.0.0.1:7031 --replicas 2 --shards 2 \\
        --wal /tmp/model-wal --wal-sync-every 1

    # End-to-end self-checks (the CI smoke steps).
    python -m repro.serving smoke
    python -m repro.serving net-smoke
    python -m repro.serving wal-smoke
    python -m repro.serving chaos-smoke --seed 1
    python -m repro.serving obs-smoke --trace-out /tmp/spans.jsonl
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.core.recommend import recommend_for_user
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.multicore.sampler import MulticoreGibbsSampler, MulticoreOptions
from repro.obs import Tracer
from repro.serving.checkpoint import CheckpointConfig, load_snapshot
from repro.serving.cluster import ClusterError, ShardedScorer, SnapshotWatcher
from repro.serving.net import NetError, ReplicaSet, ServingClient
from repro.serving.net.protocol import execute, format_reply, parse_line
from repro.serving.service import PredictionService
from repro.utils.logging import set_verbosity
from repro.utils.validation import ValidationError

_BACKENDS = ("sequential", "multicore")
_ENGINES = ("batched", "shared", "reference")


def _add_snapshot_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--snapshot", required=True,
                        help="snapshot .npz path")


def _add_log_level(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="emit library logs on stderr at this level "
                             "(default: logging stays untouched)")


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=200)
    parser.add_argument("--movies", type=int, default=150)
    parser.add_argument("--rank", type=int, default=5)
    parser.add_argument("--density", type=float, default=0.15)
    parser.add_argument("--noise-std", type=float, default=0.3)
    parser.add_argument("--data-seed", type=int, default=0,
                        help="synthetic dataset seed (train and resume runs "
                             "must use the same value)")


def _make_dataset(args):
    return make_low_rank_dataset(SyntheticConfig(
        n_users=args.users, n_movies=args.movies, rank=args.rank,
        density=args.density, noise_std=args.noise_std,
        test_fraction=0.2, seed=args.data_seed))


def _cmd_train(args) -> int:
    data = _make_dataset(args)
    config = BPMFConfig(num_latent=args.num_latent, alpha=args.alpha,
                        burn_in=args.burn_in, n_samples=args.n_samples)
    checkpoint = CheckpointConfig(path=args.snapshot,
                                  every=args.checkpoint_every
                                  or config.total_iterations)
    n_workers = args.workers if args.engine == "shared" else None
    if args.backend == "multicore":
        sampler = MulticoreGibbsSampler(config, MulticoreOptions(
            n_threads=args.threads, engine=args.engine, n_workers=n_workers,
            checkpoint=checkpoint))
    else:
        sampler = GibbsSampler(config, SamplerOptions(
            engine=args.engine, n_workers=n_workers, checkpoint=checkpoint))
    result = sampler.run(data.split.train, data.split, seed=args.seed,
                         resume=args.resume)
    print(f"trained {config.total_iterations} sweeps on "
          f"{data.split.train.n_users}x{data.split.train.n_movies} "
          f"({data.split.train.nnz} ratings, {data.split.n_test} held out)")
    print(f"snapshot: {args.snapshot} (sweep {result.state.iteration})")
    print(f"final posterior-mean RMSE: {result.final_rmse:.4f}")
    return 0


def _cmd_info(args) -> int:
    snapshot = load_snapshot(args.snapshot)
    state = snapshot.state
    print(f"format: repro-snapshot-v1, sweep {state.iteration}")
    print(f"factors: {state.n_users} users x {state.n_movies} movies, "
          f"K={state.num_latent}")
    print(f"posterior-mean samples: {snapshot.mean_count}")
    print(f"resumable: {snapshot.rng_state is not None}")
    print(f"offset: {snapshot.offset}")
    if snapshot.rmse_running_mean:
        print(f"posterior-mean RMSE: {snapshot.rmse_running_mean[-1]:.4f}")
    for key, value in sorted(snapshot.metadata.items()):
        print(f"metadata {key}: {value}")
    return 0


def _make_service(args) -> PredictionService:
    return PredictionService(args.snapshot, mode=args.mode)


def _cmd_query(args) -> int:
    service = _make_service(args)
    if args.pairs:
        users, items = [], []
        for pair in args.pairs:
            user, _, item = pair.partition(":")
            users.append(int(user))
            items.append(int(item))
        scores = service.predict_batch(np.array(users), np.array(items))
        for user, item, score in zip(users, items, scores):
            print(f"predict {user} {item} -> {score:.4f}")
    if args.user is not None:
        recommendation = service.top_n(args.user, n=args.top)
        for rank, (item, score) in enumerate(recommendation.as_pairs(), 1):
            print(f"top {args.user} #{rank}: item {item} score {score:.4f}")
    if not args.pairs and args.user is None:
        print("nothing to query: pass --user and/or --pairs", file=sys.stderr)
        return 2
    return 0


def _graceful_sigterm():
    """Route SIGTERM into the KeyboardInterrupt path; returns a restorer.

    Serving loops already tear down cleanly on Ctrl-C (worker pools
    stopped, shared-memory segments unlinked); folding SIGTERM into the
    same path gives ``kill <pid>`` the identical graceful drain.
    """
    def raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, raise_interrupt)
    return lambda: signal.signal(signal.SIGTERM, previous)


def _serve_repl(service, watcher, backend: str, mode: str,
                owns_service: bool) -> int:
    """The stdin line protocol, parsed and formatted by the shared codec.

    Every command line goes through :func:`repro.serving.net.protocol.
    parse_line` → :func:`execute` → :func:`format_reply` — the same
    parser and executor the TCP transport uses; a golden-transcript test
    pins the output bit-identical to the historical ad-hoc loop.
    """
    restore_sigterm = _graceful_sigterm()
    print(f"serving {service.n_users} users x {service.n_items} items "
          f"({backend}, mode={mode}); commands: predict, top, foldin, "
          f"rate, stats, quit", flush=True)
    try:
        for line in sys.stdin:
            try:
                request = parse_line(line)
                if request is None:
                    continue
                if request.kind == "quit":
                    break
                print(format_reply(request, execute(service, request)),
                      flush=True)
            except (ValidationError, IndexError, ValueError,
                    KeyError, ClusterError) as error:
                # Parse-time failures (execute() turns its own failures
                # into error frames, ClusterError included — a crashed
                # worker must not kill the session; the gateway respawns
                # its pool on the next command).
                print(f"error: {error}", flush=True)
    except KeyboardInterrupt:
        pass  # SIGTERM / Ctrl-C: drain through the shared teardown below
    finally:
        restore_sigterm()
        if watcher is not None:
            watcher.stop()
        if owns_service:
            service.close()
    return 0


def _parse_hostport(value: str):
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ValidationError(
            f"--tcp expects HOST:PORT (e.g. 127.0.0.1:7031), got {value!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]  # bracketed IPv6 literal, e.g. [::1]:7031
    elif ":" in host:
        raise ValidationError(
            f"--tcp expects HOST:PORT (bracket IPv6 hosts as "
            f"[ADDR]:PORT), got {value!r}")
    if int(port) > 65535:
        raise ValidationError(
            f"--tcp port must be 0-65535, got {port}")
    return host or "127.0.0.1", int(port)


def _fuse_window_ms(value):
    """CLI fuse-window semantics: ``0`` (or negative) disables fusion."""
    if value is None or value <= 0:
        return None
    return float(value)


def _serve_tcp(args, host: str, port: int) -> int:
    """The framed RPC transport: N replicas, fusion (default) and watch."""

    def make_service(index: int):
        if args.shards:
            return ShardedScorer(args.snapshot, n_shards=args.shards,
                                 mode=args.mode, n_workers=args.workers)
        return PredictionService(args.snapshot, mode=args.mode)

    make_watcher = None
    if args.watch:
        make_watcher = lambda service: SnapshotWatcher(  # noqa: E731
            service, args.snapshot, interval=args.watch_interval)

    stop_event = threading.Event()

    def request_stop(signum, frame):
        stop_event.set()

    previous = {sig: signal.signal(sig, request_stop)
                for sig in (signal.SIGTERM, signal.SIGINT)}
    fuse_window = _fuse_window_ms(args.fuse_window)
    tracer = Tracer(sink_dir=args.trace_dir) if args.trace_dir else None
    replicas = ReplicaSet(
        make_service, n_replicas=args.replicas, host=host,
        ports=([port + index for index in range(args.replicas)]
               if port else None),
        make_watcher=make_watcher, fuse_window_ms=fuse_window,
        fuse_max_batch=args.fuse_max_batch,
        max_in_flight=args.max_in_flight,
        wal_dir=args.wal, wal_sync_every=args.wal_sync_every,
        ship_cooldown=args.cooldown, ship_backoff_max=args.backoff_max,
        tracer=tracer)
    try:
        replicas.start()
        service = replicas.replicas[0].service
        backend = (f"{args.shards}-shard gateway" if args.shards
                   else "single-process")
        fused = (f"fused dispatch, fallback window {fuse_window}ms"
                 if fuse_window is not None else "fusion off")
        durable = (f"wal at {args.wal} (sync every {args.wal_sync_every})"
                   if args.wal else "wal in memory")
        traced = (f", traced to {args.trace_dir}" if tracer is not None
                  else "")
        addresses = ", ".join(f"{h}:{p}" for h, p in replicas.addresses)
        print(f"serving {service.n_users} users x {service.n_items} items "
              f"over tcp on {addresses} ({args.replicas} replicas, "
              f"{backend} each, mode={args.mode}, {fused}, "
              f"leader-replicated mutations, {durable}{traced})", flush=True)
        stop_event.wait()
        print("draining: in-flight requests finish, pools close",
              flush=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        replicas.stop()
        if tracer is not None:
            tracer.close()
    return 0


def _cmd_serve(args) -> int:
    """Serve queries on stdin (line protocol) or TCP (framed RPC).

    With ``--shards N`` the queries run on the sharded worker-pool gateway
    (:class:`~repro.serving.cluster.ShardedScorer`); ``--watch`` addition-
    ally hot-swaps new versions of the snapshot file as a concurrently
    running trainer overwrites it.  ``rate u i:v ...`` applies the
    incremental fold-in update to a previously folded-in user.  With
    ``--tcp HOST:PORT`` the same command set is served over the framed
    RPC protocol instead, with ``--replicas N`` independent gateway
    replicas (ports PORT..PORT+N-1); cross-user query fusion is on by
    default there (``--fuse-window 0`` disables it).
    """
    if args.watch and not args.shards:
        print("--watch requires --shards N", file=sys.stderr)
        return 2
    if args.tcp:
        try:
            host, port = _parse_hostport(args.tcp)
            if args.replicas < 1:
                raise ValidationError(
                    f"--replicas must be >= 1, got {args.replicas}")
            if port and port + args.replicas - 1 > 65535:
                raise ValidationError(
                    f"--replicas {args.replicas} from port {port} would "
                    "pass port 65535")
        except ValidationError as error:
            print(error, file=sys.stderr)
            return 2
        return _serve_tcp(args, host, port)
    watcher = None
    if args.shards:
        service = ShardedScorer(args.snapshot, n_shards=args.shards,
                                mode=args.mode, n_workers=args.workers)
        if args.watch:
            watcher = SnapshotWatcher(service, args.snapshot,
                                      interval=args.watch_interval).start()
        backend = f"{args.shards}-shard gateway"
    else:
        service = _make_service(args)
        backend = "single-process"
    return _serve_repl(service, watcher, backend, args.mode,
                       owns_service=bool(args.shards))


def _cmd_smoke(args) -> int:
    """End-to-end self check: train, snapshot, resume, serve, query, fold in."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.npz"
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=60, n_movies=40, rank=3, density=0.3, noise_std=0.3,
            test_fraction=0.2, seed=7))
        config = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=3)
        options = SamplerOptions(checkpoint=CheckpointConfig(path=path, every=2))
        result = GibbsSampler(config, options).run(
            data.split.train, data.split, seed=0)
        assert np.isfinite(result.final_rmse), "training RMSE is not finite"

        # Resume from the snapshot for 2 extra samples: still finite.
        longer = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=5)
        resumed = GibbsSampler(longer, SamplerOptions()).run(
            data.split.train, data.split, resume=path)
        assert resumed.state.iteration == longer.total_iterations

        service = PredictionService(path, train=data.split.train)
        predictions = service.predict_batch(data.split.test_users,
                                            data.split.test_movies)
        rmse = float(np.sqrt(np.mean((predictions - data.split.test_values) ** 2)))
        assert np.isfinite(rmse), "serving RMSE is not finite"
        top = service.top_n(0, n=5)
        assert len(top) == 5 and np.isfinite(top.scores).all()

        cold = service.fold_in(np.array([0, 1, 2]), np.array([4.0, 3.0, 5.0]))
        cold_top = service.top_n(cold, n=5)
        assert np.isfinite(cold_top.scores).all()

        # The service's ranking must match the in-memory recommendation path.
        reference = recommend_for_user(service.state(), 0, n=5,
                                       exclude=data.split.train)
        assert reference.items.tolist() == top.items.tolist(), \
            "service top-N disagrees with recommend_for_user"

        print(f"SMOKE OK: serving rmse={rmse:.4f}, "
              f"resumed to sweep {resumed.state.iteration}, "
              f"fold-in user {cold} served")
    return 0


def _cmd_cluster_smoke(args) -> int:
    """CI smoke: 2-shard gateway, one hot snapshot swap, bit-parity check.

    Writes the observed query latencies to ``--latency-out`` as JSON so CI
    can archive them next to the bench artifacts.
    """
    from repro.utils.environment import machine_environment

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cluster.npz"
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=60, n_movies=45, rank=3, density=0.3, noise_std=0.3,
            test_fraction=0.2, seed=7))
        train = data.split.train
        config = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=3)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            train, data.split, seed=0)

        users = list(range(0, train.n_users, 3))
        latencies: list[float] = []
        parity_queries = 0

        def storm(scorer, reference) -> None:
            nonlocal parity_queries
            for user in users:
                begin = time.perf_counter()
                served = scorer.top_n(user, n=5)
                latencies.append((time.perf_counter() - begin) * 1e3)
                expected = reference.top_n(user, n=5)
                assert served.items.tolist() == expected.items.tolist() \
                    and served.scores.tobytes() == expected.scores.tobytes(), \
                    f"sharded top-N diverged for user {user}"
                parity_queries += 1

        with ShardedScorer(path, n_shards=args.shards, train=train) as scorer:
            watcher = SnapshotWatcher(scorer, path)
            storm(scorer, PredictionService(path, train=train))

            # A training run extends the chain and overwrites the snapshot;
            # the watcher must validate and hot-swap it.
            longer = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2,
                                n_samples=6)
            GibbsSampler(longer, SamplerOptions(
                checkpoint=CheckpointConfig(path=path, every=3))).run(
                train, data.split, resume=path)
            assert watcher.check_once(), "watcher missed the new snapshot"
            assert scorer.n_swaps == 1
            storm(scorer, PredictionService(path, train=train))

            cold = scorer.fold_in(np.array([0, 1, 2]),
                                  np.array([4.0, 3.0, 5.0]))
            scorer.add_ratings(cold, np.array([5]), np.array([2.5]))
            assert np.isfinite(scorer.top_n(cold, n=5).scores).all()
            stats = scorer.stats()

        ladder = np.asarray(latencies)
        payload = {
            "benchmark": "serving-cluster-smoke",
            "environment": machine_environment(),
            "shards": args.shards,
            "parity_queries": parity_queries,
            "swaps": stats["n_swaps"],
            "latency_ms": {
                "p50": float(np.percentile(ladder, 50)),
                "p95": float(np.percentile(ladder, 95)),
                "mean": float(ladder.mean()),
            },
        }
        if args.latency_out:
            with open(args.latency_out, "w", encoding="utf8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(f"CLUSTER SMOKE OK: {parity_queries} bit-identical queries "
              f"across {args.shards} shards, {stats['n_swaps']} hot swap, "
              f"p95 latency {payload['latency_ms']['p95']:.2f} ms")
    return 0


def _cmd_net_smoke(args) -> int:
    """CI smoke for the network frontend: fused replicas + failover.

    Starts a 2-replica fused TCP server on a trained snapshot, storms it
    with concurrent clients while asserting every fused ``top_n`` reply
    is bit-identical to the single-process reference, exercises
    ``predict``/``foldin``/``rate``/``stats``/``health``, then kills one
    replica mid-storm and checks reads keep succeeding.  Observed
    latencies go to ``--latency-out`` as JSON for the CI artifact.

    ``--encoding {json,binary}`` pins the wire encoding the clients
    negotiate, and ``--pipeline`` adds a pipelined ``top_n_pipelined``
    parity pass, so CI covers both encodings and the windowed client.
    """
    from repro.utils.environment import machine_environment

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "net.npz"
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=60, n_movies=45, rank=3, density=0.3, noise_std=0.3,
            test_fraction=0.2, seed=7))
        config = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=3)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            data.split.train, data.split, seed=0)
        reference = PredictionService(path)
        users = list(range(0, reference.n_users, 2))
        latencies: list[float] = []
        failures: list[BaseException] = []
        parity_queries = 0
        lock = threading.Lock()

        fuse_window = _fuse_window_ms(args.fuse_window)
        binary = args.encoding == "binary"
        replicas = ReplicaSet(lambda index: PredictionService(path),
                              n_replicas=args.replicas,
                              fuse_window_ms=fuse_window)
        with replicas:
            def storm() -> None:
                # Failures are recorded, never raised: an exception (or a
                # bare assert) inside a worker thread would kill only that
                # thread and let the smoke report success anyway.
                nonlocal parity_queries
                client = ServingClient(replicas.addresses,
                                       cooldown=args.cooldown,
                                       backoff_max=args.backoff_max,
                                       binary=binary)
                with client:
                    for user in users:
                        begin = time.perf_counter()
                        try:
                            served = client.top_n(user, n=5)
                        except Exception as error:  # noqa: BLE001
                            with lock:
                                failures.append(error)
                            continue
                        elapsed = (time.perf_counter() - begin) * 1e3
                        expected = reference.top_n(user, n=5)
                        with lock:
                            latencies.append(elapsed)
                            if served.items.tolist() \
                                    != expected.items.tolist() \
                                    or served.scores.tobytes() \
                                    != expected.scores.tobytes():
                                failures.append(AssertionError(
                                    f"fused top-N diverged for user {user}"))
                            else:
                                parity_queries += 1

            threads = [threading.Thread(target=storm) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads), \
                "storm threads hung"
            assert not failures, failures[:3]
            assert parity_queries == len(threads) * len(users)

            if args.pipeline:
                # One connection, many in-flight frames: the windowed
                # client must match the reference bit for bit too.
                piped = ServingClient(replicas.addresses, binary=binary)
                with piped:
                    served_all = piped.top_n_pipelined(users, n=5)
                for user, served in zip(users, served_all):
                    expected = reference.top_n(user, n=5)
                    assert served.items.tolist() == \
                        expected.items.tolist() \
                        and served.scores.tobytes() == \
                        expected.scores.tobytes(), \
                        f"pipelined top-N diverged for user {user}"
                parity_queries += len(users)

            # Mutations replicate through the write leader: fold in via
            # any replica, then read the new user back from *every*
            # replica (read-your-writes across the fleet).
            writer = ServingClient(replicas.addresses, binary=binary)
            with writer:
                cold = writer.fold_in(np.array([0, 1, 2]),
                                      np.array([4.0, 3.0, 5.0]))
                assert writer.rate(cold, np.array([5]),
                                   np.array([2.5])) == cold
                assert writer.last_seqno == 2
            digests = set()
            for address in replicas.addresses:
                pinned = ServingClient([address], binary=binary)
                with pinned:
                    assert np.isfinite(
                        pinned.top_n(cold, n=5).scores).all()
                    health = pinned.health(digest=True)
                    assert health["status"] == "ok"
                    assert health["fusion"]["fusion_requests"] > 0
                    assert health["wal"]["applied_seqno"] == 2
                    digests.add(health["digest"])
                    assert pinned.stats()["n_folded_in"] == 1
            assert len(digests) == 1, "replicas diverged after mutations"

            # Kill replica 0 mid-storm: reads must keep succeeding.
            survivor_ref = replicas.replicas[1].service
            client = ServingClient(replicas.addresses,
                                   cooldown=args.cooldown,
                                   backoff_max=args.backoff_max,
                                   binary=binary)
            with client:
                client.top_n(0, n=5)
                replicas.kill(0)
                for user in users:
                    served = client.top_n(user, n=5)
                    expected = survivor_ref.top_n(user, n=5)
                    assert served.items.tolist() == expected.items.tolist()
                failovers = client.n_failovers
            fusion_stats = replicas.replicas[1].server.fuser.stats()

        ladder = np.asarray(latencies)
        payload = {
            "benchmark": "net-serving-smoke",
            "environment": machine_environment(),
            "replicas": args.replicas,
            "fuse_window_ms": fuse_window,
            "encoding": args.encoding,
            "pipelined": bool(args.pipeline),
            "parity_queries": parity_queries,
            "failovers": failovers,
            "fusion": fusion_stats,
            "latency_ms": {
                "p50": float(np.percentile(ladder, 50)),
                "p95": float(np.percentile(ladder, 95)),
                "mean": float(ladder.mean()),
            },
        }
        if args.latency_out:
            with open(args.latency_out, "w", encoding="utf8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(f"NET SMOKE OK: {parity_queries} bit-identical {args.encoding} "
              f"queries across {args.replicas} replicas "
              f"({fusion_stats['fusion_windows']} fused windows), "
              f"failover survived with {failovers} retries, "
              f"p95 latency {payload['latency_ms']['p95']:.2f} ms")
    return 0


def _cmd_wal_smoke(args) -> int:
    """CI smoke for the durable mutation log: storm → kill → converge.

    Starts a replica set on a durable WAL directory, storms it with
    concurrent writers (fold-in + ratings) and readers, kills the write
    leader mid-storm, restarts it, and then checks the exactly-once
    contract end to end:

    * reads never failed (readers rode failover through the kill);
    * writes succeed again after the restart (the leader recovered its
      log and write-dedup table from disk);
    * re-delivering an already-applied record to a follower is a counted
      no-op (``duplicates_skipped`` increments, applied seqno does not);
    * every replica reports the same state digest *and* the same digest
      as a fresh service replaying the WAL from scratch — so 100 % of
      acked writes survived the crash, bit for bit;
    * mutation latencies go to ``--latency-out`` as the CI artifact.
    """
    from repro.serving.wal import MutationReplayer, WriteAheadLog
    from repro.utils.environment import machine_environment

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wal.npz"
        wal_dir = Path(tmp) / "mutation-log"
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=60, n_movies=45, rank=3, density=0.3, noise_std=0.3,
            test_fraction=0.2, seed=11))
        config = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=3)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            data.split.train, data.split, seed=0)
        reference = PredictionService(path)
        read_users = list(range(0, reference.n_train_users, 2))

        n_writers = 2
        writes_each = max(1, args.writes // n_writers)
        latencies: list[float] = []
        acked_seqnos: list[int] = []
        write_errors = 0
        read_failures: list[BaseException] = []
        n_reads = 0
        lock = threading.Lock()
        stop_reads = threading.Event()

        replicas = ReplicaSet(lambda index: PredictionService(path),
                              n_replicas=args.replicas,
                              wal_dir=str(wal_dir),
                              wal_sync_every=args.wal_sync_every)
        with replicas:
            def write_storm(worker: int) -> None:
                # Writes hitting the leader-down window fail loudly
                # (never silently dropped); a real client retries — each
                # attempt is its own exactly-once mutation — so the storm
                # rides through the outage instead of draining during it.
                nonlocal write_errors
                rng = np.random.default_rng(worker)
                deadline = time.monotonic() + 90.0
                client = ServingClient(replicas.addresses,
                                        cooldown=args.cooldown,
                                        backoff_max=args.backoff_max)
                with client:
                    user = client.fold_in(np.array([0, 1, 2]),
                                          np.array([4.0, 3.0, 5.0]))
                    for _ in range(writes_each):
                        item = int(rng.integers(0, reference.n_items))
                        value = float(rng.integers(1, 6))
                        begin = time.perf_counter()
                        while True:
                            try:
                                client.rate(user, np.array([item]),
                                            np.array([value]))
                                break
                            except NetError:
                                with lock:
                                    write_errors += 1
                                if time.monotonic() > deadline:
                                    return
                                time.sleep(0.05)
                        elapsed = (time.perf_counter() - begin) * 1e3
                        with lock:
                            latencies.append(elapsed)
                            acked_seqnos.append(client.last_seqno)

            def read_storm() -> None:
                nonlocal n_reads
                client = ServingClient(replicas.addresses,
                                        cooldown=args.cooldown,
                                        backoff_max=args.backoff_max)
                with client:
                    while not stop_reads.is_set():
                        user = read_users[n_reads % len(read_users)]
                        try:
                            client.top_n(user, n=5)
                        except Exception as error:  # noqa: BLE001
                            with lock:
                                read_failures.append(error)
                        with lock:
                            n_reads += 1

            writers = [threading.Thread(target=write_storm, args=(i,))
                       for i in range(n_writers)]
            readers = [threading.Thread(target=read_storm)
                       for _ in range(2)]
            for thread in writers + readers:
                thread.start()

            # Kill the write leader once the storm is rolling, leave it
            # down long enough for writers to hit the outage, restart.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                with lock:
                    if len(acked_seqnos) >= 20:
                        break
                time.sleep(0.01)
            with lock:
                acked_before_kill = len(acked_seqnos)
            assert acked_before_kill >= 20, "storm never got going"
            replicas.kill(0)
            time.sleep(0.5)
            replicas.restart(0)

            for thread in writers:
                thread.join(timeout=120.0)
            stop_reads.set()
            for thread in readers:
                thread.join(timeout=30.0)
            assert not any(thread.is_alive()
                           for thread in writers + readers), "storm hung"
            assert not read_failures, read_failures[:3]

            # Writes work again: the restarted leader recovered its log.
            client = ServingClient(replicas.addresses)
            with client:
                user = client.fold_in(np.array([3, 4]),
                                      np.array([2.0, 5.0]))
                client.rate(user, np.array([0]), np.array([1.0]))
                final_seqno = client.last_seqno
            assert final_seqno >= max(acked_seqnos), \
                "post-restart write did not advance the log"

            # Re-deliver an already-applied record to a follower: the
            # replayer's high-water mark makes it a counted no-op.
            leader = replicas.replicas[0].server.wal
            follower = replicas.replicas[1].server
            record = leader.log.read_range(1, 1)[0]
            before = follower.wal.stats()
            follower.call_serialized(
                follower.wal.handle_wal_append,
                {"records": [{"seqno": record.seqno,
                              "payload": dict(record.payload)}],
                 "leader_hwm": leader.log.high_seqno,
                 "leader_instance": leader.instance})
            after = follower.wal.stats()
            assert after["duplicates_skipped"] \
                == before["duplicates_skipped"] + 1
            assert after["applied_seqno"] == before["applied_seqno"]

            # Fleet convergence: every replica, same digest, same seqno.
            digests = set()
            applied = {}
            for address in replicas.addresses:
                pinned = ServingClient([address])
                with pinned:
                    health = pinned.health(digest=True)
                    applied[address] = health["wal"]["applied_seqno"]
                    digests.add(health["digest"])
            assert set(applied.values()) == {final_seqno}, \
                f"applied seqnos {applied} never reached acked {final_seqno}"
            assert len(digests) == 1, "replicas diverged after failover"
            fleet_digest = digests.pop()

        # Ground truth: a fresh service replaying the log from scratch
        # must land on the very same bytes — every acked write survived.
        replayed = PredictionService(path)
        log = WriteAheadLog(wal_dir)
        replayer = MutationReplayer(replayed)
        replayer.apply_all(log.records())
        log.close()
        assert replayer.applied_seqno == final_seqno
        assert replayer.applied_seqno >= max(acked_seqnos)
        assert str(replayed.state_digest()) == fleet_digest, \
            "fleet state diverged from a clean WAL replay"

        ladder = np.asarray(latencies)
        payload = {
            "benchmark": "wal-serving-smoke",
            "environment": machine_environment(),
            "replicas": args.replicas,
            "wal_sync_every": args.wal_sync_every,
            "acked_writes": len(acked_seqnos),
            "acked_before_kill": acked_before_kill,
            "write_errors_during_outage": write_errors,
            "reads": n_reads,
            "final_seqno": final_seqno,
            "mutation_latency_ms": {
                "p50": float(np.percentile(ladder, 50)),
                "p95": float(np.percentile(ladder, 95)),
                "mean": float(ladder.mean()),
            },
        }
        if args.latency_out:
            with open(args.latency_out, "w", encoding="utf8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(f"WAL SMOKE OK: {len(acked_seqnos)} acked writes "
              f"({write_errors} refused during the outage), "
              f"{n_reads} reads with 0 failures through a leader kill, "
              f"fleet digest == replay digest at seqno {final_seqno}, "
              f"mutation p95 "
              f"{payload['mutation_latency_ms']['p95']:.2f} ms")
    return 0


def _cmd_chaos_smoke(args) -> int:
    """CI chaos drill: a seeded fault schedule against a live fleet.

    Generates a deterministic :class:`FaultPlan` from ``--seed``, starts
    a durable replica fleet with the WAL fault sites armed, and runs a
    read/write storm through chaos clients whose sockets execute the
    scheduled network faults, while a :class:`FleetConductor` applies
    the plan's kill/pause timeline.  When the schedule ends, four
    invariants are checked:

    * **no acked write lost** — every acked seqno is present in a clean
      replay of the log, and the fleet digest equals the replay digest
      bit for bit;
    * **reads fail soft** — every read either succeeded bit-identically
      to an undisturbed reference service or failed with a *retryable*
      error (failover exhaustion or ``deadline_exceeded``) within its
      deadline budget;
    * **nothing hangs** — every storm thread and the conductor join;
    * **the fleet converges** — after the schedule, all replicas report
      one digest and zero replication lag.

    The full schedule, the triggered fault log and the invariant results
    go to ``--report-out`` as the CI artifact; re-running the same seed
    regenerates the byte-identical schedule.
    """
    from repro.serving.chaos import FaultInjector, FaultPlan, FleetConductor
    from repro.serving.net import DeadlineError
    from repro.serving.wal import MutationReplayer, WriteAheadLog
    from repro.utils.environment import machine_environment

    plan = FaultPlan.generate(
        seed=args.seed, n_events=args.faults, horizon=args.horizon,
        n_replicas=args.replicas, n_fleet_events=args.fleet_events,
        fleet_span=args.fleet_span)
    injector = FaultInjector(plan)
    tracer = Tracer(capacity=65536) if args.trace_out else None
    deadline_s = args.deadline_ms / 1000.0

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chaos.npz"
        wal_dir = Path(tmp) / "mutation-log"
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=60, n_movies=45, rank=3, density=0.3, noise_std=0.3,
            test_fraction=0.2, seed=13))
        config = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=3)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            data.split.train, data.split, seed=0)
        reference = PredictionService(path)
        read_users = list(range(0, reference.n_train_users, 2))

        n_writers = 2
        writes_each = max(1, args.writes // n_writers)
        violations: list[str] = []
        acked_seqnos: list[int] = []
        write_retries = 0
        n_reads = 0
        n_read_retryable = 0
        n_read_deadline = 0
        lock = threading.Lock()
        stop_reads = threading.Event()

        def chaos_client() -> ServingClient:
            return ServingClient(replicas.addresses, timeout=2.0,
                                 cooldown=args.cooldown,
                                 backoff_max=args.backoff_max,
                                 backoff_seed=args.seed,
                                 fault_injector=injector,
                                 tracer=tracer)

        replicas = ReplicaSet(lambda index: PredictionService(path),
                              n_replicas=args.replicas,
                              wal_dir=str(wal_dir), wal_sync_every=1,
                              ship_cooldown=args.cooldown,
                              ship_backoff_max=args.backoff_max,
                              ship_backoff_seed=args.seed,
                              fault_injector=injector,
                              tracer=tracer)
        with replicas:
            def write_storm(worker: int) -> None:
                # Every mutation retries until acked (each attempt is
                # exactly-once via its write_id); a *non-retryable*
                # failure is an invariant violation — injected faults
                # must surface as retryable errors, never as silent
                # corruption or misclassified domain errors.
                nonlocal write_retries
                rng = np.random.default_rng(worker)
                give_up = time.monotonic() + 120.0
                with chaos_client() as client:
                    def commit(mutate):
                        nonlocal write_retries
                        while True:
                            try:
                                return mutate()
                            except NetError as error:
                                if not getattr(error, "retryable", False):
                                    with lock:
                                        violations.append(
                                            "non-retryable write failure: "
                                            f"{error!r}")
                                    return None
                                with lock:
                                    write_retries += 1
                                if time.monotonic() > give_up:
                                    with lock:
                                        violations.append(
                                            "write storm never finished")
                                    return None
                                time.sleep(0.05)

                    user = commit(lambda: client.fold_in(
                        np.array([0, 1, 2]), np.array([4.0, 3.0, 5.0])))
                    if user is None:
                        return
                    for _ in range(writes_each):
                        item = int(rng.integers(0, reference.n_items))
                        value = float(rng.integers(1, 6))
                        if commit(lambda: client.rate(
                                user, np.array([item]),
                                np.array([value]))) is None:
                            return
                        with lock:
                            acked_seqnos.append(client.last_seqno)

            def read_storm() -> None:
                # Each read carries a deadline; it must either succeed
                # bit-identically to the reference or fail retryably
                # within (roughly) its budget.  The grace term covers
                # the last socket timeout an injected drop waits out.
                nonlocal n_reads, n_read_retryable, n_read_deadline
                with chaos_client() as client:
                    while not stop_reads.is_set():
                        with lock:
                            user = read_users[n_reads % len(read_users)]
                            n_reads += 1
                        begin = time.monotonic()
                        try:
                            served = client.top_n(
                                user, n=5, deadline_ms=args.deadline_ms)
                        except DeadlineError:
                            with lock:
                                n_read_deadline += 1
                            continue
                        except NetError as error:
                            elapsed = time.monotonic() - begin
                            with lock:
                                if not getattr(error, "retryable", False):
                                    violations.append(
                                        "non-retryable read failure: "
                                        f"{error!r}")
                                elif elapsed > deadline_s + 2.5:
                                    violations.append(
                                        f"read failed after {elapsed:.2f}s "
                                        f"(deadline {deadline_s:.2f}s): "
                                        f"{error!r}")
                                else:
                                    n_read_retryable += 1
                            continue
                        expected = reference.top_n(user, n=5)
                        if served.items.tolist() != expected.items.tolist() \
                                or served.scores.tobytes() \
                                != expected.scores.tobytes():
                            with lock:
                                violations.append(
                                    f"top-N diverged for user {user} "
                                    "under chaos")

            writers = [threading.Thread(target=write_storm, args=(i,))
                       for i in range(n_writers)]
            readers = [threading.Thread(target=read_storm)
                       for _ in range(2)]
            for thread in writers + readers:
                thread.start()

            # Unleash the fleet schedule once the storm is rolling.
            start_deadline = time.monotonic() + 30.0
            while time.monotonic() < start_deadline:
                with lock:
                    if len(acked_seqnos) >= 5:
                        break
                time.sleep(0.01)
            conductor = FleetConductor(replicas, plan.fleet)
            conductor.start()

            for thread in writers:
                thread.join(timeout=150.0)
            fleet_log = conductor.finish(timeout=90.0)
            stop_reads.set()
            for thread in readers:
                thread.join(timeout=30.0)
            hung = any(thread.is_alive() for thread in writers + readers)
            if hung:
                violations.append("storm threads hung")

            # Convergence: probe writes re-open shipping to any follower
            # still in backoff from the schedule; every replica must
            # reach the probe's seqno with one fleet-wide digest.
            final_seqno = None
            fleet_digest = None
            converged = False
            with ServingClient(replicas.addresses,
                               cooldown=args.cooldown,
                               backoff_max=args.backoff_max) as probe:
                converge_deadline = time.monotonic() + 30.0
                probe_user = None
                while probe_user is None \
                        and time.monotonic() < converge_deadline:
                    try:
                        probe_user = probe.fold_in(np.array([3, 4]),
                                                   np.array([2.0, 5.0]))
                    except NetError:  # a residual scheduled fault fired
                        time.sleep(0.25)
                while probe_user is not None \
                        and time.monotonic() < converge_deadline:
                    try:
                        probe.rate(probe_user, np.array([0]),
                                   np.array([1.0]))
                    except NetError:  # a residual scheduled fault fired
                        time.sleep(0.25)
                        continue
                    final_seqno = probe.last_seqno
                    digests = set()
                    applied = set()
                    for address in replicas.addresses:
                        with ServingClient([address]) as pinned:
                            health = pinned.health(digest=True)
                            applied.add(health["wal"]["applied_seqno"])
                            digests.add(health["digest"])
                    if applied == {final_seqno} and len(digests) == 1:
                        fleet_digest = digests.pop()
                        converged = True
                        break
                    time.sleep(0.25)
            if not converged:
                violations.append("fleet did not converge after the "
                                  "schedule ended")

            # Replication lag must read zero once converged.
            lag_ok = True
            for stats in replicas.wal_stats():
                if stats is None:
                    continue
                lag = stats.get("max_follower_lag" if stats["role"]
                                == "leader" else "lag", 0)
                if lag != 0:
                    lag_ok = False
                    violations.append(
                        f"{stats['role']} reports lag {lag} "
                        "after convergence")

        # Ground truth: a clean replay of the log must land on the very
        # same bytes the fleet serves — every acked write survived the
        # schedule (including any injected WAL faults).
        replay_ok = False
        if converged and acked_seqnos:
            replayed = PredictionService(path)
            log = WriteAheadLog(wal_dir)
            replayer = MutationReplayer(replayed)
            replayer.apply_all(log.records())
            log.close()
            if replayer.applied_seqno != final_seqno:
                violations.append(
                    f"replay stopped at {replayer.applied_seqno}, fleet "
                    f"acked {final_seqno}")
            elif replayer.applied_seqno < max(acked_seqnos):
                violations.append("an acked write is missing from the log")
            elif str(replayed.state_digest()) != fleet_digest:
                violations.append("fleet digest != clean replay digest")
            else:
                replay_ok = True

        trace_summary = None
        if tracer is not None:
            # Every span that a scheduled fault landed inside carries the
            # fired event as a ``fault`` annotation (see FaultInjector).
            spans = tracer.spans()
            annotated = sum(1 for span in spans if "fault" in span["attrs"])
            trace_summary = {"spans": len(spans),
                             "fault_annotated": annotated,
                             "tracer": tracer.stats()}
            with open(args.trace_out, "w", encoding="utf8") as handle:
                for span in spans:
                    handle.write(json.dumps(span, sort_keys=True,
                                            default=str) + "\n")

        report = {
            "benchmark": "chaos-smoke",
            "environment": machine_environment(),
            "seed": args.seed,
            "replicas": args.replicas,
            "deadline_ms": args.deadline_ms,
            "plan": plan.to_json(),
            "plan_digest": plan.digest(),
            "triggered": list(injector.log),
            "site_calls": injector.counts(),
            "fleet_log": fleet_log,
            "acked_writes": len(acked_seqnos),
            "write_retries": write_retries,
            "reads": n_reads,
            "read_retryable_failures": n_read_retryable,
            "read_deadline_failures": n_read_deadline,
            "invariants": {
                "no_acked_write_lost": replay_ok,
                "reads_fail_soft": not any(
                    "read" in v or "diverged" in v for v in violations),
                "no_hangs": not hung,
                "fleet_converged": converged and lag_ok,
            },
            "violations": violations,
        }
        if trace_summary is not None:
            report["trace"] = trace_summary
        if args.report_out:
            with open(args.report_out, "w", encoding="utf8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if violations:
            print(f"CHAOS SMOKE FAILED (seed {args.seed}): "
                  + "; ".join(violations[:5]), file=sys.stderr)
            return 1
        print(f"CHAOS SMOKE OK: seed {args.seed}, "
              f"{len(injector.log)} faults fired "
              f"({len(plan.events)} scheduled, "
              f"{len(fleet_log)} fleet actions), "
              f"{len(acked_seqnos)} acked writes all durable "
              f"({write_retries} retries), {n_reads} reads "
              f"({n_read_retryable} failovers exhausted, "
              f"{n_read_deadline} deadline-shed, 0 violations), "
              f"fleet converged at seqno {final_seqno}")
    return 0


def _cmd_obs_smoke(args) -> int:
    """CI smoke for the observability layer: traced storm + span checks.

    Starts a traced, durable replica fleet, storms it with traced
    readers and writers (every request carries trace context end to
    end), then checks the tracing contract on the recorded spans:

    * **one write, one tree** — a single traced ``rate`` yields a
      connected span tree from the client root through leader admission
      and the WAL (``wal.commit`` → ``wal.append``/``wal.fsync`` →
      ``wal.ship``) to every follower's ``wal.follower_apply``;
    * **durations nest** — no span in that tree outlasts the client's
      observed latency, and the WAL children fit inside the commit;
    * **fusion fans in** — concurrent reads share ``fusion.window``
      spans whose ``fusion.waiter`` children index the response order;
    * **metrics unify** — the ``metrics`` frame serves the fleet-wide
      registry snapshot (server histograms, WAL fsync latency, fusion
      counters) under dotted names, while ``stats`` keeps its flat
      aliases.

    The recorded spans go to ``--trace-out`` as JSONL and the registry
    snapshot to ``--metrics-out`` — the CI artifacts.
    """
    from repro.utils.environment import machine_environment

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "obs.npz"
        wal_dir = Path(tmp) / "mutation-log"
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=60, n_movies=45, rank=3, density=0.3, noise_std=0.3,
            test_fraction=0.2, seed=17))
        config = BPMFConfig(num_latent=4, alpha=4.0, burn_in=2, n_samples=3)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            data.split.train, data.split, seed=0)
        reference = PredictionService(path)
        read_users = list(range(0, reference.n_train_users, 2))

        # One tracer for clients *and* fleet: the smoke runs in-process,
        # so every hop of every trace lands in the same ring buffer.
        tracer = Tracer(capacity=65536)
        failures: list[BaseException] = []
        replicas = ReplicaSet(lambda index: PredictionService(path),
                              n_replicas=args.replicas,
                              wal_dir=str(wal_dir),
                              fuse_window_ms=args.fuse_window,
                              tracer=tracer)
        with replicas:
            # Traced read/write storm; readers pin to one replica so
            # concurrent top-N calls fuse into shared windows.
            barrier = threading.Barrier(args.clients)

            def storm(worker: int) -> None:
                try:
                    with ServingClient(replicas.addresses[:1],
                                       tracer=tracer) as client:
                        user = client.fold_in(
                            np.array([0, 1, 2]), np.array([4.0, 3.0, 5.0]))
                        barrier.wait(timeout=30.0)
                        for index, read_user in enumerate(read_users):
                            client.top_n(read_user, n=5)
                            if index % 4 == worker % 4:
                                client.rate(user, np.array([index]),
                                            np.array([3.0]))
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

            threads = [threading.Thread(target=storm, args=(worker,))
                       for worker in range(args.clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(thread.is_alive() for thread in threads), \
                "storm threads hung"
            assert not failures, failures[:3]

            # The acceptance write: one clean traced mutation, timed.
            with ServingClient(replicas.addresses,
                               tracer=tracer) as client:
                user = client.fold_in(np.array([3, 4]),
                                      np.array([2.0, 5.0]))
                begin = time.perf_counter()
                client.rate(user, np.array([0]), np.array([1.0]))
                write_ms = (time.perf_counter() - begin) * 1e3

                # Satellite surfaces: unified metrics + flat aliases.
                snapshot = client.metrics()
                flat = client.stats()
                health = client.health()

        spans = tracer.spans()
        children: dict = {}
        for span in spans:
            children.setdefault(span["parent_id"], []).append(span)

        def subtree(root):
            collected, stack = [], [root]
            while stack:
                node = stack.pop()
                collected.append(node)
                stack.extend(children.get(node["span_id"], []))
            return collected

        # -- one write, one tree ------------------------------------------
        roots = [span for span in spans
                 if span["name"] == "client.rate"
                 and span["parent_id"] is None]
        assert roots, "no traced client.rate root span recorded"
        root = roots[-1]  # the clean post-storm write
        tree = subtree(root)
        names = {span["name"] for span in tree}
        required = {"client.attempt", "server.admit", "server.queue",
                    "wal.commit", "wal.append", "wal.fsync", "wal.ship",
                    "wal.follower_apply"}
        missing = required - names
        assert not missing, f"write trace is missing spans: {missing}"
        assert {span["trace_id"] for span in tree} == {root["trace_id"]}, \
            "write tree mixes trace ids"
        applies = [span for span in tree
                   if span["name"] == "wal.follower_apply"]
        assert len(applies) == args.replicas - 1, \
            f"{len(applies)} follower applies for {args.replicas} replicas"

        # -- durations nest ------------------------------------------------
        for span in tree:
            assert span["dur_ms"] <= root["dur_ms"] + 1.0, \
                f"{span['name']} outlasted its client root"
        assert root["dur_ms"] <= write_ms + 5.0, \
            "root span outlasted the observed client latency"
        commit = max((span for span in tree
                      if span["name"] == "wal.commit"),
                     key=lambda span: span["ts"])
        wal_children = [span for span in children.get(commit["span_id"], [])
                        if span["name"] in ("wal.append", "wal.fsync")]
        assert sum(span["dur_ms"] for span in wal_children) \
            <= commit["dur_ms"] + 1.0, "WAL children overflow wal.commit"

        # -- fusion fans in ------------------------------------------------
        windows = [span for span in spans
                   if span["name"] == "fusion.window"]
        assert windows, "no fused window was traced"
        shared = 0
        for window in windows:
            waiters = [span for span in children.get(window["span_id"], [])
                       if span["name"] == "fusion.waiter"]
            indexes = [span["attrs"]["index"] for span in waiters]
            assert sorted(indexes) == list(range(len(indexes))), \
                f"waiter indexes {indexes} do not cover response order"
            shared = max(shared, len(waiters))
        assert shared >= 2, "no window ever fused two traced waiters"

        # -- metrics unify -------------------------------------------------
        for prefix in ("serving.server.requests",
                       "serving.server.queue_wait_ms",
                       "serving.fusion.windows",
                       "wal.append.fsync_ms",
                       "wal.applied_seqno"):
            assert any(key.startswith(prefix) for key in snapshot), \
                f"registry snapshot lacks {prefix}"
        assert "n_folded_in" in flat, "flat stats alias dropped"
        assert any(key.startswith("serving.server.")
                   for key in health["metrics"]), \
            "health frame lost its dotted metrics view"

        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf8") as handle:
                for span in spans:
                    handle.write(json.dumps(span, sort_keys=True,
                                            default=str) + "\n")
        if args.metrics_out:
            payload = {
                "benchmark": "obs-smoke",
                "environment": machine_environment(),
                "replicas": args.replicas,
                "clients": args.clients,
                "tracer": tracer.stats(),
                "metrics": snapshot,
            }
            with open(args.metrics_out, "w", encoding="utf8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True,
                          default=str)
                handle.write("\n")
        print(f"OBS SMOKE OK: {len(spans)} spans from {args.clients} traced "
              f"clients over {args.replicas} replicas; write tree "
              f"client → admit → wal.commit → append/fsync → ship → "
              f"{len(applies)} follower applies in {root['dur_ms']:.2f} ms, "
              f"{len(windows)} fused windows (deepest {shared} waiters), "
              f"{len(snapshot)} registry series")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Train, snapshot, serve and query BPMF posteriors.")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train and write a snapshot")
    _add_snapshot_arg(train)
    _add_dataset_args(train)
    train.add_argument("--num-latent", type=int, default=8)
    train.add_argument("--alpha", type=float, default=4.0)
    train.add_argument("--burn-in", type=int, default=5)
    train.add_argument("--n-samples", type=int, default=10)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--backend", choices=_BACKENDS, default="sequential")
    train.add_argument("--threads", type=int, default=2,
                       help="threads for --backend multicore")
    train.add_argument("--engine", choices=_ENGINES, default="batched",
                       help="update-engine: batched (default), shared "
                            "(process pool over shared memory), reference")
    train.add_argument("--workers", type=int, default=None,
                       help="process-pool size for --engine shared")
    train.add_argument("--checkpoint-every", type=int, default=None,
                       help="save every k sweeps (default: final sweep only)")
    train.add_argument("--resume", default=None,
                       help="snapshot to continue from")
    train.set_defaults(func=_cmd_train)

    info = commands.add_parser("info", help="describe a snapshot")
    _add_snapshot_arg(info)
    info.set_defaults(func=_cmd_info)

    query = commands.add_parser("query", help="one-shot predictions / top-N")
    _add_snapshot_arg(query)
    query.add_argument("--mode", choices=("mean", "last"), default="mean")
    query.add_argument("--user", type=int, default=None)
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--pairs", nargs="*", default=[],
                       help="user:item pairs, e.g. 0:3 7:12")
    query.set_defaults(func=_cmd_query)

    serve = commands.add_parser("serve",
                                help="answer a line protocol on stdin")
    _add_snapshot_arg(serve)
    serve.add_argument("--mode", choices=("mean", "last"), default="mean")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve through an N-shard worker-pool gateway "
                            "(0 = single-process)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes for --shards (default: one "
                            "per shard)")
    serve.add_argument("--watch", action="store_true",
                       help="hot-swap new versions of --snapshot while "
                            "serving (requires --shards)")
    serve.add_argument("--watch-interval", type=float, default=0.5,
                       help="snapshot poll period in seconds")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="serve the framed RPC protocol over TCP "
                            "instead of the stdin line protocol")
    serve.add_argument("--replicas", type=int, default=1,
                       help="independent gateway replicas for --tcp "
                            "(ports PORT..PORT+N-1)")
    serve.add_argument("--fuse-window", type=float, default=2.0,
                       metavar="MS",
                       help="fallback window for fused top-N dispatch, the "
                            "default --tcp path (0 disables fusion)")
    serve.add_argument("--fuse-max-batch", type=int, default=64,
                       help="flush a fusion window early at this many "
                            "requests")
    serve.add_argument("--max-in-flight", type=int, default=64,
                       help="bound on concurrently admitted requests per "
                            "replica (--tcp)")
    serve.add_argument("--wal", default=None, metavar="DIR",
                       help="directory for the write leader's durable "
                            "mutation log (--tcp; default: in-memory log "
                            "— replication without crash durability)")
    serve.add_argument("--cooldown", type=float, default=1.0,
                       help="base backoff after a failed follower "
                            "shipment, seconds (doubles per consecutive "
                            "failure)")
    serve.add_argument("--backoff-max", type=float, default=30.0,
                       help="cap on the exponential shipment backoff, "
                            "seconds")
    serve.add_argument("--wal-sync-every", type=int, default=1,
                       help="fsync the log every N appends (1 = before "
                            "every ack, the strict default)")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="enable request tracing and stream finished "
                            "spans to JSONL files in DIR (--tcp; default: "
                            "tracing off)")
    _add_log_level(serve)
    serve.set_defaults(func=_cmd_serve)

    smoke = commands.add_parser("smoke",
                                help="end-to-end train/snapshot/serve check")
    _add_log_level(smoke)
    smoke.set_defaults(func=_cmd_smoke)

    cluster_smoke = commands.add_parser(
        "cluster-smoke",
        help="sharded gateway + hot-swap + bit-parity self check")
    cluster_smoke.add_argument("--shards", type=int, default=2)
    cluster_smoke.add_argument("--latency-out", default=None,
                               help="write observed latencies to this JSON")
    _add_log_level(cluster_smoke)
    cluster_smoke.set_defaults(func=_cmd_cluster_smoke)

    net_smoke = commands.add_parser(
        "net-smoke",
        help="TCP frontend + fusion parity + replica failover self check")
    net_smoke.add_argument("--replicas", type=int, default=2)
    net_smoke.add_argument("--fuse-window", type=float, default=2.0,
                           metavar="MS", help="0 disables fusion")
    net_smoke.add_argument("--encoding", choices=("json", "binary"),
                           default="binary",
                           help="wire encoding the smoke clients negotiate")
    net_smoke.add_argument("--pipeline", action="store_true",
                           help="also run a pipelined top-N parity pass")
    net_smoke.add_argument("--cooldown", type=float, default=0.05,
                           help="client failover backoff base, seconds")
    net_smoke.add_argument("--backoff-max", type=float, default=1.0,
                           help="client failover backoff cap, seconds")
    net_smoke.add_argument("--latency-out", default=None,
                           help="write observed latencies to this JSON")
    _add_log_level(net_smoke)
    net_smoke.set_defaults(func=_cmd_net_smoke)

    wal_smoke = commands.add_parser(
        "wal-smoke",
        help="durable mutation log: storm + leader kill + convergence "
             "self check")
    wal_smoke.add_argument("--replicas", type=int, default=3)
    wal_smoke.add_argument("--writes", type=int, default=240,
                           help="total mutations across the writer storm")
    wal_smoke.add_argument("--wal-sync-every", type=int, default=1,
                           help="fsync cadence under test (1 = every ack)")
    wal_smoke.add_argument("--cooldown", type=float, default=0.05,
                           help="client failover backoff base, seconds")
    wal_smoke.add_argument("--backoff-max", type=float, default=1.0,
                           help="client failover backoff cap, seconds")
    wal_smoke.add_argument("--latency-out", default=None,
                           help="write mutation latencies to this JSON")
    _add_log_level(wal_smoke)
    wal_smoke.set_defaults(func=_cmd_wal_smoke)

    chaos_smoke = commands.add_parser(
        "chaos-smoke",
        help="seeded fault-injection drill against a replica fleet")
    chaos_smoke.add_argument("--seed", type=int, default=0,
                             help="fault schedule seed (same seed, same "
                                  "schedule, byte for byte)")
    chaos_smoke.add_argument("--replicas", type=int, default=3)
    chaos_smoke.add_argument("--writes", type=int, default=120,
                             help="acked mutations the storm commits")
    chaos_smoke.add_argument("--faults", type=int, default=24,
                             help="per-site fault events to schedule")
    chaos_smoke.add_argument("--horizon", type=int, default=150,
                             help="call-step range the per-site faults "
                                  "land in")
    chaos_smoke.add_argument("--fleet-events", type=int, default=3,
                             help="kill/pause events on the fleet timeline")
    chaos_smoke.add_argument("--fleet-span", type=float, default=5.0,
                             help="seconds the fleet timeline spans")
    chaos_smoke.add_argument("--deadline-ms", type=float, default=2000.0,
                             help="per-read deadline budget")
    chaos_smoke.add_argument("--cooldown", type=float, default=0.05,
                             help="failover/shipping backoff base, seconds")
    chaos_smoke.add_argument("--backoff-max", type=float, default=1.0,
                             help="failover/shipping backoff cap, seconds")
    chaos_smoke.add_argument("--report-out", default=None,
                             help="write the schedule + fault log + "
                                  "invariant report as JSON")
    chaos_smoke.add_argument("--trace-out", default=None,
                             help="trace the drill and write the recorded "
                                  "spans (fired faults annotated) to this "
                                  "JSONL file")
    _add_log_level(chaos_smoke)
    chaos_smoke.set_defaults(func=_cmd_chaos_smoke)

    obs_smoke = commands.add_parser(
        "obs-smoke",
        help="traced storm: span-tree, fusion and metrics-registry "
             "self check")
    obs_smoke.add_argument("--replicas", type=int, default=3)
    obs_smoke.add_argument("--clients", type=int, default=4,
                           help="concurrent traced storm clients")
    obs_smoke.add_argument("--fuse-window", type=float, default=20.0,
                           metavar="MS",
                           help="fusion window under test (wide, so the "
                                "storm reliably shares windows)")
    obs_smoke.add_argument("--trace-out", default=None,
                           help="write the recorded spans to this JSONL "
                                "file")
    obs_smoke.add_argument("--metrics-out", default=None,
                           help="write the fleet registry snapshot to "
                                "this JSON")
    _add_log_level(obs_smoke)
    obs_smoke.set_defaults(func=_cmd_obs_smoke)

    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        set_verbosity(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
