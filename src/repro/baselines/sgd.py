"""Stochastic gradient descent (SGD) matrix factorization.

Implements the biased matrix-factorization SGD of Koren, Bell & Volinsky
("Matrix factorization techniques for recommender systems", IEEE Computer
2009), the second baseline algorithm cited by the paper.  Each observed
rating contributes one gradient step on the user factor, movie factor and
both biases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.metrics import rmse
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["SGDConfig", "SGDResult", "run_sgd"]


@dataclass(frozen=True)
class SGDConfig:
    """SGD hyperparameters (learning rate and L2 regularisation need tuning)."""

    num_latent: int = 16
    n_epochs: int = 30
    learning_rate: float = 0.01
    regularization: float = 0.05
    learning_rate_decay: float = 0.95
    init_std: float = 0.1
    use_biases: bool = True

    def __post_init__(self):
        check_positive("num_latent", self.num_latent)
        check_positive("n_epochs", self.n_epochs)
        check_positive("learning_rate", self.learning_rate)
        check_non_negative("regularization", self.regularization)
        check_positive("learning_rate_decay", self.learning_rate_decay)
        check_positive("init_std", self.init_std)


@dataclass
class SGDResult:
    """Fitted factors, biases and RMSE traces."""

    config: SGDConfig
    user_factors: np.ndarray
    movie_factors: np.ndarray
    user_bias: np.ndarray
    movie_bias: np.ndarray
    global_bias: float
    train_rmse: List[float] = field(default_factory=list)
    test_rmse: List[float] = field(default_factory=list)

    @property
    def final_rmse(self) -> float:
        trace = self.test_rmse or self.train_rmse
        return trace[-1]

    def predict(self, users: np.ndarray, movies: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        movies = np.asarray(movies, dtype=np.int64)
        preds = np.einsum("ij,ij->i", self.user_factors[users],
                          self.movie_factors[movies])
        if self.config.use_biases:
            preds = preds + self.global_bias + self.user_bias[users] + self.movie_bias[movies]
        return preds


def run_sgd(train: RatingMatrix, split: Optional[RatingSplit] = None,
            config: Optional[SGDConfig] = None, seed: SeedLike = 0,
            **overrides) -> SGDResult:
    """Fit biased-MF SGD with per-epoch shuffling and decayed learning rate."""
    if config is None:
        config = SGDConfig(**overrides)
    elif overrides:
        config = SGDConfig(**{**config.__dict__, **overrides})

    rng = as_generator(seed)
    k = config.num_latent
    user_factors = rng.normal(0.0, config.init_std, size=(train.n_users, k))
    movie_factors = rng.normal(0.0, config.init_std, size=(train.n_movies, k))
    user_bias = np.zeros(train.n_users)
    movie_bias = np.zeros(train.n_movies)
    global_bias = train.mean_rating() if config.use_biases else 0.0

    users, movies, values = train.triplets()
    if split is not None and split.n_test > 0:
        test_users, test_movies, test_values = split.test_triplets()
    else:
        test_users = test_movies = test_values = None

    result = SGDResult(config=config, user_factors=user_factors,
                       movie_factors=movie_factors, user_bias=user_bias,
                       movie_bias=movie_bias, global_bias=global_bias)

    lr = config.learning_rate
    reg = config.regularization
    n = values.shape[0]
    for _ in range(config.n_epochs):
        order = rng.permutation(n)
        for idx in order:
            u, m, r = users[idx], movies[idx], values[idx]
            pu = user_factors[u]
            qm = movie_factors[m]
            pred = pu @ qm
            if config.use_biases:
                pred += global_bias + user_bias[u] + movie_bias[m]
            err = r - pred
            if config.use_biases:
                user_bias[u] += lr * (err - reg * user_bias[u])
                movie_bias[m] += lr * (err - reg * movie_bias[m])
            # Simultaneous update of both factor vectors.
            pu_new = pu + lr * (err * qm - reg * pu)
            qm_new = qm + lr * (err * pu - reg * qm)
            user_factors[u] = pu_new
            movie_factors[m] = qm_new
        lr *= config.learning_rate_decay

        predicted_train = result.predict(users, movies)
        result.train_rmse.append(rmse(predicted_train, values))
        if test_values is not None:
            result.test_rmse.append(rmse(result.predict(test_users, test_movies),
                                         test_values))
    return result
