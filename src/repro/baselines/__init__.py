"""Baseline matrix-factorization algorithms.

The paper positions BPMF against the two other popular low-rank
factorization algorithms — alternating least squares (ALS, Zhou et al.) and
stochastic gradient descent (SGD, Koren et al.) — noting BPMF's robustness
to overfitting and freedom from regularisation tuning at a higher
computational cost.  Both baselines are implemented here so the examples
and extension benchmarks can reproduce that comparison.
"""

from repro.baselines.als import ALSConfig, ALSResult, run_als
from repro.baselines.sgd import SGDConfig, SGDResult, run_sgd

__all__ = [
    "ALSConfig",
    "ALSResult",
    "run_als",
    "SGDConfig",
    "SGDResult",
    "run_sgd",
]
