"""Alternating least squares (ALS) matrix factorization.

Implements the weighted-lambda-regularised ALS of Zhou et al. ("Large-scale
Parallel Collaborative Filtering for the Netflix Prize", AAIM 2008), the
first baseline algorithm the paper cites.  Each half-iteration solves, per
item, the ridge-regression normal equations

.. math::

    U_u = (V_{R(u)}^\\top V_{R(u)} + \\lambda n_u I)^{-1} V_{R(u)}^\\top r_u

which is the same K x K linear-algebra kernel as BPMF's conditional update
minus the sampling — making ALS a natural cost reference point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.core.metrics import rmse
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ALSConfig", "ALSResult", "run_als"]


@dataclass(frozen=True)
class ALSConfig:
    """ALS hyperparameters.

    ``regularization`` is the lambda of weighted-lambda regularisation; it
    must be tuned per dataset — exactly the cross-validation burden the
    Bayesian treatment in BPMF removes.
    """

    num_latent: int = 16
    n_iterations: int = 20
    regularization: float = 0.1
    init_std: float = 0.3
    weighted_regularization: bool = True

    def __post_init__(self):
        check_positive("num_latent", self.num_latent)
        check_positive("n_iterations", self.n_iterations)
        check_non_negative("regularization", self.regularization)
        check_positive("init_std", self.init_std)


@dataclass
class ALSResult:
    """Fitted factors and the per-iteration RMSE traces."""

    config: ALSConfig
    user_factors: np.ndarray
    movie_factors: np.ndarray
    train_rmse: List[float] = field(default_factory=list)
    test_rmse: List[float] = field(default_factory=list)

    @property
    def final_rmse(self) -> float:
        """Test RMSE after the last iteration (train RMSE if no test set)."""
        trace = self.test_rmse or self.train_rmse
        return trace[-1]

    def predict(self, users: np.ndarray, movies: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        movies = np.asarray(movies, dtype=np.int64)
        return np.einsum("ij,ij->i", self.user_factors[users],
                         self.movie_factors[movies])


def _solve_side(target_factors: np.ndarray, source_factors: np.ndarray,
                ratings_axis, config: ALSConfig) -> None:
    """Solve the normal equations for every item of one side, in place."""
    k = config.num_latent
    eye = np.eye(k)
    for item in range(target_factors.shape[0]):
        idx, values = ratings_axis.slice(item)
        n = idx.shape[0]
        if n == 0:
            target_factors[item] = 0.0
            continue
        neighbours = source_factors[idx]
        reg = config.regularization * (n if config.weighted_regularization else 1.0)
        gram = neighbours.T @ neighbours + reg * eye
        rhs = neighbours.T @ values
        chol = cho_factor(gram, lower=True)
        target_factors[item] = cho_solve(chol, rhs)


def run_als(train: RatingMatrix, split: Optional[RatingSplit] = None,
            config: Optional[ALSConfig] = None, seed: SeedLike = 0,
            **overrides) -> ALSResult:
    """Fit ALS on a rating matrix and trace train/test RMSE per iteration."""
    if config is None:
        config = ALSConfig(**overrides)
    elif overrides:
        config = ALSConfig(**{**config.__dict__, **overrides})

    rng = as_generator(seed)
    k = config.num_latent
    user_factors = rng.normal(0.0, config.init_std, size=(train.n_users, k))
    movie_factors = rng.normal(0.0, config.init_std, size=(train.n_movies, k))

    train_users, train_movies, train_values = train.triplets()
    if split is not None and split.n_test > 0:
        test_users, test_movies, test_values = split.test_triplets()
    else:
        test_users = test_movies = test_values = None

    result = ALSResult(config=config, user_factors=user_factors,
                       movie_factors=movie_factors)
    for _ in range(config.n_iterations):
        _solve_side(movie_factors, user_factors, train.by_movie, config)
        _solve_side(user_factors, movie_factors, train.by_user, config)
        predicted_train = np.einsum("ij,ij->i", user_factors[train_users],
                                    movie_factors[train_movies])
        result.train_rmse.append(rmse(predicted_train, train_values))
        if test_values is not None:
            predicted_test = np.einsum("ij,ij->i", user_factors[test_users],
                                       movie_factors[test_movies])
            result.test_rmse.append(rmse(predicted_test, test_values))
    return result
