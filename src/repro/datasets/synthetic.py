"""Ground-truth low-rank synthetic datasets.

These datasets are generated exactly from the BPMF generative model
(``R = U V^T + noise`` with Gaussian factors), so the sampler's ability to
recover the signal — and the equivalence of the sequential, multicore and
distributed samplers — can be tested against a known answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit, train_test_split
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["SyntheticConfig", "SyntheticDataset", "make_low_rank_dataset"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of the ground-truth low-rank generator."""

    n_users: int = 200
    n_movies: int = 150
    rank: int = 8
    density: float = 0.1
    noise_std: float = 0.3
    factor_std: float = 1.0
    global_bias: float = 0.0
    test_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self):
        check_positive("n_users", self.n_users)
        check_positive("n_movies", self.n_movies)
        check_positive("rank", self.rank)
        check_probability("density", self.density)
        check_probability("test_fraction", self.test_fraction)
        if self.noise_std < 0:
            raise ValueError("noise_std must be >= 0")


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated dataset together with its ground-truth factors."""

    config: SyntheticConfig
    ratings: RatingMatrix
    split: RatingSplit
    true_user_factors: np.ndarray
    true_movie_factors: np.ndarray

    @property
    def true_full_matrix(self) -> np.ndarray:
        """The noiseless dense matrix ``U V^T + bias`` (small sizes only)."""
        return (self.true_user_factors @ self.true_movie_factors.T
                + self.config.global_bias)


def make_low_rank_dataset(config: Optional[SyntheticConfig] = None,
                          **overrides) -> SyntheticDataset:
    """Generate a sparse rating matrix from the BPMF generative model.

    Keyword overrides are applied on top of ``config`` (or the defaults),
    e.g. ``make_low_rank_dataset(n_users=500, density=0.05)``.
    """
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        config = SyntheticConfig(**{**config.__dict__, **overrides})

    rng = as_generator(config.seed)
    scale = config.factor_std / np.sqrt(config.rank)
    user_factors = rng.normal(0.0, scale, size=(config.n_users, config.rank))
    movie_factors = rng.normal(0.0, scale, size=(config.n_movies, config.rank))

    n_cells = config.n_users * config.n_movies
    nnz = max(int(round(config.density * n_cells)), 1)
    nnz = min(nnz, n_cells)
    flat = rng.choice(n_cells, size=nnz, replace=False)
    users = (flat // config.n_movies).astype(np.int64)
    movies = (flat % config.n_movies).astype(np.int64)
    signal = np.einsum("ij,ij->i", user_factors[users], movie_factors[movies])
    noise = rng.normal(0.0, config.noise_std, size=nnz) if config.noise_std > 0 else 0.0
    values = signal + config.global_bias + noise

    coo = CooMatrix.from_arrays(config.n_users, config.n_movies, users, movies, values)
    ratings = RatingMatrix.from_coo(coo)
    split = train_test_split(ratings, test_fraction=config.test_fraction,
                             seed=config.seed + 1)
    return SyntheticDataset(
        config=config,
        ratings=ratings,
        split=split,
        true_user_factors=user_factors,
        true_movie_factors=movie_factors,
    )
