"""Degree (ratings-per-item) distribution models.

Real recommendation datasets have heavy-tailed degree distributions: a few
compounds in ChEMBL have tens of thousands of measured activities while
most have a handful, and likewise for MovieLens users.  That skew is what
creates the load imbalance the paper addresses, so the synthetic generators
sample per-item degrees from explicit heavy-tailed models rather than
uniformly at random.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["power_law_degrees", "lognormal_degrees", "scale_degrees_to_nnz"]


def power_law_degrees(
    n: int,
    exponent: float = 1.8,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample ``n`` degrees from a discrete power law ``P(d) ∝ d^-exponent``.

    Uses inverse-CDF sampling of the continuous Pareto and rounds down,
    which is accurate enough for workload modelling.
    """
    check_positive("n", n)
    check_positive("exponent", exponent)
    check_positive("min_degree", min_degree)
    rng = as_generator(seed)
    if max_degree is None:
        max_degree = max(min_degree * 1000, 10)
    if max_degree < min_degree:
        raise ValueError("max_degree must be >= min_degree")
    u = rng.random(n)
    # Truncated Pareto inverse CDF on [min_degree, max_degree].
    a = exponent - 1.0
    if abs(a) < 1e-12:
        # exponent == 1: log-uniform.
        degrees = min_degree * np.exp(u * np.log(max_degree / min_degree))
    else:
        lo = min_degree ** (-a)
        hi = max_degree ** (-a)
        degrees = (lo + u * (hi - lo)) ** (-1.0 / a)
    return np.clip(np.floor(degrees), min_degree, max_degree).astype(np.int64)


def lognormal_degrees(
    n: int,
    mean_log: float = 2.0,
    sigma_log: float = 1.0,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample degrees from a log-normal distribution (MovieLens-user-like)."""
    check_positive("n", n)
    check_positive("sigma_log", sigma_log)
    rng = as_generator(seed)
    degrees = np.exp(rng.normal(mean_log, sigma_log, size=n))
    degrees = np.maximum(np.floor(degrees), min_degree)
    if max_degree is not None:
        degrees = np.minimum(degrees, max_degree)
    return degrees.astype(np.int64)


def scale_degrees_to_nnz(degrees: np.ndarray, target_nnz: int,
                         min_degree: int = 1,
                         max_degree: int | None = None) -> np.ndarray:
    """Rescale a degree vector so it sums (approximately) to ``target_nnz``.

    The shape of the distribution is preserved; only the scale changes.
    Rounding error is corrected by distributing the residual one unit at a time
    over the largest elements, so the result sums exactly to ``target_nnz``
    whenever that is feasible under the min/max constraints.
    """
    check_positive("target_nnz", target_nnz)
    degrees = np.asarray(degrees, dtype=np.float64)
    if degrees.size == 0:
        return degrees.astype(np.int64)
    scale = target_nnz / degrees.sum()
    scaled = np.maximum(np.floor(degrees * scale), min_degree)
    if max_degree is not None:
        scaled = np.minimum(scaled, max_degree)
    scaled = scaled.astype(np.int64)
    deficit = int(target_nnz - scaled.sum())
    if deficit == 0:
        return scaled
    order = np.argsort(-degrees, kind="stable")
    step = 1 if deficit > 0 else -1
    i = 0
    remaining = abs(deficit)
    while remaining > 0 and i < 100 * degrees.size:
        idx = order[i % degrees.size]
        candidate = scaled[idx] + step
        ok = candidate >= min_degree and (max_degree is None or candidate <= max_degree)
        if ok:
            scaled[idx] = candidate
            remaining -= 1
        i += 1
    return scaled
