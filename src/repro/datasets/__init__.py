"""Dataset generators for the BPMF reproduction.

The paper evaluates on two datasets that are not redistributable offline:

* **ChEMBL v20 IC50 subset** — ~1 023 952 activities over 483 500 compounds
  ("users") x 5 775 protein targets ("movies").
* **MovieLens ml-20m** — 20 M ratings over 138 493 users x 27 278 movies.

This package generates synthetic stand-ins that preserve the two properties
the paper's parallelization actually depends on: the *sparsity level* and
the *heavy-tailed distribution of ratings per item* (which creates the load
imbalance that motivates work stealing and the hybrid update rule).  A
ground-truth low-rank generator is also provided so correctness tests can
verify that BPMF recovers a known signal.
"""

from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.datasets.degree_models import (
    power_law_degrees,
    lognormal_degrees,
    scale_degrees_to_nnz,
)
from repro.datasets.chembl import ChemblLikeConfig, make_chembl_like
from repro.datasets.movielens import MovieLensLikeConfig, make_movielens_like
from repro.datasets.scaling_workload import ScalingWorkloadConfig, make_scaling_workload
from repro.datasets.registry import DatasetSpec, available_datasets, load_dataset

__all__ = [
    "SyntheticConfig",
    "make_low_rank_dataset",
    "power_law_degrees",
    "lognormal_degrees",
    "scale_degrees_to_nnz",
    "ChemblLikeConfig",
    "make_chembl_like",
    "MovieLensLikeConfig",
    "make_movielens_like",
    "ScalingWorkloadConfig",
    "make_scaling_workload",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
]
