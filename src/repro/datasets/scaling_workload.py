"""Paper-scale workload generator for the strong-scaling study.

The Figure 4/5 experiments only need the *structure* of the rating matrix
(who rated what, and how many ratings each user/movie has) — the rating
values never influence the timing model.  This generator therefore builds a
bipartite configuration-model graph with prescribed marginal degree
distributions (log-normal user activity, power-law movie popularity, the
same models the MovieLens-like generator uses) entirely with vectorised
numpy operations, so a workload with the full ml-20m item counts and
millions of ratings is produced in seconds.

A light block structure is overlaid (users and movies are grouped into
``n_communities`` communities and a ``community_bias`` fraction of each
user's ratings stay inside their community), reflecting the genre/taste
clustering of real rating data that makes the paper's locality-aware
reordering worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.degree_models import (
    lognormal_degrees,
    power_law_degrees,
    scale_degrees_to_nnz,
)
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["ScalingWorkloadConfig", "make_scaling_workload"]


@dataclass(frozen=True)
class ScalingWorkloadConfig:
    """Configuration of the structural workload generator.

    The defaults produce a quarter-scale MovieLens-20M-shaped workload
    (same user and movie counts, 5 M ratings) that the scaling model can
    sweep to 1024 nodes in reasonable time; pass ``n_ratings=20_000_000``
    for the full-size structure.
    """

    n_users: int = 138_493
    n_movies: int = 27_278
    n_ratings: int = 5_000_000
    user_mean_log: float = 4.0
    user_sigma_log: float = 1.1
    movie_exponent: float = 1.3
    n_communities: int = 32
    community_bias: float = 0.7
    seed: int = 0

    def __post_init__(self):
        check_positive("n_users", self.n_users)
        check_positive("n_movies", self.n_movies)
        check_positive("n_ratings", self.n_ratings)
        check_positive("n_communities", self.n_communities)
        check_probability("community_bias", self.community_bias)


def make_scaling_workload(config: ScalingWorkloadConfig | None = None,
                          **overrides) -> RatingMatrix:
    """Generate a structural rating matrix for the scaling study."""
    if config is None:
        config = ScalingWorkloadConfig(**overrides)
    elif overrides:
        config = ScalingWorkloadConfig(**{**config.__dict__, **overrides})

    rng = as_generator(config.seed)
    n_users, n_movies = config.n_users, config.n_movies
    n_ratings = min(config.n_ratings, n_users * n_movies)

    # Per-user rating counts with the real dataset's heavy-tailed activity.
    user_degrees = lognormal_degrees(
        n_users, mean_log=config.user_mean_log, sigma_log=config.user_sigma_log,
        min_degree=1, max_degree=n_movies, seed=rng)
    user_degrees = scale_degrees_to_nnz(user_degrees, n_ratings,
                                        min_degree=1, max_degree=n_movies)
    # Movie popularity used as sampling weights.
    movie_weights = power_law_degrees(
        n_movies, exponent=config.movie_exponent, min_degree=1,
        max_degree=10 * n_users, seed=rng).astype(np.float64)

    # Communities: contiguous user blocks and contiguous movie blocks; a
    # biased coin decides whether each rating stays inside the community.
    communities = config.n_communities
    user_community = (np.arange(n_users) * communities // n_users)
    movie_community = (np.arange(n_movies) * communities // n_movies)
    movies_by_community = [np.nonzero(movie_community == c)[0]
                           for c in range(communities)]
    weights_by_community = [movie_weights[idx] / movie_weights[idx].sum()
                            for idx in movies_by_community]
    global_weights = movie_weights / movie_weights.sum()

    users_col = np.repeat(np.arange(n_users, dtype=np.int64), user_degrees)
    total = int(users_col.shape[0])
    movies_col = np.empty(total, dtype=np.int64)

    # Draw all "local" picks community-by-community and all "global" picks in
    # one shot; duplicates within a user are tolerated (they are removed by
    # the RatingMatrix de-duplication and only shift nnz by a tiny fraction).
    local_mask = rng.random(total) < config.community_bias
    entry_community = user_community[users_col]
    for community in range(communities):
        select = local_mask & (entry_community == community)
        count = int(select.sum())
        if count:
            movies_col[select] = rng.choice(
                movies_by_community[community], size=count, replace=True,
                p=weights_by_community[community])
    n_global = int((~local_mask).sum())
    if n_global:
        movies_col[~local_mask] = rng.choice(
            n_movies, size=n_global, replace=True, p=global_weights)

    values = rng.normal(3.5, 1.0, size=total)
    coo = CooMatrix.from_arrays(n_users, n_movies, users_col, movies_col, values)
    return RatingMatrix.from_coo(coo)
