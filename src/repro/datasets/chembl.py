"""ChEMBL-like synthetic dataset generator.

The ChEMBL v20 IC50 subset used in the paper has ~1 023 952 activities over
483 500 compounds (rows / "users") and 5 775 protein targets (columns /
"movies").  Two structural properties matter for the reproduction:

* rows are extremely sparse on average (~2 activities per compound) while
  *columns* are heavy-tailed: a few well-studied targets have tens of
  thousands of measured compounds — these are the items whose updates
  dominate the runtime and motivate the hybrid update rule;
* values are pIC50-like continuous numbers (roughly 4–10).

The generator reproduces this shape at a configurable scale (the default is
scaled down ~50x so tests and benches run in seconds) while keeping the
same average row degree and the same heavy-tailed column-degree law.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.degree_models import power_law_degrees, scale_degrees_to_nnz
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit, train_test_split
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["ChemblLikeConfig", "ChemblLikeDataset", "make_chembl_like",
           "CHEMBL_PAPER_SHAPE"]

#: The dataset shape reported in Section V-B of the paper.
CHEMBL_PAPER_SHAPE = {
    "n_compounds": 483_500,
    "n_targets": 5_775,
    "n_activities": 1_023_952,
}


@dataclass(frozen=True)
class ChemblLikeConfig:
    """Scaled ChEMBL-like generator configuration.

    ``scale`` divides the paper's compound/target/activity counts; the
    default ``scale=50`` gives ~9 670 compounds x 115 targets x ~20 500
    activities, small enough for unit tests yet preserving the degree skew.
    """

    scale: float = 50.0
    rank: int = 8
    noise_std: float = 0.6
    column_exponent: float = 1.4
    value_center: float = 6.5
    value_spread: float = 1.2
    test_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self):
        check_positive("scale", self.scale)
        check_positive("rank", self.rank)
        check_positive("column_exponent", self.column_exponent)
        check_probability("test_fraction", self.test_fraction)

    @property
    def n_compounds(self) -> int:
        return max(int(CHEMBL_PAPER_SHAPE["n_compounds"] / self.scale), 10)

    @property
    def n_targets(self) -> int:
        return max(int(CHEMBL_PAPER_SHAPE["n_targets"] / self.scale), 5)

    @property
    def n_activities(self) -> int:
        return max(int(CHEMBL_PAPER_SHAPE["n_activities"] / self.scale), 50)


@dataclass(frozen=True)
class ChemblLikeDataset:
    """Generated ChEMBL-like dataset (compounds act as users, targets as movies)."""

    config: ChemblLikeConfig
    ratings: RatingMatrix
    split: RatingSplit


def make_chembl_like(config: ChemblLikeConfig | None = None, **overrides) -> ChemblLikeDataset:
    """Generate a ChEMBL-like bioactivity matrix.

    Activities are assigned by sampling, for each activity, a target with
    probability proportional to its power-law popularity and a compound
    (approximately) uniformly — reproducing "few very popular targets, long
    tail of compounds with one or two measurements".
    """
    if config is None:
        config = ChemblLikeConfig(**overrides)
    elif overrides:
        config = ChemblLikeConfig(**{**config.__dict__, **overrides})

    rng = as_generator(config.seed)
    n_compounds = config.n_compounds
    n_targets = config.n_targets
    n_activities = min(config.n_activities, n_compounds * n_targets)

    # Heavy-tailed target popularity (column degrees).
    target_degrees = power_law_degrees(
        n_targets, exponent=config.column_exponent, min_degree=1,
        max_degree=n_compounds, seed=rng,
    )
    target_degrees = scale_degrees_to_nnz(
        target_degrees, n_activities, min_degree=1, max_degree=n_compounds)

    # Latent pharmacology signal so the matrix is genuinely low-rank + noise.
    scale = 1.0 / np.sqrt(config.rank)
    compound_factors = rng.normal(0.0, scale, size=(n_compounds, config.rank))
    target_factors = rng.normal(0.0, scale, size=(n_targets, config.rank))

    rows = []
    cols = []
    vals = []
    for target in range(n_targets):
        degree = int(target_degrees[target])
        if degree <= 0:
            continue
        compounds = rng.choice(n_compounds, size=degree, replace=False)
        signal = compound_factors[compounds] @ target_factors[target]
        values = (config.value_center
                  + config.value_spread * signal
                  + rng.normal(0.0, config.noise_std, size=degree))
        rows.append(compounds.astype(np.int64))
        cols.append(np.full(degree, target, dtype=np.int64))
        vals.append(values)

    coo = CooMatrix.from_arrays(
        n_compounds, n_targets,
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
    )
    ratings = RatingMatrix.from_coo(coo)
    split = train_test_split(ratings, test_fraction=config.test_fraction,
                             seed=config.seed + 1)
    return ChemblLikeDataset(config=config, ratings=ratings, split=split)
