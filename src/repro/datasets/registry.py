"""Named dataset registry.

Benchmarks and examples refer to workloads by name (``"synthetic-small"``,
``"chembl-like"``, ``"movielens-like"`` …); the registry maps those names to
generator calls with fixed, documented parameters so every experiment in
EXPERIMENTS.md is reproducible from its name alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.datasets.chembl import ChemblLikeConfig, make_chembl_like
from repro.datasets.movielens import MovieLensLikeConfig, make_movielens_like
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.validation import check_in

__all__ = ["DatasetSpec", "available_datasets", "load_dataset", "register_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named workload: its description and a zero-argument loader."""

    name: str
    description: str
    loader: Callable[[], Tuple[RatingMatrix, RatingSplit]]


def _synthetic(name: str, **kwargs) -> DatasetSpec:
    def load() -> Tuple[RatingMatrix, RatingSplit]:
        data = make_low_rank_dataset(SyntheticConfig(**kwargs))
        return data.ratings, data.split

    return DatasetSpec(name, f"ground-truth low-rank synthetic {kwargs}", load)


def _chembl(name: str, **kwargs) -> DatasetSpec:
    def load() -> Tuple[RatingMatrix, RatingSplit]:
        data = make_chembl_like(ChemblLikeConfig(**kwargs))
        return data.ratings, data.split

    return DatasetSpec(name, f"ChEMBL-like bioactivity matrix {kwargs}", load)


def _movielens(name: str, **kwargs) -> DatasetSpec:
    def load() -> Tuple[RatingMatrix, RatingSplit]:
        data = make_movielens_like(MovieLensLikeConfig(**kwargs))
        return data.ratings, data.split

    return DatasetSpec(name, f"MovieLens-like star-rating matrix {kwargs}", load)


_REGISTRY: Dict[str, DatasetSpec] = {}


def register_dataset(spec: DatasetSpec, overwrite: bool = False) -> None:
    """Register a custom named dataset for use by the benchmark harness."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"dataset {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


for _spec in (
    _synthetic("synthetic-tiny", n_users=60, n_movies=40, rank=4,
               density=0.2, seed=7),
    _synthetic("synthetic-small", n_users=200, n_movies=150, rank=8,
               density=0.1, seed=7),
    _synthetic("synthetic-medium", n_users=800, n_movies=500, rank=12,
               density=0.05, seed=7),
    _chembl("chembl-like-tiny", scale=400.0, seed=11),
    _chembl("chembl-like", scale=50.0, seed=11),
    _movielens("movielens-like-tiny", scale=1500.0, seed=13),
    _movielens("movielens-like", scale=400.0, seed=13),
):
    register_dataset(_spec)


def available_datasets() -> Tuple[str, ...]:
    """Names of all registered datasets."""
    return tuple(sorted(_REGISTRY))


def load_dataset(name: str) -> Tuple[RatingMatrix, RatingSplit]:
    """Load a registered dataset by name, returning ``(ratings, split)``."""
    check_in("name", name, _REGISTRY.keys())
    return _REGISTRY[name].loader()
