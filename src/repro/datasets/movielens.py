"""MovieLens-like synthetic dataset generator.

MovieLens ml-20m (used for the distributed strong-scaling study, Figure 4)
has 20 M ratings from 138 493 users over 27 278 movies with 0.5–5.0 star
values in half-star steps.  The generator reproduces, at a configurable
scale, the log-normal-ish user activity distribution, the power-law movie
popularity, and the discrete star values, on top of a low-rank preference
signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.degree_models import (
    lognormal_degrees,
    power_law_degrees,
    scale_degrees_to_nnz,
)
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit, train_test_split
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["MovieLensLikeConfig", "MovieLensLikeDataset", "make_movielens_like",
           "MOVIELENS_PAPER_SHAPE"]

#: Shape of ml-20m as reported in Section V-B of the paper.
MOVIELENS_PAPER_SHAPE = {
    "n_users": 138_493,
    "n_movies": 27_278,
    "n_ratings": 20_000_000,
}


@dataclass(frozen=True)
class MovieLensLikeConfig:
    """Scaled MovieLens-like generator configuration.

    ``scale`` divides the published counts.  The default ``scale=400``
    yields ~346 users x 68 movies x 50 000 requested ratings (clamped by
    the matrix size); use ``scale=50`` or lower for more realistic density.
    """

    scale: float = 400.0
    rank: int = 10
    noise_std: float = 0.5
    movie_exponent: float = 1.3
    user_mean_log: float = 4.0
    user_sigma_log: float = 1.1
    test_fraction: float = 0.2
    discrete_stars: bool = True
    seed: int = 0

    def __post_init__(self):
        check_positive("scale", self.scale)
        check_positive("rank", self.rank)
        check_probability("test_fraction", self.test_fraction)

    @property
    def n_users(self) -> int:
        return max(int(MOVIELENS_PAPER_SHAPE["n_users"] / self.scale), 10)

    @property
    def n_movies(self) -> int:
        return max(int(MOVIELENS_PAPER_SHAPE["n_movies"] / self.scale), 5)

    @property
    def n_ratings(self) -> int:
        return max(int(MOVIELENS_PAPER_SHAPE["n_ratings"] / self.scale**1.5), 100)


@dataclass(frozen=True)
class MovieLensLikeDataset:
    """Generated MovieLens-like dataset."""

    config: MovieLensLikeConfig
    ratings: RatingMatrix
    split: RatingSplit


def _quantize_stars(values: np.ndarray) -> np.ndarray:
    """Map continuous preferences onto the 0.5–5.0 half-star scale."""
    return np.clip(np.round(values * 2.0) / 2.0, 0.5, 5.0)


def make_movielens_like(config: MovieLensLikeConfig | None = None,
                        **overrides) -> MovieLensLikeDataset:
    """Generate a MovieLens-like star-rating matrix."""
    if config is None:
        config = MovieLensLikeConfig(**overrides)
    elif overrides:
        config = MovieLensLikeConfig(**{**config.__dict__, **overrides})

    rng = as_generator(config.seed)
    n_users = config.n_users
    n_movies = config.n_movies
    n_ratings = min(config.n_ratings, n_users * n_movies)

    # Per-user activity (row degrees) and per-movie popularity used as
    # sampling weights for which movies a user rates.
    user_degrees = lognormal_degrees(
        n_users, mean_log=config.user_mean_log, sigma_log=config.user_sigma_log,
        min_degree=1, max_degree=n_movies, seed=rng)
    user_degrees = scale_degrees_to_nnz(user_degrees, n_ratings,
                                        min_degree=1, max_degree=n_movies)
    movie_popularity = power_law_degrees(
        n_movies, exponent=config.movie_exponent, min_degree=1,
        max_degree=10 * n_users, seed=rng).astype(np.float64)
    movie_probs = movie_popularity / movie_popularity.sum()

    scale = 1.0 / np.sqrt(config.rank)
    user_factors = rng.normal(0.0, scale, size=(n_users, config.rank))
    movie_factors = rng.normal(0.0, scale, size=(n_movies, config.rank))
    movie_bias = rng.normal(0.0, 0.35, size=n_movies)
    user_bias = rng.normal(0.0, 0.25, size=n_users)

    rows = []
    cols = []
    vals = []
    for user in range(n_users):
        degree = int(user_degrees[user])
        if degree <= 0:
            continue
        movies = rng.choice(n_movies, size=degree, replace=False, p=movie_probs)
        signal = movie_factors[movies] @ user_factors[user]
        values = (3.5 + user_bias[user] + movie_bias[movies] + 1.2 * signal
                  + rng.normal(0.0, config.noise_std, size=degree))
        if config.discrete_stars:
            values = _quantize_stars(values)
        rows.append(np.full(degree, user, dtype=np.int64))
        cols.append(movies.astype(np.int64))
        vals.append(values)

    coo = CooMatrix.from_arrays(
        n_users, n_movies,
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
    )
    ratings = RatingMatrix.from_coo(coo)
    split = train_test_split(ratings, test_fraction=config.test_fraction,
                             seed=config.seed + 1)
    return MovieLensLikeDataset(config=config, ratings=ratings, split=split)
