"""Coordinate-format (triplet) sparse matrix builder.

``CooMatrix`` is the mutable ingestion format: dataset generators and file
loaders append ``(row, col, value)`` triplets, then convert once to the
immutable :class:`repro.sparse.csr.RatingMatrix` used by the samplers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.utils.validation import ValidationError, check_non_negative, check_positive

__all__ = ["CooMatrix"]


@dataclass
class CooMatrix:
    """Sparse matrix in coordinate (COO) form.

    Parameters
    ----------
    n_rows, n_cols:
        Dense dimensions of the matrix (users x movies).
    rows, cols, values:
        Parallel arrays of triplets.  Duplicate ``(row, col)`` entries are
        allowed at construction; they are de-duplicated (last write wins)
        during conversion, matching how rating files are typically cleaned.
    """

    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CooMatrix":
        """An empty COO matrix of the given dense shape (zero extents allowed)."""
        check_non_negative("n_rows", n_rows)
        check_non_negative("n_cols", n_cols)
        return cls(
            n_rows=n_rows,
            n_cols=n_cols,
            rows=np.empty(0, dtype=np.int64),
            cols=np.empty(0, dtype=np.int64),
            values=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_triplets(
        cls,
        n_rows: int,
        n_cols: int,
        triplets: Iterable[Tuple[int, int, float]],
    ) -> "CooMatrix":
        """Build from an iterable of ``(row, col, value)`` tuples."""
        triplets = list(triplets)
        if triplets:
            rows, cols, values = map(np.asarray, zip(*triplets))
        else:
            rows = cols = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.float64)
        return cls(
            n_rows=n_rows,
            n_cols=n_cols,
            rows=rows.astype(np.int64),
            cols=cols.astype(np.int64),
            values=values.astype(np.float64),
        )

    @classmethod
    def from_arrays(
        cls,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ) -> "CooMatrix":
        """Build from parallel numpy arrays (copied and validated)."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if not (rows.shape == cols.shape == values.shape):
            raise ValidationError(
                f"rows/cols/values must have identical length, got "
                f"{rows.shape}, {cols.shape}, {values.shape}"
            )
        matrix = cls(n_rows=n_rows, n_cols=n_cols, rows=rows.copy(),
                     cols=cols.copy(), values=values.copy())
        matrix.validate()
        return matrix

    # -- mutation ---------------------------------------------------------

    def append(self, rows, cols, values) -> "CooMatrix":
        """Append triplets (arrays or scalars); returns ``self`` for chaining."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if not (rows.shape == cols.shape == values.shape):
            raise ValidationError("appended rows/cols/values must align")
        self.rows = np.concatenate([self.rows, rows])
        self.cols = np.concatenate([self.cols, cols])
        self.values = np.concatenate([self.values, values])
        return self

    # -- queries ----------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before de-duplication)."""
        return int(self.rows.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def density(self) -> float:
        """Fraction of cells with a stored entry."""
        return self.nnz / float(self.n_rows * self.n_cols)

    def validate(self) -> None:
        """Raise :class:`ValidationError` on out-of-range indices or NaNs."""
        if self.nnz == 0:
            return
        if self.rows.min() < 0 or self.rows.max() >= self.n_rows:
            raise ValidationError(
                f"row indices out of range [0, {self.n_rows}): "
                f"min={self.rows.min()}, max={self.rows.max()}"
            )
        if self.cols.min() < 0 or self.cols.max() >= self.n_cols:
            raise ValidationError(
                f"column indices out of range [0, {self.n_cols}): "
                f"min={self.cols.min()}, max={self.cols.max()}"
            )
        if np.isnan(self.values).any():
            raise ValidationError("rating values contain NaN")

    def deduplicate(self) -> "CooMatrix":
        """Return a copy with duplicate ``(row, col)`` entries removed.

        The *last* occurrence wins, matching typical rating-log semantics
        where a later rating by the same user overrides an earlier one.
        """
        if self.nnz == 0:
            return CooMatrix.empty(self.n_rows, self.n_cols)
        keys = self.rows * np.int64(self.n_cols) + self.cols
        # stable sort keeps insertion order within equal keys; take the last.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        is_last = np.ones(self.nnz, dtype=bool)
        is_last[:-1] = sorted_keys[:-1] != sorted_keys[1:]
        keep = order[is_last]
        keep.sort()
        return CooMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            rows=self.rows[keep].copy(),
            cols=self.cols[keep].copy(),
            values=self.values[keep].copy(),
        )

    def to_dense(self) -> np.ndarray:
        """Dense array with unobserved entries as ``nan`` (small matrices only)."""
        dense = np.full((self.n_rows, self.n_cols), np.nan)
        dedup = self.deduplicate()
        dense[dedup.rows, dedup.cols] = dedup.values
        return dense

    def transpose(self) -> "CooMatrix":
        """Swap rows and columns."""
        return CooMatrix(
            n_rows=self.n_cols,
            n_cols=self.n_rows,
            rows=self.cols.copy(),
            cols=self.rows.copy(),
            values=self.values.copy(),
        )

    def copy(self) -> "CooMatrix":
        return CooMatrix(self.n_rows, self.n_cols, self.rows.copy(),
                         self.cols.copy(), self.values.copy())
