"""Reading and writing rating matrices.

Two interchange formats are supported:

* a plain-text coordinate format (one ``user movie value`` triplet per
  line, with a small header), human-readable and close to the MatrixMarket
  coordinate format that public recommendation datasets ship in;
* a compressed ``.npz`` binary format for fast round-tripping of large
  matrices and train/test splits.

These are the entry points a user with the *real* ChEMBL or MovieLens
exports would use to run the reproduction on the original data.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.validation import ValidationError

__all__ = [
    "save_ratings_text",
    "load_ratings_text",
    "save_ratings_npz",
    "load_ratings_npz",
    "save_split_npz",
    "load_split_npz",
]

PathLike = Union[str, os.PathLike]

_TEXT_HEADER = "%%repro-ratings coordinate"


def save_ratings_text(ratings: RatingMatrix, path: PathLike,
                      comment: str = "") -> None:
    """Write a rating matrix in the plain-text coordinate format.

    The file starts with a format line, an optional ``%`` comment, and a
    ``n_users n_movies nnz`` size line, followed by one whitespace-separated
    ``user movie value`` triplet per line (0-based indices).
    """
    path = Path(path)
    users, movies, values = ratings.triplets()
    with path.open("w", encoding="utf8") as handle:
        handle.write(f"{_TEXT_HEADER}\n")
        if comment:
            for line in comment.splitlines():
                handle.write(f"% {line}\n")
        handle.write(f"{ratings.n_users} {ratings.n_movies} {ratings.nnz}\n")
        for user, movie, value in zip(users, movies, values):
            handle.write(f"{int(user)} {int(movie)} {float(value)!r}\n")


def load_ratings_text(path: PathLike) -> RatingMatrix:
    """Read a rating matrix written by :func:`save_ratings_text`."""
    path = Path(path)
    with path.open("r", encoding="utf8") as handle:
        first = handle.readline().strip()
        if not first.startswith("%%"):
            raise ValidationError(
                f"{path} does not start with a coordinate-format header line")
        size_line = None
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            size_line = stripped
            break
        if size_line is None:
            raise ValidationError(f"{path} has no size line")
        parts = size_line.split()
        if len(parts) != 3:
            raise ValidationError(f"malformed size line {size_line!r} in {path}")
        n_users, n_movies, nnz = (int(part) for part in parts)

        users = np.empty(nnz, dtype=np.int64)
        movies = np.empty(nnz, dtype=np.int64)
        values = np.empty(nnz, dtype=np.float64)
        index = 0
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            if index >= nnz:
                raise ValidationError(f"{path} contains more triplets than declared")
            user, movie, value = stripped.split()
            users[index] = int(user)
            movies[index] = int(movie)
            values[index] = float(value)
            index += 1
        if index != nnz:
            raise ValidationError(
                f"{path} declares {nnz} triplets but contains {index}")
    return RatingMatrix.from_arrays(n_users, n_movies, users, movies, values)


def save_ratings_npz(ratings: RatingMatrix, path: PathLike) -> None:
    """Write a rating matrix as a compressed ``.npz`` archive."""
    users, movies, values = ratings.triplets()
    np.savez_compressed(
        Path(path),
        format=np.array("repro-ratings-v1"),
        shape=np.array(ratings.shape, dtype=np.int64),
        users=users, movies=movies, values=values,
    )


def load_ratings_npz(path: PathLike) -> RatingMatrix:
    """Read a rating matrix written by :func:`save_ratings_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if str(archive["format"]) != "repro-ratings-v1":
            raise ValidationError(f"{path} is not a repro ratings archive")
        shape = archive["shape"]
        return RatingMatrix.from_arrays(int(shape[0]), int(shape[1]),
                                        archive["users"], archive["movies"],
                                        archive["values"])


def save_split_npz(split: RatingSplit, path: PathLike) -> None:
    """Write a train/test split (training matrix plus held-out triplets)."""
    users, movies, values = split.train.triplets()
    np.savez_compressed(
        Path(path),
        format=np.array("repro-split-v1"),
        shape=np.array(split.train.shape, dtype=np.int64),
        train_users=users, train_movies=movies, train_values=values,
        test_users=split.test_users, test_movies=split.test_movies,
        test_values=split.test_values,
    )


def load_split_npz(path: PathLike) -> RatingSplit:
    """Read a split written by :func:`save_split_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if str(archive["format"]) != "repro-split-v1":
            raise ValidationError(f"{path} is not a repro split archive")
        shape = archive["shape"]
        train = RatingMatrix.from_arrays(int(shape[0]), int(shape[1]),
                                         archive["train_users"],
                                         archive["train_movies"],
                                         archive["train_values"])
        return RatingSplit(train=train,
                           test_users=archive["test_users"].copy(),
                           test_movies=archive["test_movies"].copy(),
                           test_values=archive["test_values"].copy())
