"""Row/column reordering of the rating matrix.

Section IV-B of the paper: *"we can reorder the rows and columns in R to
minimize the number of items that have to be exchanged, if we split and
distribute U and V according to consecutive regions in R"*, and the
reordering additionally takes the per-item workload into account.

This module provides the reordering primitives; the workload-aware block
partitioning that consumes them lives in :mod:`repro.distributed.partition`.

All functions return *permutations* in the "new index of old element"
convention used by :meth:`repro.sparse.RatingMatrix.permute`.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.sparse.csr import RatingMatrix
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "identity_order",
    "degree_order",
    "reverse_cuthill_mckee",
    "bipartite_rcm",
    "bandwidth",
    "apply_permutation",
    "balanced_block_order",
]


def identity_order(n: int) -> np.ndarray:
    """The do-nothing permutation."""
    return np.arange(n, dtype=np.int64)


def degree_order(degrees: np.ndarray, descending: bool = True) -> np.ndarray:
    """Permutation sorting elements by degree (rating count).

    Heavy items first (descending) is the order the work-stealing scheduler
    prefers, because scheduling the long tasks early minimises makespan.
    Returns ``perm`` with ``perm[old] = new``.
    """
    degrees = np.asarray(degrees)
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    perm = np.empty_like(order)
    perm[order] = np.arange(order.shape[0])
    return perm.astype(np.int64)


def _bipartite_adjacency(ratings: RatingMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Adjacency of the bipartite user-movie graph with movies offset by n_users."""
    users, movies, _ = ratings.triplets()
    return users, movies + ratings.n_users


def reverse_cuthill_mckee(ratings: RatingMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Reverse Cuthill–McKee ordering of the bipartite rating graph.

    A classic bandwidth-reducing ordering: after permuting, users and movies
    that interact end up close together, so a contiguous block split of
    ``U``/``V`` cuts few ratings — exactly the locality property the paper's
    data distribution relies on.

    Returns ``(user_perm, movie_perm)`` in the "new index of old" convention.
    """
    n_users, n_movies = ratings.n_users, ratings.n_movies
    n_total = n_users + n_movies

    # Build adjacency lists for the bipartite graph once.
    adjacency: list[np.ndarray] = [None] * n_total  # type: ignore[list-item]
    for user in range(n_users):
        movie_idx, _ = ratings.user_ratings(user)
        adjacency[user] = movie_idx + n_users
    for movie in range(n_movies):
        user_idx, _ = ratings.movie_ratings(movie)
        adjacency[n_users + movie] = user_idx

    degrees = np.array([a.shape[0] for a in adjacency])
    visited = np.zeros(n_total, dtype=bool)
    ordering: list[int] = []

    # Process every connected component, starting each from a minimum-degree
    # vertex (the standard CM heuristic for a pseudo-peripheral start).
    remaining = np.argsort(degrees, kind="stable")
    for start in remaining:
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([int(start)])
        while queue:
            node = queue.popleft()
            ordering.append(node)
            neighbours = adjacency[node]
            if neighbours.shape[0]:
                unvisited = neighbours[~visited[neighbours]]
                if unvisited.shape[0]:
                    unvisited = unvisited[np.argsort(degrees[unvisited], kind="stable")]
                    visited[unvisited] = True
                    queue.extend(int(v) for v in unvisited)

    ordering_arr = np.array(ordering[::-1], dtype=np.int64)  # reverse CM
    position = np.empty(n_total, dtype=np.int64)
    position[ordering_arr] = np.arange(n_total)

    # Split back into per-axis permutations, compacting each axis to 0..n-1
    # while preserving the relative RCM order.
    user_positions = position[:n_users]
    movie_positions = position[n_users:]
    user_perm = np.empty(n_users, dtype=np.int64)
    user_perm[np.argsort(user_positions, kind="stable")] = np.arange(n_users)
    movie_perm = np.empty(n_movies, dtype=np.int64)
    movie_perm[np.argsort(movie_positions, kind="stable")] = np.arange(n_movies)
    return user_perm, movie_perm


def _scipy_bipartite_rcm(ratings: RatingMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """RCM of the bipartite rating graph using scipy's compiled implementation.

    Produces the same kind of locality-improving ordering as
    :func:`reverse_cuthill_mckee` but scales to millions of ratings; used
    automatically by :func:`bipartite_rcm` for large matrices.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import reverse_cuthill_mckee as _rcm

    n_users, n_movies = ratings.n_users, ratings.n_movies
    users, movies, _ = ratings.triplets()
    n_total = n_users + n_movies
    data = np.ones(users.shape[0], dtype=np.int8)
    upper = sp.coo_matrix((data, (users, movies + n_users)),
                          shape=(n_total, n_total))
    adjacency = (upper + upper.T).tocsr()
    ordering = np.asarray(_rcm(adjacency, symmetric_mode=True), dtype=np.int64)
    position = np.empty(n_total, dtype=np.int64)
    position[ordering] = np.arange(n_total)

    user_positions = position[:n_users]
    movie_positions = position[n_users:]
    user_perm = np.empty(n_users, dtype=np.int64)
    user_perm[np.argsort(user_positions, kind="stable")] = np.arange(n_users)
    movie_perm = np.empty(n_movies, dtype=np.int64)
    movie_perm[np.argsort(movie_positions, kind="stable")] = np.arange(n_movies)
    return user_perm, movie_perm


def bipartite_rcm(ratings: RatingMatrix,
                  large_threshold: int = 200_000) -> Tuple[np.ndarray, np.ndarray]:
    """Locality ordering of users and movies, choosing an implementation by size.

    Below ``large_threshold`` stored ratings the pure-Python
    :func:`reverse_cuthill_mckee` is used (no extra dependencies exercised,
    easier to trace in tests); above it the scipy compiled RCM keeps the
    partitioner fast on paper-scale workloads.
    """
    if ratings.nnz > large_threshold:
        return _scipy_bipartite_rcm(ratings)
    return reverse_cuthill_mckee(ratings)


def bandwidth(ratings: RatingMatrix) -> float:
    """Mean normalised |user_pos - movie_pos| over observed ratings.

    A locality score in [0, 1]: lower means a contiguous block split of the
    matrix cuts fewer ratings.  Used to verify that reordering helps.
    """
    if ratings.nnz == 0:
        return 0.0
    users, movies, _ = ratings.triplets()
    u = users / max(ratings.n_users - 1, 1)
    m = movies / max(ratings.n_movies - 1, 1)
    return float(np.abs(u - m).mean())


def apply_permutation(values: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Reorder ``values`` so entry ``perm[i]`` of the result is old entry ``i``."""
    values = np.asarray(values)
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape[0] != values.shape[0]:
        raise ValidationError("permutation length does not match values")
    out = np.empty_like(values)
    out[perm] = values
    return out


def balanced_block_order(costs: np.ndarray, n_blocks: int) -> np.ndarray:
    """Group elements into ``n_blocks`` contiguous blocks of near-equal cost.

    Given per-element costs (the paper's workload model: fixed cost plus a
    cost per rating), return the block index of each element such that
    blocks are contiguous in the current ordering and their total costs are
    balanced.  This is the 1-D "chains-on-chains" partitioning the
    distributed data distribution needs after locality reordering.
    """
    check_positive("n_blocks", n_blocks)
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n_blocks >= n:
        return np.arange(n, dtype=np.int64) % n_blocks

    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    total = prefix[-1]
    blocks = np.empty(n, dtype=np.int64)
    # Greedy sweep: cut whenever the running block reaches its fair share of
    # the *remaining* cost; this keeps later blocks from starving.
    start = 0
    for block in range(n_blocks):
        remaining_blocks = n_blocks - block
        if block == n_blocks - 1:
            end = n
        else:
            target = prefix[start] + (total - prefix[start]) / remaining_blocks
            # Smallest end > start whose prefix reaches the target, but leave
            # enough elements for the remaining blocks.
            end = int(np.searchsorted(prefix, target, side="left"))
            end = max(end, start + 1)
            end = min(end, n - (remaining_blocks - 1))
        blocks[start:end] = block
        start = end
        if start >= n:
            blocks[-1] = min(int(blocks[-1]), n_blocks - 1)
            break
    return blocks
