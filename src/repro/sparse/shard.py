"""Contiguous item-range sharding of a :class:`RatingMatrix`.

The serving cluster (:mod:`repro.serving.cluster`) partitions the item
factor block into contiguous shards, one per scoring worker.  Each worker
also needs the *ratings* restricted to its item range — that is how it
excludes a user's already-seen items without the gateway shipping seen
lists on every query.  :func:`slice_item_range` produces that restriction
directly from the movie-major compressed view (the item block is
contiguous there), so slicing costs ``O(nnz_in_range)`` instead of a full
triplet rebuild.

Shard boundaries come from :func:`shard_bounds`: contiguous ranges whose
sizes differ by at most one, in ascending item order — the same
block-partition rule the distributed trainer applies to factor rows.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse.csr import CompressedAxis, RatingMatrix, _compress
from repro.utils.validation import ValidationError, check_positive

__all__ = ["shard_bounds", "slice_item_range"]


def shard_bounds(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` item ranges for ``n_shards`` balanced shards.

    Every shard gets ``n_items // n_shards`` items, the first
    ``n_items % n_shards`` shards one extra; concatenating the ranges in
    order recovers ``[0, n_items)`` exactly.  More shards than items is
    rejected — an empty shard would serve nothing but still cost a worker.
    """
    check_positive("n_shards", n_shards)
    check_positive("n_items", n_items)
    if n_shards > n_items:
        raise ValidationError(
            f"cannot cut {n_items} items into {n_shards} non-empty shards")
    base, extra = divmod(n_items, n_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(n_shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def slice_item_range(matrix: RatingMatrix, lo: int, hi: int) -> RatingMatrix:
    """Restrict ``matrix`` to item columns ``[lo, hi)``.

    The result keeps every user row (so user indices stay global) and
    renumbers items to ``[0, hi - lo)`` — shard-local ids are simply
    ``global_id - lo``.  Built from the movie-major view, where the range
    is one contiguous ``indptr`` slice.
    """
    if not 0 <= lo < hi <= matrix.n_movies:
        raise ValidationError(
            f"invalid item range [{lo}, {hi}) for {matrix.n_movies} items")
    by_movie = matrix.by_movie
    start, stop = int(by_movie.indptr[lo]), int(by_movie.indptr[hi])
    local_by_movie = CompressedAxis(
        indptr=(by_movie.indptr[lo:hi + 1] - start).astype(np.int64),
        indices=by_movie.indices[start:stop].copy(),
        values=by_movie.values[start:stop].copy(),
    )
    # Rebuild the user-major view of the slice: movie-major triplets with
    # local movie ids, recompressed along users.
    users = local_by_movie.indices
    movies_local = np.repeat(np.arange(hi - lo, dtype=np.int64),
                             local_by_movie.degrees())
    local_by_user = _compress(users, movies_local, local_by_movie.values,
                              matrix.n_users)
    return RatingMatrix(matrix.n_users, hi - lo, local_by_user,
                        local_by_movie)
