"""Train/test splitting of rating matrices.

The paper evaluates RMSE on held-out test points; this module produces the
split while guaranteeing that the training matrix keeps the full dense
shape (so user/movie indices remain aligned between train and test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.csr import RatingMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

__all__ = ["RatingSplit", "train_test_split"]


@dataclass(frozen=True)
class RatingSplit:
    """A train/test split of a rating matrix.

    ``test_users``/``test_movies``/``test_values`` are parallel arrays of the
    held-out cells, which is exactly the format the RMSE evaluation loop in
    Algorithm 1 of the paper iterates over.
    """

    train: RatingMatrix
    test_users: np.ndarray
    test_movies: np.ndarray
    test_values: np.ndarray

    @property
    def n_test(self) -> int:
        return int(self.test_values.shape[0])

    def test_triplets(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.test_users, self.test_movies, self.test_values


def train_test_split(
    ratings: RatingMatrix,
    test_fraction: float = 0.2,
    seed: SeedLike = 0,
    keep_coverage: bool = True,
) -> RatingSplit:
    """Split observed ratings into train and test sets.

    Parameters
    ----------
    ratings:
        The full observed rating matrix.
    test_fraction:
        Fraction of observed entries held out for testing.
    seed:
        Randomness for the split.
    keep_coverage:
        When true (default), the first rating of every user and every movie
        is kept in the training set so no row/column becomes completely
        unobserved — without this, factors for empty items would be drawn
        purely from the prior and RMSE comparisons across implementations
        would be noisier.
    """
    check_probability("test_fraction", test_fraction)
    rng = as_generator(seed)
    users, movies, values = ratings.triplets()
    nnz = values.shape[0]
    if nnz == 0:
        return RatingSplit(ratings, users, movies, values)

    candidate = np.ones(nnz, dtype=bool)
    if keep_coverage:
        # Protect one (the first encountered) rating per user and per movie.
        first_of_user = np.zeros(ratings.n_users, dtype=bool)
        first_of_movie = np.zeros(ratings.n_movies, dtype=bool)
        for idx in range(nnz):
            u, m = users[idx], movies[idx]
            if not first_of_user[u] or not first_of_movie[m]:
                candidate[idx] = False
                first_of_user[u] = True
                first_of_movie[m] = True

    candidate_idx = np.nonzero(candidate)[0]
    n_test = int(round(test_fraction * nnz))
    n_test = min(n_test, candidate_idx.shape[0])
    test_idx = rng.choice(candidate_idx, size=n_test, replace=False) if n_test else \
        np.empty(0, dtype=np.int64)
    mask_test = np.zeros(nnz, dtype=bool)
    mask_test[test_idx] = True

    train = RatingMatrix.from_arrays(
        ratings.n_users, ratings.n_movies,
        users[~mask_test], movies[~mask_test], values[~mask_test],
    )
    return RatingSplit(
        train=train,
        test_users=users[mask_test].copy(),
        test_movies=movies[mask_test].copy(),
        test_values=values[mask_test].copy(),
    )
