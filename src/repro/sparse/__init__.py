"""Sparse rating-matrix substrate.

BPMF operates on a very sparse ``users x movies`` rating matrix ``R``.  The
Gibbs sampler needs two access patterns:

* for every user ``u``: the movies rated by ``u`` and the rating values
  (a CSR row view), and
* for every movie ``m``: the users that rated ``m`` and the values
  (a CSC column view).

This package provides a small, self-contained sparse-matrix implementation
(built from COO triplets, stored in both CSR and CSC form), train/test
splitting, and the row/column reordering used by the distributed
partitioner to improve locality and balance.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CompressedAxis, RatingMatrix
from repro.sparse.buckets import DegreeBucket, BucketPlan, build_bucket_plan
from repro.sparse.shard import shard_bounds, slice_item_range
from repro.sparse.split import train_test_split
from repro.sparse.io import (
    save_ratings_text,
    load_ratings_text,
    save_ratings_npz,
    load_ratings_npz,
    save_split_npz,
    load_split_npz,
)
from repro.sparse.reorder import (
    degree_order,
    identity_order,
    bandwidth,
    reverse_cuthill_mckee,
    bipartite_rcm,
    apply_permutation,
    balanced_block_order,
)

__all__ = [
    "CooMatrix",
    "CompressedAxis",
    "RatingMatrix",
    "DegreeBucket",
    "BucketPlan",
    "build_bucket_plan",
    "shard_bounds",
    "slice_item_range",
    "train_test_split",
    "save_ratings_text",
    "load_ratings_text",
    "save_ratings_npz",
    "load_ratings_npz",
    "save_split_npz",
    "load_split_npz",
    "degree_order",
    "identity_order",
    "bandwidth",
    "reverse_cuthill_mckee",
    "bipartite_rcm",
    "apply_permutation",
    "balanced_block_order",
]
