"""Degree-bucket planning for batched conditional updates.

The batched update engine (:mod:`repro.core.batch_engine`) replaces the
per-item Python loop with stacked BLAS/LAPACK calls.  Stacking requires
rectangular gathers: every item in a batch must contribute the same number
of neighbour rows.  This module groups the elements of a
:class:`repro.sparse.csr.CompressedAxis` by their exact degree (rating
count) and precomputes, for every group, the index matrices needed to
gather the neighbour factor blocks and rating values in one fancy-indexing
operation.

The plan is purely structural — it depends only on the sparsity pattern,
never on factor values — so it is built once per rating matrix (or per
rank-owned subset in the distributed sampler) and reused for every Gibbs
sweep.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "DegreeBucket",
    "BucketPlan",
    "build_bucket_plan",
    "cached_bucket_plan",
    "clear_plan_cache",
    "SuperBucketMember",
    "SuperBucket",
    "SuperBucketPlan",
    "fuse_bucket_plan",
]


@dataclass(frozen=True)
class DegreeBucket:
    """All axis elements that share one exact degree.

    Attributes
    ----------
    degree:
        Number of stored entries of every item in this bucket.
    items:
        ``(m,)`` axis indices of the bucket members (ascending).
    neighbours:
        ``(m, degree)`` other-axis indices: row ``i`` lists the rating
        partners of ``items[i]``.  Gathering ``factors[neighbours]`` yields
        the stacked ``(m, degree, K)`` factor blocks in one operation.
    values:
        ``(m, degree)`` rating values aligned with ``neighbours``.
    """

    degree: int
    items: np.ndarray
    neighbours: np.ndarray
    values: np.ndarray

    @property
    def n_items(self) -> int:
        return int(self.items.shape[0])


@dataclass(frozen=True)
class BucketPlan:
    """The complete degree-bucket decomposition of one compressed axis.

    ``buckets`` are ordered by ascending degree and partition the planned
    items exactly: every item appears in exactly one bucket.
    """

    n_items: int
    buckets: Tuple[DegreeBucket, ...]

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    @property
    def n_planned_items(self) -> int:
        """Number of items covered by the plan (== subset size)."""
        return int(sum(bucket.n_items for bucket in self.buckets))

    def degrees(self) -> np.ndarray:
        """Distinct degrees present, ascending."""
        return np.array([bucket.degree for bucket in self.buckets], dtype=np.int64)


def build_bucket_plan(axis: CompressedAxis,
                      items: Optional[np.ndarray] = None,
                      value_dtype: np.dtype | str = np.float64) -> BucketPlan:
    """Group ``axis`` elements (or a subset) into exact-degree buckets.

    Parameters
    ----------
    axis:
        The compressed axis to plan over (``by_movie`` for the movie phase,
        ``by_user`` for the user phase).
    items:
        Optional subset of axis indices to plan (the distributed sampler
        passes each rank's owned items); defaults to all of them.
    value_dtype:
        Dtype of the gathered rating-value blocks.  The default
        ``float64`` matches the stored axis values exactly; the engines
        pass ``float32`` here in reduced-precision mode so the values are
        cast once at plan time instead of once per sweep.

    Returns
    -------
    A :class:`BucketPlan` whose buckets jointly cover ``items`` exactly
    once each, ordered by ascending degree.
    """
    value_dtype = np.dtype(value_dtype)
    if items is None:
        items = np.arange(axis.n, dtype=np.int64)
    else:
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 1:
            raise ValidationError("items must be a 1-D index array")
        if items.size and (items.min() < 0 or items.max() >= axis.n):
            raise ValidationError(
                f"items contains indices outside [0, {axis.n})")
        if np.unique(items).shape[0] != items.shape[0]:
            raise ValidationError("items contains duplicate indices")

    degrees = np.diff(axis.indptr)[items] if items.size else np.empty(0, np.int64)
    buckets: List[DegreeBucket] = []
    for degree in np.unique(degrees):
        degree = int(degree)
        members = np.sort(items[degrees == degree])
        starts = axis.indptr[members].astype(np.int64)
        # (m, degree) flat positions into indices/values; empty for degree 0.
        gather = starts[:, None] + np.arange(degree, dtype=np.int64)[None, :]
        buckets.append(DegreeBucket(
            degree=degree,
            items=members,
            neighbours=axis.indices[gather],
            values=np.ascontiguousarray(axis.values[gather],
                                        dtype=value_dtype),
        ))
    return BucketPlan(n_items=axis.n, buckets=tuple(buckets))


# ---------------------------------------------------------------------------
# shared plan cache
# ---------------------------------------------------------------------------

#: Upper bound on cached plans.  Large enough for any one process's working
#: set (two axes per dataset x the ranks of a simulated world x at most two
#: value dtypes); bounds memory when one process churns through many
#: datasets, since every cached plan holds ~2x its axis's rating data in
#: gathered blocks.
MAX_CACHED_PLANS = 128

#: ``(id(axis), items-bytes, dtype-str) -> BucketPlan``, LRU-ordered.  The
#: cache never keeps the axis alive: a ``weakref.finalize`` per axis evicts
#: all of its entries when it is collected, so a recycled ``id()`` can never
#: serve a stale plan.
_PLAN_CACHE: "OrderedDict[Tuple[int, Optional[bytes], str], BucketPlan]" = \
    OrderedDict()
_AXIS_FINALIZERS: dict = {}


def _evict_axis_plans(axis_id: int) -> None:
    _AXIS_FINALIZERS.pop(axis_id, None)
    for key in [key for key in _PLAN_CACHE if key[0] == axis_id]:
        del _PLAN_CACHE[key]


def clear_plan_cache() -> None:
    """Drop every cached plan (tests and memory-pressure escape hatch)."""
    for finalizer in _AXIS_FINALIZERS.values():
        finalizer.detach()
    _AXIS_FINALIZERS.clear()
    _PLAN_CACHE.clear()


def cached_bucket_plan(axis: CompressedAxis,
                       items: Optional[np.ndarray] = None,
                       value_dtype: np.dtype | str = np.float64) -> BucketPlan:
    """Build (or reuse) the bucket plan for one ``(axis, items, dtype)``.

    Plans are structural, so every engine instance touching the same axis
    object — repeated sweeps of one sampler, a fold-in call per request, the
    per-rank subsets of the distributed sampler — shares one plan instead of
    re-deriving it.  Keyed by axis *identity*: axes are immutable, so a
    changed matrix is a new object and misses the cache by construction.
    """
    key = (id(axis),
           None if items is None else np.asarray(items, np.int64).tobytes(),
           np.dtype(value_dtype).str)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = build_bucket_plan(axis, items, value_dtype=value_dtype)
        while len(_PLAN_CACHE) >= MAX_CACHED_PLANS:
            _PLAN_CACHE.popitem(last=False)
        if id(axis) not in _AXIS_FINALIZERS:
            _AXIS_FINALIZERS[id(axis)] = weakref.finalize(
                axis, _evict_axis_plans, id(axis))
        _PLAN_CACHE[key] = plan
    else:
        # Refresh recency so the eviction above is LRU, not FIFO.
        _PLAN_CACHE.move_to_end(key)
    return plan


# ---------------------------------------------------------------------------
# super-bucket fusion
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SuperBucketMember:
    """One exact-degree run inside a fused super-bucket.

    Rows ``[row_offset, row_offset + n_items)`` of the super-bucket's padded
    block belong to items of exactly this ``degree``; the kernel reads only
    the first ``degree`` columns of those rows.
    """

    degree: int
    row_offset: int
    n_items: int


@dataclass(frozen=True)
class SuperBucket:
    """Several exact-degree buckets fused into one rectangular task.

    Dispatching one task per exact-degree bucket drowns small buckets in
    per-task overhead (a queue round-trip costs as much as updating dozens
    of light items).  A super-bucket stacks consecutive ascending-degree
    buckets into a single ``(n_items, pad_degree)`` block — shorter rows are
    padded with index 0 / value 0.0 — so one dispatch covers them all.  The
    padding is *layout only*: the kernel slices each member back to its
    exact degree, so the arithmetic (and hence the sampled chain) is
    bit-identical to running the member buckets separately.

    Attributes
    ----------
    pad_degree:
        Column count of the padded block (the largest member degree).
    items:
        ``(n_items,)`` axis indices, member runs concatenated in ascending
        degree order.
    neighbours, values:
        ``(n_items, pad_degree)`` padded gather blocks aligned with
        ``items``.
    members:
        Exact-degree runs partitioning the rows, ascending by degree.
    cost:
        Estimated update cost in cost-model units (used for worker
        assignment).
    """

    pad_degree: int
    items: np.ndarray
    neighbours: np.ndarray
    values: np.ndarray
    members: Tuple[SuperBucketMember, ...]
    cost: float

    @property
    def n_items(self) -> int:
        return int(self.items.shape[0])


@dataclass(frozen=True)
class SuperBucketPlan:
    """The fused decomposition of one :class:`BucketPlan`."""

    n_items: int
    super_buckets: Tuple[SuperBucket, ...]

    @property
    def n_super_buckets(self) -> int:
        return len(self.super_buckets)

    @property
    def n_planned_items(self) -> int:
        return int(sum(sb.n_items for sb in self.super_buckets))

    def assign_workers(self, n_workers: int) -> List[List[int]]:
        """Deterministic longest-processing-time worker assignment.

        Super-buckets are assigned, descending by estimated cost, to the
        currently least-loaded worker (ties broken by lowest worker index).
        The result depends only on the plan and ``n_workers`` — never on
        timing — which is what keeps a shared-memory run reproducible and
        debuggable: the same phase always executes the same work on the
        same worker.
        """
        check_positive("n_workers", n_workers)
        order = sorted(range(len(self.super_buckets)),
                       key=lambda i: (-self.super_buckets[i].cost, i))
        loads = [0.0] * n_workers
        assignment: List[List[int]] = [[] for _ in range(n_workers)]
        for index in order:
            worker = min(range(n_workers), key=lambda w: (loads[w], w))
            assignment[worker].append(index)
            loads[worker] += self.super_buckets[index].cost
        return assignment


def _bucket_cost(n_items: int, degree: int, num_latent: int) -> float:
    """Rough flop count of one stacked bucket update.

    Gram accumulation is ``d * K^2`` per item, factorisation plus the two
    triangular solves ``~K^3 / 3 + 2 K^2``; constants are irrelevant because
    the estimate is only used to *balance* tasks, never to time them.
    """
    k = float(num_latent)
    return float(n_items) * (float(degree) * k * k + (k ** 3) / 3.0 + 2 * k * k)


def fuse_bucket_plan(plan: BucketPlan, num_latent: int,
                     grain: float | None = None,
                     n_tasks_hint: int = 64,
                     max_pad_ratio: float = 0.25) -> SuperBucketPlan:
    """Fuse a plan's exact-degree buckets into degree-padded super-buckets.

    Buckets are walked in ascending degree order and greedily packed into
    the current super-bucket until it reaches the cost ``grain``; a bucket
    is also cut off when padding its rows to the super-bucket's width would
    waste more than ``max_pad_ratio`` of the block (so a degree-500 bucket
    never pads a degree-2 run to 500 columns).  Buckets larger than the
    grain are *split* into row chunks, each its own super-bucket, so one
    dominant degree cannot serialise a whole phase on a single worker.

    ``grain`` defaults to ``total_cost / n_tasks_hint``: enough tasks for
    load balance, few enough that per-task dispatch overhead stays
    amortised.
    """
    check_positive("num_latent", num_latent)
    check_positive("n_tasks_hint", n_tasks_hint)
    check_positive("max_pad_ratio", max_pad_ratio)
    buckets = [bucket for bucket in plan.buckets]
    total = sum(_bucket_cost(b.n_items, b.degree, num_latent) for b in buckets)
    if grain is None:
        grain = max(total / float(n_tasks_hint), 1.0)
    check_positive("grain", grain)

    super_buckets: List[SuperBucket] = []
    pending: List[DegreeBucket] = []
    pending_cost = 0.0

    def emit_pending() -> None:
        nonlocal pending, pending_cost
        if not pending:
            return
        pad = pending[-1].degree  # ascending order: last member is widest
        n_rows = sum(bucket.n_items for bucket in pending)
        items = np.concatenate([bucket.items for bucket in pending])
        neighbours = np.zeros((n_rows, pad), dtype=np.int64)
        values = np.zeros((n_rows, pad), dtype=pending[0].values.dtype)
        members: List[SuperBucketMember] = []
        row = 0
        for bucket in pending:
            m, d = bucket.n_items, bucket.degree
            neighbours[row:row + m, :d] = bucket.neighbours
            values[row:row + m, :d] = bucket.values
            members.append(SuperBucketMember(degree=d, row_offset=row,
                                             n_items=m))
            row += m
        super_buckets.append(SuperBucket(
            pad_degree=pad, items=items, neighbours=neighbours,
            values=values, members=tuple(members), cost=pending_cost))
        pending, pending_cost = [], 0.0

    for bucket in buckets:
        cost = _bucket_cost(bucket.n_items, bucket.degree, num_latent)
        per_item = cost / max(bucket.n_items, 1)
        if cost >= grain and bucket.n_items > 1:
            # A dominant bucket: flush the accumulator, then split this
            # bucket's rows into roughly grain-sized chunks of its own.
            emit_pending()
            n_chunks = min(bucket.n_items,
                           max(1, int(round(cost / grain))))
            for rows in np.array_split(np.arange(bucket.n_items), n_chunks):
                chunk = DegreeBucket(
                    degree=bucket.degree,
                    items=bucket.items[rows],
                    neighbours=bucket.neighbours[rows],
                    values=bucket.values[rows],
                )
                pending = [chunk]
                pending_cost = per_item * len(rows)
                emit_pending()
            continue
        if pending:
            # Padding every pending row out to this bucket's degree must not
            # waste more than max_pad_ratio of the fused block.
            pending_rows = sum(b.n_items for b in pending)
            real = sum(b.n_items * b.degree for b in pending) \
                + bucket.n_items * bucket.degree
            padded = (pending_rows + bucket.n_items) * bucket.degree
            waste = (padded - real) / max(padded, 1)
            if pending_cost + cost > grain or waste > max_pad_ratio:
                emit_pending()
        pending.append(bucket)
        pending_cost += cost
    emit_pending()
    return SuperBucketPlan(n_items=plan.n_items,
                           super_buckets=tuple(super_buckets))
