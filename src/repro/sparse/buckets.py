"""Degree-bucket planning for batched conditional updates.

The batched update engine (:mod:`repro.core.batch_engine`) replaces the
per-item Python loop with stacked BLAS/LAPACK calls.  Stacking requires
rectangular gathers: every item in a batch must contribute the same number
of neighbour rows.  This module groups the elements of a
:class:`repro.sparse.csr.CompressedAxis` by their exact degree (rating
count) and precomputes, for every group, the index matrices needed to
gather the neighbour factor blocks and rating values in one fancy-indexing
operation.

The plan is purely structural — it depends only on the sparsity pattern,
never on factor values — so it is built once per rating matrix (or per
rank-owned subset in the distributed sampler) and reused for every Gibbs
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CompressedAxis
from repro.utils.validation import ValidationError

__all__ = ["DegreeBucket", "BucketPlan", "build_bucket_plan"]


@dataclass(frozen=True)
class DegreeBucket:
    """All axis elements that share one exact degree.

    Attributes
    ----------
    degree:
        Number of stored entries of every item in this bucket.
    items:
        ``(m,)`` axis indices of the bucket members (ascending).
    neighbours:
        ``(m, degree)`` other-axis indices: row ``i`` lists the rating
        partners of ``items[i]``.  Gathering ``factors[neighbours]`` yields
        the stacked ``(m, degree, K)`` factor blocks in one operation.
    values:
        ``(m, degree)`` rating values aligned with ``neighbours``.
    """

    degree: int
    items: np.ndarray
    neighbours: np.ndarray
    values: np.ndarray

    @property
    def n_items(self) -> int:
        return int(self.items.shape[0])


@dataclass(frozen=True)
class BucketPlan:
    """The complete degree-bucket decomposition of one compressed axis.

    ``buckets`` are ordered by ascending degree and partition the planned
    items exactly: every item appears in exactly one bucket.
    """

    n_items: int
    buckets: Tuple[DegreeBucket, ...]

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    @property
    def n_planned_items(self) -> int:
        """Number of items covered by the plan (== subset size)."""
        return int(sum(bucket.n_items for bucket in self.buckets))

    def degrees(self) -> np.ndarray:
        """Distinct degrees present, ascending."""
        return np.array([bucket.degree for bucket in self.buckets], dtype=np.int64)


def build_bucket_plan(axis: CompressedAxis,
                      items: Optional[np.ndarray] = None) -> BucketPlan:
    """Group ``axis`` elements (or a subset) into exact-degree buckets.

    Parameters
    ----------
    axis:
        The compressed axis to plan over (``by_movie`` for the movie phase,
        ``by_user`` for the user phase).
    items:
        Optional subset of axis indices to plan (the distributed sampler
        passes each rank's owned items); defaults to all of them.

    Returns
    -------
    A :class:`BucketPlan` whose buckets jointly cover ``items`` exactly
    once each, ordered by ascending degree.
    """
    if items is None:
        items = np.arange(axis.n, dtype=np.int64)
    else:
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 1:
            raise ValidationError("items must be a 1-D index array")
        if items.size and (items.min() < 0 or items.max() >= axis.n):
            raise ValidationError(
                f"items contains indices outside [0, {axis.n})")
        if np.unique(items).shape[0] != items.shape[0]:
            raise ValidationError("items contains duplicate indices")

    degrees = np.diff(axis.indptr)[items] if items.size else np.empty(0, np.int64)
    buckets: List[DegreeBucket] = []
    for degree in np.unique(degrees):
        degree = int(degree)
        members = np.sort(items[degrees == degree])
        starts = axis.indptr[members].astype(np.int64)
        # (m, degree) flat positions into indices/values; empty for degree 0.
        gather = starts[:, None] + np.arange(degree, dtype=np.int64)[None, :]
        buckets.append(DegreeBucket(
            degree=degree,
            items=members,
            neighbours=axis.indices[gather],
            values=axis.values[gather],
        ))
    return BucketPlan(n_items=axis.n, buckets=tuple(buckets))
