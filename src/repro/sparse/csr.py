"""Compressed sparse rating matrix with both row (user) and column (movie) views.

The Gibbs sampler updates users from the movies they rated and movies from
the users that rated them, so :class:`RatingMatrix` keeps the same data
compressed along *both* axes.  The per-axis structure is
:class:`CompressedAxis`, a classic ``indptr``/``indices``/``values`` layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.utils.validation import ValidationError

__all__ = ["CompressedAxis", "RatingMatrix"]


@dataclass(frozen=True)
class CompressedAxis:
    """One compressed axis (CSR if the axis is rows, CSC if columns).

    ``indptr`` has length ``n + 1``; entry ``i`` of the axis owns the slice
    ``indices[indptr[i]:indptr[i+1]]`` (the other-axis indices it touches)
    and the matching ``values`` slice.
    """

    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        if self.indptr.ndim != 1 or self.indices.ndim != 1 or self.values.ndim != 1:
            raise ValidationError("CompressedAxis arrays must be one-dimensional")
        if self.indptr.shape[0] < 1:
            raise ValidationError(
                "indptr must have at least one entry (length n + 1)")
        if self.indices.shape != self.values.shape:
            raise ValidationError("indices and values must have the same length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValidationError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValidationError("indptr must be non-decreasing")

    @property
    def n(self) -> int:
        """Number of entries along this axis."""
        return int(self.indptr.shape[0] - 1)

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def degree(self, i: int) -> int:
        """Number of stored entries for axis element ``i``."""
        return int(self.indptr[i + 1] - self.indptr[i])

    def degrees(self) -> np.ndarray:
        """Vector of per-element entry counts."""
        return np.diff(self.indptr)

    def slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(other_axis_indices, values)`` views for element ``i``."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:stop], self.values[start:stop]

    def iter_nonempty(self) -> Iterator[int]:
        """Indices of axis elements with at least one stored entry."""
        degs = self.degrees()
        return iter(np.nonzero(degs > 0)[0])


def _compress(major: np.ndarray, minor: np.ndarray, values: np.ndarray,
              n_major: int) -> CompressedAxis:
    """Compress triplets along ``major`` (counting sort; O(nnz))."""
    order = np.argsort(major, kind="stable")
    major_sorted = major[order]
    indptr = np.zeros(n_major + 1, dtype=np.int64)
    np.add.at(indptr, major_sorted + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CompressedAxis(
        indptr=indptr,
        indices=minor[order].copy(),
        values=values[order].copy(),
    )


class RatingMatrix:
    """Immutable sparse rating matrix with user-major and movie-major views.

    Construct with :meth:`from_coo` (the normal path) or :meth:`from_arrays`.
    Rows are "users", columns are "movies" in the paper's terminology; for
    the ChEMBL benchmark rows are compounds and columns are protein targets.
    """

    def __init__(self, n_users: int, n_movies: int,
                 by_user: CompressedAxis, by_movie: CompressedAxis):
        if by_user.n != n_users:
            raise ValidationError(
                f"user axis has {by_user.n} entries, expected {n_users}")
        if by_movie.n != n_movies:
            raise ValidationError(
                f"movie axis has {by_movie.n} entries, expected {n_movies}")
        if by_user.nnz != by_movie.nnz:
            raise ValidationError("user and movie views disagree on nnz")
        self._n_users = n_users
        self._n_movies = n_movies
        self._by_user = by_user
        self._by_movie = by_movie

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_coo(cls, coo: CooMatrix, deduplicate: bool = True) -> "RatingMatrix":
        """Build both compressed views from a COO matrix."""
        coo.validate()
        if deduplicate:
            coo = coo.deduplicate()
        by_user = _compress(coo.rows, coo.cols, coo.values, coo.n_rows)
        by_movie = _compress(coo.cols, coo.rows, coo.values, coo.n_cols)
        return cls(coo.n_rows, coo.n_cols, by_user, by_movie)

    @classmethod
    def from_arrays(cls, n_users: int, n_movies: int,
                    users: np.ndarray, movies: np.ndarray,
                    ratings: np.ndarray) -> "RatingMatrix":
        """Build from parallel index/value arrays."""
        coo = CooMatrix.from_arrays(n_users, n_movies, users, movies, ratings)
        return cls.from_coo(coo)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "RatingMatrix":
        """Build from a dense array; ``nan`` cells are treated as unobserved."""
        dense = np.asarray(dense, dtype=np.float64)
        mask = ~np.isnan(dense)
        rows, cols = np.nonzero(mask)
        return cls.from_arrays(dense.shape[0], dense.shape[1],
                               rows, cols, dense[rows, cols])

    # -- basic properties -------------------------------------------------

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def n_movies(self) -> int:
        return self._n_movies

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n_users, self._n_movies)

    @property
    def nnz(self) -> int:
        return self._by_user.nnz

    @property
    def density(self) -> float:
        return self.nnz / float(self._n_users * self._n_movies)

    @property
    def by_user(self) -> CompressedAxis:
        """CSR view: for each user, the movies they rated."""
        return self._by_user

    @property
    def by_movie(self) -> CompressedAxis:
        """CSC view: for each movie, the users that rated it."""
        return self._by_movie

    # -- element access ---------------------------------------------------

    def user_ratings(self, user: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(movie_indices, values)`` rated by ``user``."""
        return self._by_user.slice(user)

    def movie_ratings(self, movie: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(user_indices, values)`` that rated ``movie``."""
        return self._by_movie.slice(movie)

    def user_degrees(self) -> np.ndarray:
        """Ratings per user."""
        return self._by_user.degrees()

    def movie_degrees(self) -> np.ndarray:
        """Ratings per movie."""
        return self._by_movie.degrees()

    def triplets(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(users, movies, values)`` arrays in user-major order."""
        users = np.repeat(np.arange(self._n_users, dtype=np.int64),
                          self._by_user.degrees())
        return users, self._by_user.indices.copy(), self._by_user.values.copy()

    def mean_rating(self) -> float:
        """Global mean of observed ratings (0.0 for an empty matrix)."""
        if self.nnz == 0:
            return 0.0
        return float(self._by_user.values.mean())

    def to_coo(self) -> CooMatrix:
        users, movies, values = self.triplets()
        return CooMatrix.from_arrays(self._n_users, self._n_movies,
                                     users, movies, values)

    def to_dense(self) -> np.ndarray:
        """Dense array with ``nan`` for unobserved cells (small matrices only)."""
        return self.to_coo().to_dense()

    def to_scipy_csr(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (for interoperability)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self._by_user.values, self._by_user.indices, self._by_user.indptr),
            shape=self.shape,
        )

    # -- transformations --------------------------------------------------

    def transpose(self) -> "RatingMatrix":
        """Swap the user and movie axes (views are shared, not copied)."""
        return RatingMatrix(self._n_movies, self._n_users,
                            self._by_movie, self._by_user)

    def permute(self, user_perm: np.ndarray | None = None,
                movie_perm: np.ndarray | None = None) -> "RatingMatrix":
        """Relabel users and/or movies.

        ``user_perm[i]`` gives the *new* index of old user ``i`` (and
        similarly for movies); this is the operation the distributed
        partitioner uses to make partitions contiguous in ``R``.
        """
        users, movies, values = self.triplets()
        if user_perm is not None:
            user_perm = np.asarray(user_perm, dtype=np.int64)
            _check_permutation(user_perm, self._n_users, "user_perm")
            users = user_perm[users]
        if movie_perm is not None:
            movie_perm = np.asarray(movie_perm, dtype=np.int64)
            _check_permutation(movie_perm, self._n_movies, "movie_perm")
            movies = movie_perm[movies]
        return RatingMatrix.from_arrays(self._n_users, self._n_movies,
                                        users, movies, values)

    def select_users(self, users: np.ndarray) -> "RatingMatrix":
        """Restrict to a subset of users, keeping original movie indexing.

        The returned matrix has ``len(users)`` rows in the order given.
        """
        users = np.asarray(users, dtype=np.int64)
        rows = []
        cols = []
        vals = []
        for new_index, user in enumerate(users):
            movie_idx, values = self.user_ratings(int(user))
            rows.append(np.full(movie_idx.shape[0], new_index, dtype=np.int64))
            cols.append(movie_idx)
            vals.append(values)
        if rows:
            rows_arr = np.concatenate(rows)
            cols_arr = np.concatenate(cols)
            vals_arr = np.concatenate(vals)
        else:
            rows_arr = cols_arr = np.empty(0, dtype=np.int64)
            vals_arr = np.empty(0, dtype=np.float64)
        return RatingMatrix.from_arrays(len(users), self._n_movies,
                                        rows_arr, cols_arr, vals_arr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RatingMatrix(n_users={self._n_users}, n_movies={self._n_movies}, "
                f"nnz={self.nnz}, density={self.density:.2e})")


def _check_permutation(perm: np.ndarray, n: int, name: str) -> None:
    if perm.shape != (n,):
        raise ValidationError(f"{name} must have length {n}, got {perm.shape}")
    seen = np.zeros(n, dtype=bool)
    if perm.min() < 0 or perm.max() >= n:
        raise ValidationError(f"{name} contains out-of-range values")
    seen[perm] = True
    if not seen.all():
        raise ValidationError(f"{name} is not a permutation (missing targets)")
