"""Work-stealing scheduler (the TBB-like execution model).

Section III of the paper attributes the TBB version's win to two features:

* a **work-stealing scheduler** that rebalances dynamically when some
  threads finish their share early, and
* **nested parallelism**, which lets the parallel-Cholesky sub-tasks of a
  heavy item run on whatever cores happen to be idle.

Both features are modelled mechanistically: every core owns a deque seeded
round-robin with the tasks (mirroring how a parallel_for splits the item
range), cores pop work LIFO from their own deque and steal FIFO from the
most loaded victim when empty, paying a per-steal overhead; splittable
tasks are expanded into their sub-tasks, which land on the executing core's
deque and are therefore themselves stealable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence

import numpy as np

from repro.parallel.simulator import CoreClock, ScheduleResult, Scheduler, SimTask
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["WorkStealingScheduler"]


@dataclass
class _Unit:
    """A directly executable unit (task or sub-task) in a core's deque."""

    duration: float
    origin: int  # core whose deque originally held the parent task


class WorkStealingScheduler(Scheduler):
    """TBB-like work stealing with nested parallelism.

    Parameters
    ----------
    steal_overhead:
        Simulated seconds a thief spends acquiring a task from another
        core's deque (synchronisation cost).
    spawn_overhead:
        Simulated seconds to spawn the sub-tasks of one splittable task.
    nested_parallelism:
        When false, splittable tasks run serially on one core (an ablation
        knob that turns "TBB" into "TBB without nested parallelism").
    """

    name = "work-stealing"

    def __init__(self, steal_overhead: float = 1.0e-6,
                 spawn_overhead: float = 2.0e-7,
                 nested_parallelism: bool = True):
        check_non_negative("steal_overhead", steal_overhead)
        check_non_negative("spawn_overhead", spawn_overhead)
        self.steal_overhead = steal_overhead
        self.spawn_overhead = spawn_overhead
        self.nested_parallelism = nested_parallelism

    def schedule(self, tasks: Sequence[SimTask], n_cores: int) -> ScheduleResult:
        check_positive("n_cores", n_cores)
        clock = CoreClock(n_cores)
        deques: List[Deque[_Unit]] = [deque() for _ in range(n_cores)]

        # Round-robin seeding emulates the recursive range splitting of a
        # parallel_for: every core starts with an equal *count* of items
        # (not an equal amount of work — that is what stealing fixes).
        for index, task in enumerate(tasks):
            home = index % n_cores
            if task.splittable and self.nested_parallelism:
                for sub in task.subtask_durations:
                    deques[home].append(_Unit(float(sub), home))
            else:
                deques[home].append(_Unit(task.duration, home))

        n_steals = 0
        overhead = 0.0
        pending = sum(len(d) for d in deques)
        # Event loop: the earliest-free core picks its next unit.
        while pending:
            now, core = clock.next_free()
            own = deques[core]
            if own:
                unit = own.pop()  # LIFO on the owner's side
                duration = unit.duration
            else:
                victim = self._pick_victim(deques, core)
                if victim is None:
                    # Nothing left anywhere for this core; park it and let
                    # the remaining cores drain their deques.
                    clock.park(core, now)
                    continue
                unit = deques[victim].popleft()  # FIFO from the victim
                duration = unit.duration + self.steal_overhead
                overhead += self.steal_overhead
                n_steals += 1
            if unit.duration and self.spawn_overhead and unit.origin == core:
                # Charge the (tiny) spawn cost when the owner first touches
                # work it seeded itself; a constant per executed unit.
                duration += self.spawn_overhead
                overhead += self.spawn_overhead
            clock.run(core, now, duration)
            pending -= 1

        return ScheduleResult(
            n_cores=n_cores,
            makespan=clock.makespan,
            core_busy=clock.busy.copy(),
            n_tasks=len(tasks),
            n_steals=n_steals,
            overhead=overhead,
            scheduler=self.name,
        )

    @staticmethod
    def _pick_victim(deques: List[Deque[_Unit]], thief: int) -> int | None:
        """Steal from the core with the most queued work (best-fit victim)."""
        best = None
        best_len = 0
        for core, dq in enumerate(deques):
            if core != thief and len(dq) > best_len:
                best, best_len = core, len(dq)
        return best
