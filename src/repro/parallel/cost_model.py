"""Calibrated cost models for the item-update kernels.

Two models live here:

* :class:`UpdateCostModel` — predicts the time to update one item with a
  given :class:`~repro.core.updates.UpdateMethod` as a function of its
  rating count and the latent dimension.  The functional forms follow the
  kernels' complexity:

  - rank-one update:      ``t = a + b · n``          (one O(K²) update per rating)
  - serial Cholesky:      ``t = a + c · n + d``      (one O(nK²) Gram + O(K³) factorise)
  - parallel Cholesky:    ``t = a_par + (c · n)/w + d``  (Gram split over ``w`` workers)

  Coefficients can be *calibrated* against the real numpy kernels with
  :func:`calibrate_cost_model`; :data:`DEFAULT_COST_MODEL` ships with
  coefficients measured on the development machine so simulations are
  deterministic and fast by default.

* :class:`WorkloadModel` — the paper's load-balancing model (Section IV-B):
  *"we approximate the workload per user/movie with fixed cost, plus a cost
  per movie rating"*.  It is used by the distributed partitioner and the
  schedulers to estimate task durations without running kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.priors import GaussianPrior
from repro.core.updates import (
    UpdateMethod,
    sample_item_parallel_cholesky,
    sample_item_rank_one,
    sample_item_serial_cholesky,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import time_call
from repro.utils.validation import check_positive

__all__ = [
    "WorkloadModel",
    "UpdateCostModel",
    "calibrate_cost_model",
    "DEFAULT_COST_MODEL",
]


@dataclass(frozen=True)
class WorkloadModel:
    """Fixed-plus-per-rating workload estimate for one item update.

    This is the model the paper derives from Figure 2 and feeds into the
    data distribution: ``work(item) = fixed_cost + rating_cost * n_ratings``.
    Units are arbitrary (relative work), which is all balancing needs.
    """

    fixed_cost: float = 1.0
    rating_cost: float = 0.02

    def __post_init__(self):
        check_positive("fixed_cost", self.fixed_cost)
        check_positive("rating_cost", self.rating_cost)

    def cost(self, n_ratings) -> np.ndarray | float:
        """Relative work for an item (scalar) or items (array) with given degree."""
        return self.fixed_cost + self.rating_cost * np.asarray(n_ratings, dtype=float)

    def total_cost(self, degrees: Iterable[int]) -> float:
        degrees = np.asarray(list(degrees) if not isinstance(degrees, np.ndarray)
                             else degrees, dtype=float)
        return float(np.sum(self.fixed_cost + self.rating_cost * degrees))


@dataclass(frozen=True)
class UpdateCostModel:
    """Per-method kernel time model (seconds) for one item update.

    Parameters
    ----------
    k_ref:
        Latent dimension the coefficients were calibrated at.  Costs scale
        with ``(K / k_ref)^2`` for the per-rating terms and ``(K / k_ref)^3``
        for the factorisation term, following the kernels' complexity.
    rank_one_fixed, rank_one_per_rating:
        Coefficients of the rank-one update kernel.
    chol_fixed, chol_per_rating, chol_factorize:
        Coefficients of the (serial) Gram + Cholesky kernel.
    parallel_overhead:
        Extra fixed cost of the parallel Cholesky (task spawning, reduction
        of the partial Gram matrices).
    """

    k_ref: int = 32
    rank_one_fixed: float = 2.0e-5
    rank_one_per_rating: float = 3.0e-6
    chol_fixed: float = 1.5e-5
    chol_per_rating: float = 1.5e-6
    chol_factorize: float = 1.0e-4
    parallel_overhead: float = 1.1e-3

    def _scale(self, num_latent: int) -> tuple[float, float]:
        ratio = num_latent / self.k_ref
        return ratio**2, ratio**3

    def cost(self, n_ratings, method: UpdateMethod, num_latent: int | None = None,
             workers: int = 1) -> np.ndarray | float:
        """Predicted seconds to update item(s) with ``n_ratings`` ratings.

        ``workers`` only affects :attr:`UpdateMethod.PARALLEL_CHOLESKY`: the
        per-rating Gram work is divided across workers while the
        factorisation and reduction stay serial (Amdahl behaviour).
        """
        check_positive("workers", workers)
        num_latent = num_latent or self.k_ref
        sq, cb = self._scale(num_latent)
        n = np.asarray(n_ratings, dtype=float)
        if method is UpdateMethod.RANK_ONE:
            return self.rank_one_fixed + self.rank_one_per_rating * sq * n
        if method is UpdateMethod.SERIAL_CHOLESKY:
            return (self.chol_fixed + self.chol_per_rating * sq * n
                    + self.chol_factorize * cb)
        if method is UpdateMethod.PARALLEL_CHOLESKY:
            return (self.chol_fixed + self.parallel_overhead
                    + self.chol_per_rating * sq * n / workers
                    + self.chol_factorize * cb)
        raise ValueError(f"unknown update method {method!r}")

    def best_method(self, n_ratings: int, num_latent: int | None = None,
                    workers: int = 1) -> UpdateMethod:
        """The cheapest method for an item under this cost model."""
        costs = {m: float(self.cost(n_ratings, m, num_latent, workers))
                 for m in UpdateMethod}
        return min(costs, key=costs.get)

    def workload_model(self, num_latent: int | None = None) -> WorkloadModel:
        """Collapse to the paper's fixed+per-rating workload model.

        Uses the serial-Cholesky coefficients (the dominant method for the
        bulk of items), normalised so the fixed cost is 1.0.
        """
        num_latent = num_latent or self.k_ref
        sq, cb = self._scale(num_latent)
        fixed = self.chol_fixed + self.chol_factorize * cb
        per_rating = self.chol_per_rating * sq
        return WorkloadModel(fixed_cost=1.0, rating_cost=per_rating / fixed)


#: Default coefficients model an *optimised compiled kernel* (the paper's
#: Eigen/C++ implementation) from operation counts: the rank-one update has
#: no O(K^3) factorisation but a higher per-rating constant, the serial
#: Cholesky pays the factorisation once, and the parallel Cholesky adds a
#: task-spawn/reduction overhead that only pays off near the paper's
#: 1000-rating threshold.  Use :func:`calibrate_cost_model` instead to fit
#: the coefficients to the *measured* pure-Python kernels of this package
#: (their crossovers sit at much lower rating counts because the rank-one
#: update is a Python-level loop — this discrepancy is discussed in
#: EXPERIMENTS.md under Figure 2).
DEFAULT_COST_MODEL = UpdateCostModel()


def calibrate_cost_model(
    num_latent: int = 16,
    degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048),
    repeats: int = 3,
    workers_for_parallel: int = 4,
    seed: SeedLike = 0,
) -> UpdateCostModel:
    """Fit :class:`UpdateCostModel` coefficients from real kernel timings.

    For every degree in ``degrees`` the three kernels are run on synthetic
    neighbour matrices and timed; coefficients are then obtained by
    least-squares against the model's functional forms.  The parallel
    Cholesky is timed in its chunked (single-worker) form and its measured
    extra fixed cost over the serial kernel becomes ``parallel_overhead``.
    """
    check_positive("num_latent", num_latent)
    rng = as_generator(seed)
    prior = GaussianPrior.standard(num_latent)
    alpha = 2.0

    times: Dict[UpdateMethod, list[tuple[int, float]]] = {m: [] for m in UpdateMethod}
    for degree in degrees:
        neighbours = rng.normal(size=(degree, num_latent))
        ratings = rng.normal(size=degree)
        noise = rng.standard_normal(num_latent)
        # Rank-one gets prohibitively slow for huge degrees; cap its inputs.
        if degree <= 512:
            t, _ = time_call(sample_item_rank_one, neighbours, ratings, prior,
                             alpha, rng=rng, noise=noise, repeats=repeats)
            times[UpdateMethod.RANK_ONE].append((degree, t))
        t, _ = time_call(sample_item_serial_cholesky, neighbours, ratings, prior,
                         alpha, rng=rng, noise=noise, repeats=repeats)
        times[UpdateMethod.SERIAL_CHOLESKY].append((degree, t))
        t, _ = time_call(sample_item_parallel_cholesky, neighbours, ratings, prior,
                         alpha, rng=rng, noise=noise, repeats=repeats,
                         n_blocks=workers_for_parallel)
        times[UpdateMethod.PARALLEL_CHOLESKY].append((degree, t))

    def fit_affine(samples: list[tuple[int, float]]) -> tuple[float, float]:
        ns = np.array([s[0] for s in samples], dtype=float)
        ts = np.array([s[1] for s in samples], dtype=float)
        design = np.stack([np.ones_like(ns), ns], axis=1)
        coeff, *_ = np.linalg.lstsq(design, ts, rcond=None)
        return float(max(coeff[0], 1e-9)), float(max(coeff[1], 1e-12))

    r1_fixed, r1_slope = fit_affine(times[UpdateMethod.RANK_ONE])
    chol_fixed_total, chol_slope = fit_affine(times[UpdateMethod.SERIAL_CHOLESKY])
    par_fixed_total, _par_slope = fit_affine(times[UpdateMethod.PARALLEL_CHOLESKY])

    # Split the serial fixed cost into setup vs. factorisation: attribute the
    # K^3-ish share to the factorisation term (one third is a good empirical
    # split for numpy at small K; exactness is irrelevant to the figures).
    chol_factorize = chol_fixed_total / 3.0
    chol_fixed = chol_fixed_total - chol_factorize
    parallel_overhead = max(par_fixed_total - chol_fixed_total, 1e-9)

    return UpdateCostModel(
        k_ref=num_latent,
        rank_one_fixed=r1_fixed,
        rank_one_per_rating=r1_slope,
        chol_fixed=chol_fixed,
        chol_per_rating=chol_slope,
        chol_factorize=chol_factorize,
        parallel_overhead=parallel_overhead,
    )
