"""Synchronous vertex-engine scheduler (the GraphLab-like execution model).

GraphLab expresses BPMF as vertex programs on the bipartite user–movie
graph: updating a movie is a gather over its rated-by edges, an apply, and
a scatter that signals neighbours.  The engine gives programmer
productivity but pays for it with

* a per-update engine overhead (scheduling, locking of the vertex and its
  neighbourhood, copying gather results), and
* synchronous supersteps — every vertex in a phase must finish before the
  next phase starts,
* hash-partitioned vertex ownership with no notion of per-vertex work,
  hence no load balancing beyond vertex count.

The paper uses GraphLab as the "state of the art graph-processing"
baseline that its hand-tuned implementations beat (Figure 3); this class
reproduces that position mechanistically with an engine-overhead factor and
per-update fixed cost applied on top of the same task durations the other
schedulers see.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.parallel.simulator import ScheduleResult, Scheduler, SimTask
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["GraphEngineScheduler"]


class GraphEngineScheduler(Scheduler):
    """Synchronous gather-apply-scatter engine over hash-partitioned vertices.

    Parameters
    ----------
    engine_overhead_factor:
        Multiplier on the raw kernel time accounting for the gather/apply/
        scatter decomposition and the extra data movement it implies.
    per_update_overhead:
        Fixed simulated seconds of scheduler + locking work per vertex
        update.
    lock_contention:
        Additional per-update cost that grows with the number of cores
        (cache-line and lock contention on the shared scheduler state);
        modelled as ``lock_contention * (n_cores - 1)`` seconds.
    barrier_overhead:
        Cost of the end-of-superstep synchronisation barrier.
    """

    name = "graphlab-sync"

    def __init__(self, engine_overhead_factor: float = 2.5,
                 per_update_overhead: float = 6.0e-5,
                 lock_contention: float = 1.5e-6,
                 barrier_overhead: float = 1.0e-4):
        check_positive("engine_overhead_factor", engine_overhead_factor)
        check_non_negative("per_update_overhead", per_update_overhead)
        check_non_negative("lock_contention", lock_contention)
        check_non_negative("barrier_overhead", barrier_overhead)
        self.engine_overhead_factor = engine_overhead_factor
        self.per_update_overhead = per_update_overhead
        self.lock_contention = lock_contention
        self.barrier_overhead = barrier_overhead

    def schedule(self, tasks: Sequence[SimTask], n_cores: int) -> ScheduleResult:
        check_positive("n_cores", n_cores)
        per_update_cost = (self.per_update_overhead
                           + self.lock_contention * (n_cores - 1))
        durations = np.array([
            task.duration * self.engine_overhead_factor + per_update_cost
            for task in tasks
        ])
        busy = np.zeros(n_cores)
        if durations.size:
            # Hash partitioning: vertices are assigned to cores by id modulo
            # core count — balanced by count, oblivious to per-vertex work.
            owners = np.arange(durations.size) % n_cores
            np.add.at(busy, owners, durations)
        makespan = float(busy.max()) + self.barrier_overhead
        return ScheduleResult(
            n_cores=n_cores,
            makespan=makespan,
            core_busy=busy,
            n_tasks=len(tasks),
            overhead=float(per_update_cost * len(tasks) + self.barrier_overhead),
            scheduler=self.name,
        )
