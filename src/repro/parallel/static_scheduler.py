"""Static and dynamic-chunk loop schedulers (the OpenMP-like execution model).

The paper's OpenMP version parallelises the item loops with a conventional
``#pragma omp parallel for``.  Two scheduling clauses are modelled:

* :class:`StaticScheduler` — ``schedule(static)``: the item range is cut
  into one contiguous chunk per thread.  Threads that receive the heavy
  items finish late while the others idle at the loop barrier, and nested
  parallel regions are serialised, so heavy items cannot be split.
* :class:`DynamicChunkScheduler` — ``schedule(dynamic, chunk)``: threads
  grab fixed-size chunks from a shared counter, paying a small dispatch
  overhead per chunk.  Balance improves over static but sub-item
  parallelism is still unavailable, which is why the paper's TBB version
  stays ahead.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.parallel.simulator import CoreClock, ScheduleResult, Scheduler, SimTask
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["StaticScheduler", "DynamicChunkScheduler"]


class StaticScheduler(Scheduler):
    """``schedule(static)`` contiguous partition with an end-of-loop barrier.

    Parameters
    ----------
    barrier_overhead:
        Simulated seconds every thread spends in the implicit barrier at
        the end of the parallel loop.
    fork_overhead:
        Simulated seconds to fork/join the parallel region (paid once,
        independent of the thread count in this simple model).
    """

    name = "openmp-static"

    def __init__(self, barrier_overhead: float = 5.0e-6,
                 fork_overhead: float = 2.0e-5):
        check_non_negative("barrier_overhead", barrier_overhead)
        check_non_negative("fork_overhead", fork_overhead)
        self.barrier_overhead = barrier_overhead
        self.fork_overhead = fork_overhead

    def schedule(self, tasks: Sequence[SimTask], n_cores: int) -> ScheduleResult:
        check_positive("n_cores", n_cores)
        durations = np.array([task.duration for task in tasks])
        busy = np.zeros(n_cores)
        if durations.size:
            # Contiguous equal-count chunks, exactly like schedule(static).
            boundaries = np.linspace(0, durations.size, n_cores + 1).astype(int)
            for core in range(n_cores):
                busy[core] = durations[boundaries[core]:boundaries[core + 1]].sum()
        makespan = float(busy.max()) + self.barrier_overhead + self.fork_overhead
        return ScheduleResult(
            n_cores=n_cores,
            makespan=makespan,
            core_busy=busy,
            n_tasks=len(tasks),
            overhead=self.barrier_overhead + self.fork_overhead,
            scheduler=self.name,
        )


class DynamicChunkScheduler(Scheduler):
    """``schedule(dynamic, chunk_size)`` with a per-chunk dispatch cost."""

    name = "openmp-dynamic"

    def __init__(self, chunk_size: int = 8, dispatch_overhead: float = 1.0e-6,
                 barrier_overhead: float = 5.0e-6, fork_overhead: float = 2.0e-5):
        check_positive("chunk_size", chunk_size)
        check_non_negative("dispatch_overhead", dispatch_overhead)
        check_non_negative("barrier_overhead", barrier_overhead)
        check_non_negative("fork_overhead", fork_overhead)
        self.chunk_size = chunk_size
        self.dispatch_overhead = dispatch_overhead
        self.barrier_overhead = barrier_overhead
        self.fork_overhead = fork_overhead

    def schedule(self, tasks: Sequence[SimTask], n_cores: int) -> ScheduleResult:
        check_positive("n_cores", n_cores)
        durations = [task.duration for task in tasks]
        chunks: List[float] = []
        for start in range(0, len(durations), self.chunk_size):
            chunk = durations[start:start + self.chunk_size]
            chunks.append(sum(chunk) + self.dispatch_overhead)

        clock = CoreClock(n_cores)
        # Threads grab the next chunk in order as they become free — an
        # exact simulation of the shared loop counter.
        for chunk_time in chunks:
            now, core = clock.next_free()
            clock.run(core, now, chunk_time)
        makespan = clock.makespan + self.barrier_overhead + self.fork_overhead
        return ScheduleResult(
            n_cores=n_cores,
            makespan=makespan,
            core_busy=clock.busy.copy(),
            n_tasks=len(tasks),
            overhead=(len(chunks) * self.dispatch_overhead
                      + self.barrier_overhead + self.fork_overhead),
            scheduler=self.name,
        )
