"""Discrete-event machinery shared by the simulated schedulers.

A *task* is one item update (or one sub-task of a heavy item split by the
hybrid policy).  A *scheduler* places tasks on ``n_cores`` simulated cores
and reports the resulting makespan and per-core utilisation.  The task
durations come from the calibrated cost model and the dataset's real degree
sequence, so scheduling behaviour (imbalance, stealing, barriers) is
mechanistic.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.parallel.cost_model import DEFAULT_COST_MODEL, UpdateCostModel
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "SimTask",
    "ScheduleResult",
    "Scheduler",
    "CoreClock",
    "simulate_serial",
    "tasks_from_degrees",
]


@dataclass(frozen=True)
class SimTask:
    """One schedulable unit of work.

    ``subtask_durations`` is non-empty when the hybrid policy decided this
    item is heavy enough to split (parallel Cholesky): schedulers that
    support nested parallelism may place the sub-tasks on different cores,
    schedulers that do not must execute ``duration`` on a single core.
    """

    task_id: int
    duration: float
    subtask_durations: tuple = ()
    tag: str = ""

    def __post_init__(self):
        if self.duration < 0:
            raise ValidationError(f"task {self.task_id} has negative duration")
        if any(d < 0 for d in self.subtask_durations):
            raise ValidationError(f"task {self.task_id} has a negative sub-task")

    @property
    def splittable(self) -> bool:
        return len(self.subtask_durations) > 1

    @property
    def split_total(self) -> float:
        """Total work when executed as sub-tasks (>= duration: split overhead)."""
        return float(sum(self.subtask_durations)) if self.subtask_durations else self.duration


@dataclass
class ScheduleResult:
    """Outcome of placing a task set on a simulated machine."""

    n_cores: int
    makespan: float
    core_busy: np.ndarray
    n_tasks: int
    n_steals: int = 0
    overhead: float = 0.0
    scheduler: str = ""

    @property
    def total_work(self) -> float:
        """Sum of busy time over all cores (excludes idle waiting)."""
        return float(self.core_busy.sum())

    @property
    def utilization(self) -> float:
        """Fraction of core-seconds spent busy, in [0, 1]."""
        if self.makespan <= 0:
            return 1.0
        return float(self.core_busy.sum() / (self.n_cores * self.makespan))

    @property
    def imbalance(self) -> float:
        """Max over mean core busy time (1.0 = perfectly balanced)."""
        mean = self.core_busy.mean()
        if mean <= 0:
            return 1.0
        return float(self.core_busy.max() / mean)

    def throughput(self, n_items: int | None = None) -> float:
        """Item updates per simulated second (Figure 3/4's y-axis)."""
        items = self.n_tasks if n_items is None else n_items
        if self.makespan <= 0:
            return float("inf")
        return items / self.makespan


class CoreClock:
    """Per-core simulated clocks with an event heap ordered by free time."""

    def __init__(self, n_cores: int):
        check_positive("n_cores", n_cores)
        self.n_cores = n_cores
        self.free_at = np.zeros(n_cores)
        self.busy = np.zeros(n_cores)
        self._heap: List[tuple[float, int]] = [(0.0, core) for core in range(n_cores)]
        heapq.heapify(self._heap)

    def next_free(self) -> tuple[float, int]:
        """Pop the (time, core) pair that becomes free earliest."""
        return heapq.heappop(self._heap)

    def run(self, core: int, start: float, duration: float) -> float:
        """Execute ``duration`` seconds on ``core`` starting at ``start``."""
        end = start + duration
        self.free_at[core] = end
        self.busy[core] += duration
        heapq.heappush(self._heap, (end, core))
        return end

    def park(self, core: int, time: float) -> None:
        """Mark a core idle at ``time`` without re-queueing it."""
        self.free_at[core] = time

    @property
    def makespan(self) -> float:
        return float(self.free_at.max())


class Scheduler(abc.ABC):
    """Interface of the simulated shared-memory schedulers."""

    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, tasks: Sequence[SimTask], n_cores: int) -> ScheduleResult:
        """Place ``tasks`` on ``n_cores`` cores and return the timing outcome."""

    def throughput(self, tasks: Sequence[SimTask], n_cores: int) -> float:
        """Convenience: items per second for this task set on ``n_cores`` cores."""
        return self.schedule(tasks, n_cores).throughput()


def simulate_serial(tasks: Iterable[SimTask]) -> ScheduleResult:
    """Reference single-core execution (sum of unsplit durations)."""
    tasks = list(tasks)
    total = float(sum(t.duration for t in tasks))
    return ScheduleResult(
        n_cores=1,
        makespan=total,
        core_busy=np.array([total]),
        n_tasks=len(tasks),
        scheduler="serial",
    )


def tasks_from_degrees(
    degrees: Sequence[int] | np.ndarray,
    num_latent: int,
    cost_model: UpdateCostModel | None = None,
    policy: HybridUpdatePolicy | None = None,
    workers_hint: int = 4,
    tag: str = "",
    id_offset: int = 0,
) -> List[SimTask]:
    """Turn a degree sequence (ratings per item) into simulated tasks.

    The hybrid policy chooses each item's update method; heavy items get the
    per-block sub-task durations the work-stealing scheduler can exploit.
    ``duration`` is always the *serial* execution time of the chosen method
    (what a scheduler without nested parallelism pays).
    """
    cost_model = cost_model or DEFAULT_COST_MODEL
    policy = policy or HybridUpdatePolicy()
    degrees = np.asarray(degrees, dtype=np.int64)
    tasks: List[SimTask] = []
    for index, degree in enumerate(degrees):
        n = int(degree)
        method = policy.choose(n)
        serial_duration = float(cost_model.cost(
            n, method if method is not UpdateMethod.PARALLEL_CHOLESKY
            else UpdateMethod.SERIAL_CHOLESKY, num_latent))
        subtasks: tuple = ()
        if method is UpdateMethod.PARALLEL_CHOLESKY:
            n_sub = policy.n_subtasks(n)
            # Gram-block sub-tasks: each processes ~n/n_sub ratings; the last
            # sub-task also carries the factorisation + reduction cost.
            per_block = float(cost_model.chol_per_rating
                              * (num_latent / cost_model.k_ref) ** 2 * n / n_sub)
            tail = float(cost_model.cost(0, UpdateMethod.PARALLEL_CHOLESKY,
                                         num_latent, workers=1))
            subtasks = tuple([per_block] * (n_sub - 1) + [per_block + tail])
        tasks.append(SimTask(
            task_id=id_offset + index,
            duration=serial_duration,
            subtask_durations=subtasks,
            tag=tag or method.value,
        ))
    return tasks
