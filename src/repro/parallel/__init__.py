"""Shared-memory parallel substrate (simulated multicore machine).

The paper's multicore study (Section III, Figure 3) compares three ways of
running the per-item updates of one Gibbs sweep on a 12-core node:

* a **TBB** version — work-stealing scheduler with nested parallelism, so
  heavy items split into sub-tasks that idle cores can steal;
* an **OpenMP** version — static loop partitioning, no effective nested
  parallelism;
* a **GraphLab** version — a synchronous vertex-program engine that trades
  performance for programmability.

The reproduction environment has a single CPU core, so raw threading cannot
demonstrate scaling.  Instead this package provides:

* a **calibrated cost model** (:mod:`repro.parallel.cost_model`) that maps an
  item's rating count and update method to a kernel time, with coefficients
  fitted to *measured* timings of the real numpy kernels;
* a **discrete-event simulated machine** (:mod:`repro.parallel.simulator`)
  on which three *real scheduling algorithms*
  (:mod:`repro.parallel.work_stealing`, :mod:`repro.parallel.static_scheduler`,
  :mod:`repro.parallel.graph_engine`) place the real task multiset derived
  from the dataset's sparsity pattern;
* a **thread-pool backend** (:mod:`repro.parallel.thread_backend`) that runs
  the same task decomposition with genuine Python threads for functional
  (correctness) validation.

Only *time* is simulated; the tasks, their sizes and the scheduling
decisions are all real, which is what lets the Figure 3 shape emerge from
mechanism rather than from hard-coded curves.
"""

from repro.parallel.cost_model import (
    UpdateCostModel,
    WorkloadModel,
    calibrate_cost_model,
    DEFAULT_COST_MODEL,
)
from repro.parallel.simulator import (
    SimTask,
    ScheduleResult,
    Scheduler,
    simulate_serial,
    tasks_from_degrees,
)
from repro.parallel.work_stealing import WorkStealingScheduler
from repro.parallel.static_scheduler import StaticScheduler, DynamicChunkScheduler
from repro.parallel.graph_engine import GraphEngineScheduler
from repro.parallel.thread_backend import ThreadPoolBackend

__all__ = [
    "UpdateCostModel",
    "WorkloadModel",
    "calibrate_cost_model",
    "DEFAULT_COST_MODEL",
    "SimTask",
    "ScheduleResult",
    "Scheduler",
    "simulate_serial",
    "tasks_from_degrees",
    "WorkStealingScheduler",
    "StaticScheduler",
    "DynamicChunkScheduler",
    "GraphEngineScheduler",
    "ThreadPoolBackend",
]
