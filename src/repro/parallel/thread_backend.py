"""Real-thread execution backend for functional validation.

The simulated schedulers answer the paper's *performance* questions; this
backend answers the *correctness* question: the multicore sampler really
can update disjoint items concurrently (the conditional of item ``i`` never
reads another item of the same entity class, only the other class's
factors, which are frozen during the phase).  It runs item updates on a
:class:`concurrent.futures.ThreadPoolExecutor`; with CPython's GIL and a
single available core this brings no speed-up — it exists to prove the
decomposition is race-free and to exercise the same code path a real
multicore deployment would use.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence

from repro.utils.validation import check_positive

__all__ = ["ThreadPoolBackend"]


class ThreadPoolBackend:
    """Execute a per-item callable over an index set with real threads.

    Parameters
    ----------
    n_threads:
        Number of worker threads.  ``1`` degenerates to a plain loop (and
        is the default used by the test-suite for determinism).
    chunk_size:
        Indices are submitted in chunks of this size to bound executor
        overhead on large item counts.
    """

    def __init__(self, n_threads: int = 1, chunk_size: int = 64):
        check_positive("n_threads", n_threads)
        check_positive("chunk_size", chunk_size)
        self.n_threads = n_threads
        self.chunk_size = chunk_size

    def map_items(self, func: Callable[[int], None], items: Sequence[int] | Iterable[int]) -> int:
        """Call ``func(item)`` for every item; returns the number processed.

        Exceptions raised by ``func`` propagate to the caller (after all
        submitted chunks finish), matching the fail-fast behaviour the
        samplers expect.
        """
        items = list(items)
        if self.n_threads == 1:
            for item in items:
                func(int(item))
            return len(items)

        def run_chunk(chunk: List[int]) -> None:
            for item in chunk:
                func(int(item))

        chunks = [items[i:i + self.chunk_size]
                  for i in range(0, len(items), self.chunk_size)]
        with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            for future in futures:
                future.result()
        return len(items)
