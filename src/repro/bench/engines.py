"""Engine ladder benchmark: reference vs batched vs shared-memory.

PR 1 established that the batched engine beats the per-item loop by one to
two orders of magnitude; this driver records the *next* rung — the
zero-copy shared-memory process backend — at several worker counts and
latent dimensions, on the same synthetic full-sweep workload the
``benchmarks/test_batched_engine.py`` acceptance tests use.  The result
carries enough machine metadata (CPU count, Python/numpy versions,
multiprocessing start method) to make recorded numbers interpretable, and
serialises to the ``BENCH_*.json`` format via :meth:`to_json_payload`
(``python -m repro.bench engines --record`` writes ``BENCH_pr3.json``).

Speed-ups are only meaningful relative to the *cores actually available*:
on a single-core container the shared engine pays IPC overhead for no
parallelism, and the recorded JSON will honestly show that.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.core.state import initialize_state
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.utils.environment import machine_environment
from repro.utils.tables import Table
from repro.utils.timing import time_call
from repro.utils.validation import check_positive

__all__ = ["EngineBenchRow", "EngineBenchResult", "run_engine_bench",
           "time_engine_case"]


@dataclass
class EngineBenchRow:
    """One timed (engine, workers, dtype, K) configuration."""

    engine: str
    workers: Optional[int]
    compute_dtype: str
    num_latent: int
    seconds_per_sweep: float
    items_per_second: float
    speedup_vs_reference: Optional[float] = None
    speedup_vs_batched1: Optional[float] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "workers": self.workers,
            "compute_dtype": self.compute_dtype,
            "num_latent": self.num_latent,
            "seconds_per_sweep": self.seconds_per_sweep,
            "items_per_second": self.items_per_second,
            "speedup_vs_reference": self.speedup_vs_reference,
            "speedup_vs_batched1": self.speedup_vs_batched1,
        }


@dataclass
class EngineBenchResult:
    """All timed configurations plus workload and machine metadata."""

    rows: List[EngineBenchRow]
    workload: Dict[str, object]
    environment: Dict[str, object]
    sweeps: int = 1
    repeats: int = 1

    def to_table(self) -> Table:
        table = Table(
            ["engine", "workers", "dtype", "K", "s/sweep", "items/s",
             "vs reference", "vs batched@1"],
            title="Engine ladder — full-sweep wall clock",
        )
        for row in self.rows:
            table.add_row(
                row.engine,
                "-" if row.workers is None else row.workers,
                row.compute_dtype,
                row.num_latent,
                round(row.seconds_per_sweep, 5),
                round(row.items_per_second, 1),
                ("-" if row.speedup_vs_reference is None
                 else f"{row.speedup_vs_reference:.1f}x"),
                ("-" if row.speedup_vs_batched1 is None
                 else f"{row.speedup_vs_batched1:.2f}x"),
            )
        return table

    def to_json_payload(self) -> Dict[str, object]:
        """The ``BENCH_*.json`` document for this run."""
        return {
            "benchmark": "engine-ladder",
            "created": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "environment": dict(self.environment),
            "workload": dict(self.workload),
            "timing": {"sweeps_per_measurement": self.sweeps,
                       "repeats": self.repeats,
                       "estimator": "best-of-repeats"},
            "results": [row.to_json() for row in self.rows],
        }


def time_engine_case(engine: str, workers: Optional[int], compute_dtype: str,
                     train, config: BPMFConfig, sweeps: int,
                     repeats: int) -> float:
    """Best-of-``repeats`` per-sweep seconds for one engine configuration.

    Every case starts from an identically seeded state and generator, and
    runs one untimed warm-up sweep first so plan construction and (for the
    shared engine) pool spawning are paid outside the measurement — that
    matches production use, where the pool persists across a whole run.
    This is the single measurement methodology shared by the recorded
    ladder and the ``benchmarks/`` speedup-floor test.
    """
    options = SamplerOptions(
        engine=engine, compute_dtype=compute_dtype,
        n_workers=workers if engine == "shared" else None)
    sampler = GibbsSampler(config, options)
    try:
        state = initialize_state(train, config, np.random.default_rng(1234))
        rng = np.random.default_rng(5678)
        sampler.sweep(state, train, rng)  # warm-up

        def measured() -> None:
            for _ in range(sweeps):
                sampler.sweep(state, train, rng)

        seconds, _ = time_call(measured, repeats=repeats)
        return seconds / sweeps
    finally:
        sampler.engine.close()


def run_engine_bench(
    n_users: int = 1500,
    n_movies: int = 1000,
    density: float = 0.02,
    num_latents: Sequence[int] = (16, 32),
    worker_counts: Sequence[int] = (1, 2, 4),
    sweeps: int = 2,
    repeats: int = 2,
    include_reference: bool = True,
    include_float32: bool = True,
    seed: int = 99,
) -> EngineBenchResult:
    """Time reference vs batched vs shared on one synthetic workload.

    Parameters
    ----------
    n_users, n_movies, density:
        Synthetic low-rank workload shape (larger than the test fixtures so
        per-sweep times are well above timer noise).
    num_latents:
        Latent dimensions to sweep (memory-bandwidth pressure grows with K).
    worker_counts:
        Process-pool sizes for the shared engine.
    sweeps, repeats:
        Each measurement times ``sweeps`` consecutive sweeps and keeps the
        best of ``repeats`` runs.
    include_reference:
        Also time the per-item loop (slow — the point of the ladder).
    include_float32:
        Add float32 variants of the batched engine and the widest shared
        configuration.
    """
    check_positive("sweeps", sweeps)
    check_positive("repeats", repeats)
    data = make_low_rank_dataset(SyntheticConfig(
        n_users=n_users, n_movies=n_movies, rank=5, density=density,
        noise_std=0.3, test_fraction=0.1, seed=seed))
    train = data.split.train
    n_items = train.n_users + train.n_movies

    rows: List[EngineBenchRow] = []
    for num_latent in num_latents:
        config = BPMFConfig(num_latent=int(num_latent), burn_in=0,
                            n_samples=1, alpha=4.0)
        cases: List[Tuple[str, Optional[int], str]] = []
        if include_reference:
            cases.append(("reference", None, "float64"))
        cases.append(("batched", None, "float64"))
        cases.extend(("shared", int(workers), "float64")
                     for workers in worker_counts)
        if include_float32:
            cases.append(("batched", None, "float32"))
            cases.append(("shared", int(max(worker_counts)), "float32"))

        baselines: Dict[str, float] = {}
        for engine, workers, compute_dtype in cases:
            seconds = time_engine_case(engine, workers, compute_dtype, train,
                                       config, sweeps, repeats)
            if engine == "reference":
                baselines["reference"] = seconds
            if engine == "batched" and compute_dtype == "float64":
                baselines["batched1"] = seconds
            rows.append(EngineBenchRow(
                engine=engine,
                workers=workers,
                compute_dtype=compute_dtype,
                num_latent=int(num_latent),
                seconds_per_sweep=seconds,
                items_per_second=n_items / seconds,
                speedup_vs_reference=(
                    baselines["reference"] / seconds
                    if "reference" in baselines else None),
                speedup_vs_batched1=(
                    baselines["batched1"] / seconds
                    if "batched1" in baselines else None),
            ))

    return EngineBenchResult(
        rows=rows,
        workload={
            "dataset": "synthetic-low-rank",
            "n_users": train.n_users,
            "n_movies": train.n_movies,
            "nnz": train.nnz,
            "density": train.density,
            "seed": seed,
        },
        environment=machine_environment(),
        sweeps=sweeps,
        repeats=repeats,
    )
