"""Benchmark harness: one driver module per figure/claim of the paper.

Every experiment in the paper's evaluation section has a driver here that
builds the workload, runs the relevant part of the library and returns the
figure's data series as a :class:`repro.utils.tables.Table` plus structured
results the ``benchmarks/`` pytest targets assert shape properties on:

============================  =========================================
Experiment                    Driver
============================  =========================================
Figure 2 (update kernels)     :func:`repro.bench.fig2_update_methods.run_fig2`
Figure 3 (multicore)          :func:`repro.bench.fig3_multicore.run_fig3`
Figure 4 (strong scaling)     :func:`repro.bench.fig4_strong_scaling.run_fig4`
Figure 5 (overlap breakdown)  :func:`repro.bench.fig5_overlap.run_fig5`
RMSE parity claim             :func:`repro.bench.accuracy.run_accuracy_parity`
15 days -> 30 minutes claim   :func:`repro.bench.speedup_summary.run_speedup_summary`
============================  =========================================
"""

from repro.bench.runner import ExperimentResult, run_experiment, available_experiments
from repro.bench.fig2_update_methods import Fig2Result, run_fig2
from repro.bench.fig3_multicore import Fig3Result, run_fig3
from repro.bench.fig4_strong_scaling import Fig4Result, run_fig4
from repro.bench.fig5_overlap import Fig5Result, run_fig5
from repro.bench.accuracy import AccuracyParityResult, run_accuracy_parity
from repro.bench.speedup_summary import SpeedupSummaryResult, run_speedup_summary

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "available_experiments",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "AccuracyParityResult",
    "run_accuracy_parity",
    "SpeedupSummaryResult",
    "run_speedup_summary",
]
