"""Command-line entry point: ``python -m repro.bench [experiment ...]``.

Runs the requested experiments (default: all of them) and prints each
figure's data table.  Pass ``--list`` to see what is available, and
``--record [PATH]`` to persist the engine-ladder timings as a
``BENCH_*.json`` document (default path ``BENCH_pr3.json``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.runner import available_experiments, run_experiment

DEFAULT_RECORD_PATH = "BENCH_pr3.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--quick", action="store_true",
                        help="run reduced-size versions of every experiment "
                             "(the CI smoke configuration)")
    parser.add_argument("--record", nargs="?", const=DEFAULT_RECORD_PATH,
                        default=None, metavar="PATH",
                        help="write the engine-ladder timings to PATH as "
                             f"JSON (default {DEFAULT_RECORD_PATH}); adds "
                             "the 'engines' experiment if not selected")
    args = parser.parse_args(argv)

    registry = available_experiments()
    if args.list:
        for name, description in registry.items():
            print(f"{name:12s} {description}")
        return 0

    names = args.experiments or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    if args.record and "engines" not in names:
        names.append("engines")

    for name in names:
        outcome = run_experiment(name, quick=args.quick)
        print(outcome.render())
        print()
        if args.record and name == "engines":
            payload = outcome.result.to_json_payload()
            payload["quick"] = bool(args.quick)
            payload["wall_seconds"] = round(outcome.seconds, 2)
            with open(args.record, "w", encoding="utf8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"recorded engine timings -> {args.record}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
