"""Command-line entry point: ``python -m repro.bench [experiment ...]``.

Runs the requested experiments (default: all of them) and prints each
figure's data table.  Pass ``--list`` to see what is available, and
``--record [PATH]`` to persist recordable timings (the ``engines`` and
``serving`` ladders) as ``BENCH_*.json`` documents — without an explicit
PATH each ladder goes to its committed default
(``BENCH_pr3.json``/``BENCH_pr9.json``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.runner import available_experiments, run_experiment
from repro.utils.logging import set_verbosity

#: Committed baseline path per recordable experiment.
DEFAULT_RECORD_PATHS = {"engines": "BENCH_pr3.json",
                        "serving": "BENCH_pr9.json",
                        "distributed": "BENCH_pr10.json"}

#: --transport choices mapped to the serving ladder's ``transports`` arg.
_TRANSPORTS = {"inproc": ("inproc",), "tcp": ("tcp",),
               "both": ("inproc", "tcp")}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--quick", action="store_true",
                        help="run reduced-size versions of every experiment "
                             "(the CI smoke configuration)")
    parser.add_argument("--record", nargs="?", const="auto",
                        default=None, metavar="PATH",
                        help="write recordable timings (engines, serving) "
                             "to PATH as JSON; without PATH each ladder "
                             "goes to its committed default "
                             f"({DEFAULT_RECORD_PATHS}); adds the "
                             "'engines' experiment if none is selected")
    parser.add_argument("--transport", choices=sorted(_TRANSPORTS),
                        default="both",
                        help="serving-ladder rungs: direct in-process "
                             "calls, the framed-RPC TCP frontend, or both "
                             "(other experiments ignore this)")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="emit library logs on stderr at this level "
                             "(default: logging stays untouched)")
    args = parser.parse_args(argv)
    if args.log_level:
        set_verbosity(args.log_level)

    registry = available_experiments()
    if args.list:
        for name, description in registry.items():
            print(f"{name:12s} {description}")
        return 0

    names = args.experiments or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    if args.record and not any(name in DEFAULT_RECORD_PATHS
                               for name in names):
        names.append("engines")
    recordable = [name for name in names if name in DEFAULT_RECORD_PATHS]
    if args.record not in (None, "auto") and len(recordable) > 1:
        print(f"--record {args.record} is ambiguous for "
              f"{'+'.join(recordable)}: each would overwrite the file; "
              "select one experiment or use bare --record for the "
              "per-experiment defaults", file=sys.stderr)
        return 2

    for name in names:
        extra = ({"transports": _TRANSPORTS[args.transport]}
                 if name == "serving" else {})
        outcome = run_experiment(name, quick=args.quick, **extra)
        print(outcome.render())
        print()
        if args.record and name in DEFAULT_RECORD_PATHS:
            payload = outcome.result.to_json_payload()
            payload["quick"] = bool(args.quick)
            payload["wall_seconds"] = round(outcome.seconds, 2)
            path = (DEFAULT_RECORD_PATHS[name] if args.record == "auto"
                    else args.record)
            with open(path, "w", encoding="utf8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"recorded {name} timings -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
