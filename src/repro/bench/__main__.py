"""Command-line entry point: ``python -m repro.bench [experiment ...]``.

Runs the requested experiments (default: all of them) and prints each
figure's data table.  Pass ``--list`` to see what is available.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.runner import available_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--quick", action="store_true",
                        help="run reduced-size versions of every experiment "
                             "(the CI smoke configuration)")
    args = parser.parse_args(argv)

    registry = available_experiments()
    if args.list:
        for name, description in registry.items():
            print(f"{name:10s} {description}")
        return 0

    names = args.experiments or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2

    for name in names:
        outcome = run_experiment(name, quick=args.quick)
        print(outcome.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
