"""Distributed-transport ladder: simulated vs socket MPI, ranks x K.

Runs the same fixed-seed distributed Gibbs chain through both comm
worlds — the in-memory :class:`~repro.mpi.simmpi.SimCommWorld` (zero
wire cost, the orchestrated baseline) and the socket-backed
:class:`~repro.mpi.net.SocketCommWorld` (real localhost TCP links, the
frame codec, receiver threads, flush barriers) — across a grid of rank
counts and latent dimensions.  Because the socket chain is bit-identical
to the simulated one by construction, the rungs time *the same
arithmetic*; the gap between the two transports at one grid point is
purely the wire: framing, kernel crossings, and barrier round-trips.

Every row also re-checks that parity (``parity`` column): the socket
run's final RMSE must equal the simulated run's bitwise, so a timing
document can never silently describe two different chains.

Read the numbers with the machine in mind: on a single-core container
(the committed baseline — see ``environment.cpu_count``) all socket
ranks time-slice one CPU, so the ladder measures transport overhead
only, not parallel speed-up; rank scaling needs real cores or hosts
(``python -m repro.mpi.net --spawn``).

``python -m repro.bench distributed --record`` writes the recorded
document to ``BENCH_pr10.json``.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.priors import BPMFConfig
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.utils.environment import machine_environment
from repro.utils.tables import Table
from repro.utils.validation import check_positive

__all__ = ["DistributedBenchRow", "DistributedBenchResult",
           "run_distributed_bench"]


@dataclass
class DistributedBenchRow:
    """One timed (transport, ranks, K) rung."""

    transport: str
    ranks: int
    num_latent: int
    sweeps: int
    seconds: float
    sweeps_per_s: float
    messages: int
    mb_sent: float
    final_rmse: float
    parity: Optional[bool]
    vs_sim: Optional[float]

    def to_json(self) -> Dict[str, object]:
        return {
            "transport": self.transport,
            "ranks": self.ranks,
            "num_latent": self.num_latent,
            "sweeps": self.sweeps,
            "seconds": self.seconds,
            "sweeps_per_s": self.sweeps_per_s,
            "messages": self.messages,
            "mb_sent": self.mb_sent,
            "final_rmse": self.final_rmse,
            "parity": self.parity,
            "vs_sim": self.vs_sim,
        }


@dataclass
class DistributedBenchResult:
    """All rungs plus workload and machine metadata."""

    rows: List[DistributedBenchRow]
    workload: Dict[str, object]
    environment: Dict[str, object]

    def to_table(self) -> Table:
        table = Table(
            ["transport", "ranks", "K", "sweeps", "seconds", "sweeps/s",
             "msgs", "MB sent", "final rmse", "parity", "vs sim"],
            title="Distributed ladder — simulated vs socket comm world",
        )
        for row in self.rows:
            table.add_row(
                row.transport, row.ranks, row.num_latent, row.sweeps,
                round(row.seconds, 3), round(row.sweeps_per_s, 2),
                row.messages, round(row.mb_sent, 3),
                round(row.final_rmse, 6),
                "-" if row.parity is None else ("ok" if row.parity
                                                else "MISMATCH"),
                "-" if row.vs_sim is None else f"{row.vs_sim:.2f}x",
            )
        return table

    def to_json_payload(self) -> Dict[str, object]:
        """The ``BENCH_pr10.json`` document for this run."""
        return {
            "benchmark": "distributed-ladder",
            "created": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "environment": dict(self.environment),
            "workload": dict(self.workload),
            "results": [row.to_json() for row in self.rows],
        }


def run_distributed_bench(
    n_users: int = 400,
    n_movies: int = 300,
    density: float = 0.05,
    num_latents: Sequence[int] = (8, 16),
    rank_counts: Sequence[int] = (2, 4),
    burn_in: int = 2,
    n_samples: int = 4,
    alpha: float = 4.0,
    hyper_mode: str = "gather",
    buffer_capacity: int = 64,
    seed: int = 7,
    data_seed: int = 321,
) -> DistributedBenchResult:
    """Time the distributed chain over both transports on a ranks x K grid.

    Each grid point runs the *identical* fixed-seed chain twice: through
    ``SimCommWorld`` (transport ``sim``) and through localhost TCP
    sockets (transport ``socket``, one thread per rank via
    :func:`~repro.distributed.spmd.run_local_socket_world`).  ``vs_sim``
    is the socket rung's sweep rate over the sim rung's at the same grid
    point — the price of the real wire; ``parity`` re-asserts the
    bit-identical final RMSE that the test suite pins.
    """
    from repro.distributed.sampler import (
        DistributedGibbsSampler,
        DistributedOptions,
    )
    from repro.distributed.spmd import run_local_socket_world

    check_positive("n_samples", n_samples)
    data = make_low_rank_dataset(SyntheticConfig(
        n_users=n_users, n_movies=n_movies, rank=4, density=density,
        noise_std=0.3, test_fraction=0.2, seed=data_seed))
    sweeps = burn_in + n_samples

    rows: List[DistributedBenchRow] = []
    for num_latent in num_latents:
        config = BPMFConfig(num_latent=num_latent, burn_in=burn_in,
                            n_samples=n_samples, alpha=alpha)
        for n_ranks in rank_counts:
            options = DistributedOptions(n_ranks=n_ranks,
                                         hyper_mode=hyper_mode,
                                         buffer_capacity=buffer_capacity)

            begin = time.perf_counter()
            sim_result, sim_info = DistributedGibbsSampler(
                config, options).run(data.split.train, data.split,
                                     seed=seed)
            sim_seconds = time.perf_counter() - begin
            sim_rate = sweeps / sim_seconds
            rows.append(DistributedBenchRow(
                transport="sim", ranks=n_ranks, num_latent=num_latent,
                sweeps=sweeps, seconds=sim_seconds, sweeps_per_s=sim_rate,
                messages=sim_info.n_messages,
                mb_sent=sim_info.bytes_sent / 1e6,
                final_rmse=float(sim_result.final_rmse),
                parity=None, vs_sim=None,
            ))

            begin = time.perf_counter()
            outcomes = run_local_socket_world(
                lambda: DistributedGibbsSampler(config, options),
                n_ranks, data.split.train, data.split, seed=seed)
            socket_seconds = time.perf_counter() - begin
            socket_result, _ = outcomes[0]
            socket_rate = sweeps / socket_seconds
            rows.append(DistributedBenchRow(
                transport="socket", ranks=n_ranks, num_latent=num_latent,
                sweeps=sweeps, seconds=socket_seconds,
                sweeps_per_s=socket_rate,
                # Each rank's info counts its own sends; the world total
                # is their sum (the sim transport already reports totals).
                messages=sum(info.n_messages for _, info in outcomes),
                mb_sent=sum(info.bytes_sent for _, info in outcomes) / 1e6,
                final_rmse=float(socket_result.final_rmse),
                parity=(socket_result.final_rmse == sim_result.final_rmse
                        and socket_result.rmse_running_mean
                        == sim_result.rmse_running_mean),
                vs_sim=socket_rate / sim_rate,
            ))

    return DistributedBenchResult(
        rows=rows,
        workload={
            "dataset": "synthetic-low-rank",
            "n_users": n_users,
            "n_movies": n_movies,
            "density": density,
            "num_latents": list(num_latents),
            "rank_counts": list(rank_counts),
            "burn_in": burn_in,
            "n_samples": n_samples,
            "hyper_mode": hyper_mode,
            "buffer_capacity": buffer_capacity,
            "seed": seed,
            "data_seed": data_seed,
            "note": ("socket ranks are threads on localhost TCP; on a "
                     "single-core machine this measures wire overhead, "
                     "not parallel speed-up"),
        },
        environment=machine_environment(),
    )
