"""Figure 4 — distributed strong scaling on a MovieLens-scale workload.

The paper runs the MPI implementation on a BlueGene/Q (16-core nodes,
32-node racks) over 1–1024 nodes of the ml-20m workload and reports item
updates per second together with the parallel efficiency.  The headline
shape: scaling is good — even super-linear, because per-node working sets
shrink into cache — up to one rack (32 nodes), and degrades significantly
once the allocation spans racks.

This driver builds a structural workload with the full ml-20m user/movie
counts (ratings count configurable; the default keeps the sweep to a couple
of minutes), configures a BlueGene/Q-like cluster and network model, and
runs :func:`repro.distributed.scaling.strong_scaling_study`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datasets.scaling_workload import ScalingWorkloadConfig, make_scaling_workload
from repro.distributed.scaling import ScalingConfig, StrongScalingResult, strong_scaling_study
from repro.mpi.network import ClusterSpec, NetworkModel
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table

__all__ = ["Fig4Result", "run_fig4", "bluegene_like_config", "DEFAULT_NODE_COUNTS"]

#: Node counts on the x-axis (1 node = 16 cores, as in the paper).
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def bluegene_like_config(num_latent: int = 64,
                         rack_size: int = 32,
                         buffer_capacity: int = 256) -> ScalingConfig:
    """A BlueGene/Q-flavoured cluster + network configuration.

    The parameters are order-of-magnitude estimates of the machine the
    paper used (16-core 1.6 GHz nodes, 32 MB L2, ~2 GB/s links, 32-node
    racks with a shared optical uplink); they are inputs to the model, not
    quantities fitted to the paper's curves.
    """
    return ScalingConfig(
        num_latent=num_latent,
        buffer_capacity=buffer_capacity,
        cluster=ClusterSpec(
            cores_per_node=16,
            rack_size=rack_size,
            cache_bytes=32 * 1024 * 1024,
            cache_speedup=1.35,
            node_compute_efficiency=0.9,
        ),
        network=NetworkModel(
            per_message_overhead=4.0e-6,
            intra_latency=2.0e-6,
            inter_latency=1.2e-5,
            intra_bandwidth=1.8e9,
            inter_bandwidth=0.7e9,
            uplink_bandwidth=4.0e9,
        ),
    )


@dataclass
class Fig4Result:
    """The scaling study plus the workload description."""

    scaling: StrongScalingResult
    workload_shape: tuple
    workload_nnz: int

    @property
    def node_counts(self) -> List[int]:
        return [point.n_nodes for point in self.scaling.points]

    def throughput_series(self) -> List[float]:
        return self.scaling.throughput_series()

    def efficiency_series(self) -> List[float]:
        return self.scaling.efficiency_series()

    def to_table(self) -> Table:
        return self.scaling.to_table()


def run_fig4(
    ratings: RatingMatrix | None = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    config: Optional[ScalingConfig] = None,
    n_ratings: int = 10_000_000,
    seed: int = 13,
) -> Fig4Result:
    """Regenerate Figure 4's data.

    ``n_ratings`` is the *requested* number of structural ratings; after
    duplicate removal the realised count is roughly half, which is the
    quantity reported in ``workload_nnz``.
    """
    if ratings is None:
        ratings = make_scaling_workload(ScalingWorkloadConfig(
            n_ratings=n_ratings, seed=seed))
    config = config or bluegene_like_config()
    scaling = strong_scaling_study(ratings, node_counts=node_counts, config=config)
    return Fig4Result(scaling=scaling, workload_shape=ratings.shape,
                      workload_nnz=ratings.nnz)
