"""Uniform experiment runner.

Gives every figure/claim driver a common entry point so examples, the
command line (``python -m repro.bench``) and the pytest benchmark targets
can run any experiment by name and print its table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.utils.tables import Table
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_in

__all__ = ["ExperimentResult", "available_experiments", "run_experiment"]


@dataclass
class ExperimentResult:
    """A named experiment's raw result object, its table and its runtime."""

    name: str
    result: object
    table: Table
    seconds: float

    def render(self) -> str:
        return (f"== {self.name} (completed in {self.seconds:.1f}s) ==\n"
                f"{self.table.render()}")


def _experiments() -> Dict[str, Tuple[Callable[[], object], Callable[[object], Table], str]]:
    # Imported lazily to keep `import repro.bench.runner` cheap.
    from repro.bench.accuracy import run_accuracy_parity
    from repro.bench.distributed import run_distributed_bench
    from repro.bench.engines import run_engine_bench
    from repro.bench.fig2_update_methods import run_fig2, run_fig2_batched
    from repro.bench.fig3_multicore import run_fig3
    from repro.bench.fig4_strong_scaling import run_fig4
    from repro.bench.fig5_overlap import run_fig5
    from repro.bench.serving import run_serving_bench
    from repro.bench.speedup_summary import run_speedup_summary

    return {
        "fig2": (run_fig2, lambda r: r.to_table("modelled"),
                 "Figure 2: per-item update time vs rating count"),
        "fig2-batched": (run_fig2_batched, lambda r: r.to_table(),
                         "Figure 2 variant: batched engine vs per-item loop"),
        "engines": (run_engine_bench, lambda r: r.to_table(),
                    "Engine ladder: reference vs batched vs shared-memory "
                    "process pool (records BENCH_*.json via --record)"),
        "serving": (run_serving_bench, lambda r: r.to_table(),
                    "Serving ladder: single-process top-N vs sharded "
                    "cluster, shards x workers (records BENCH_*.json via "
                    "--record)"),
        "distributed": (run_distributed_bench, lambda r: r.to_table(),
                        "Distributed ladder: simulated vs socket comm "
                        "world, ranks x K (records BENCH_*.json via "
                        "--record)"),
        "fig3": (run_fig3, lambda r: r.to_table(),
                 "Figure 3: multicore throughput vs threads"),
        "fig4": (run_fig4, lambda r: r.to_table(),
                 "Figure 4: distributed strong scaling"),
        "fig5": (run_fig5, lambda r: r.to_table(),
                 "Figure 5: compute / both / communicate breakdown"),
        "accuracy": (run_accuracy_parity, lambda r: r.to_table(),
                     "RMSE parity across implementations"),
        "speedup": (run_speedup_summary, lambda r: r.to_table(),
                    "End-to-end 15-days-to-30-minutes speed-up ladder"),
    }


def _quick_overrides() -> Dict[str, Dict[str, object]]:
    """Reduced-size kwargs so every experiment finishes in seconds.

    Used by ``python -m repro.bench --quick`` — the CI smoke target.  The
    overrides shrink sweep ranges and workload sizes; they never change the
    code paths exercised.
    """
    from repro.core.priors import BPMFConfig

    return {
        "fig2": dict(degrees=(1, 8, 64, 512), repeats=1,
                     max_rank_one_degree=64),
        "fig2-batched": dict(degrees=(1, 8, 64), batch_size=64,
                             n_source=512, repeats=1),
        # The CI smoke entry exercises the shared engine on 2 workers.
        "engines": dict(n_users=400, n_movies=300, density=0.03,
                        num_latents=(8,), worker_counts=(1, 2),
                        sweeps=1, repeats=1),
        # The serving-cluster smoke: a 2-shard gateway on a small posterior.
        "serving": dict(n_users=300, n_items=400, num_latent=8,
                        shard_counts=(1, 2), n_queries=60, warmup=5,
                        wal_writes=40, wal_sync_ladder=(1,)),
        "distributed": dict(n_users=120, n_movies=90, density=0.1,
                            num_latents=(4,), rank_counts=(2,),
                            burn_in=1, n_samples=2),
        "fig3": dict(chembl_scale=10.0, thread_counts=(1, 2)),
        "fig4": dict(n_ratings=100_000, node_counts=(1, 4)),
        "fig5": dict(n_ratings=100_000, node_counts=(1, 4)),
        "accuracy": dict(config=BPMFConfig(num_latent=4, burn_in=2,
                                           n_samples=3, alpha=4.0)),
        "speedup": dict(chembl_scale=10.0, n_iterations=5),
    }


def available_experiments() -> Dict[str, str]:
    """Mapping of experiment name to a one-line description."""
    return {name: description for name, (_, _, description) in _experiments().items()}


def run_experiment(name: str, quick: bool = False, **kwargs) -> ExperimentResult:
    """Run one experiment by name (``fig2`` .. ``fig5``, ``accuracy``, ``speedup``).

    ``quick=True`` applies the reduced-size kwargs used by the CI smoke run
    (explicit ``kwargs`` still win over the quick defaults).
    """
    registry = _experiments()
    check_in("name", name, registry.keys())
    runner, tabulate, _ = registry[name]
    if quick:
        kwargs = {**_quick_overrides().get(name, {}), **kwargs}
    watch = Stopwatch().start()
    result = runner(**kwargs)
    seconds = watch.stop()
    return ExperimentResult(name=name, result=result, table=tabulate(result),
                            seconds=seconds)
