"""Figure 3 — multicore throughput versus thread count on ChEMBL.

Drives :func:`repro.multicore.sweep.multicore_thread_sweep` on a ChEMBL-like
workload with the paper's three execution models (TBB-like work stealing,
OpenMP-like static loop, GraphLab-like vertex engine) over 1–16 threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.datasets.chembl import ChemblLikeConfig, make_chembl_like
from repro.multicore.sweep import ThreadSweepResult, multicore_thread_sweep
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table

__all__ = ["Fig3Result", "run_fig3"]

#: Thread counts on the x-axis (the paper's node has 12 cores / 24 threads;
#: the figure sweeps 1..16).
DEFAULT_THREADS = (1, 2, 4, 8, 16)


@dataclass
class Fig3Result:
    """Throughput per scheduler and thread count, plus derived speed-ups."""

    sweep: ThreadSweepResult
    dataset_shape: tuple
    dataset_nnz: int

    @property
    def thread_counts(self) -> List[int]:
        return self.sweep.thread_counts

    @property
    def throughput(self) -> Dict[str, List[float]]:
        return self.sweep.throughput

    def speedup(self, scheduler: str) -> List[float]:
        return self.sweep.speedup(scheduler)

    def to_table(self) -> Table:
        return self.sweep.to_table()


def run_fig3(
    ratings: RatingMatrix | None = None,
    chembl_scale: float = 50.0,
    num_latent: int = 32,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    seed: int = 11,
) -> Fig3Result:
    """Regenerate Figure 3's data.

    When ``ratings`` is not supplied a ChEMBL-like dataset at
    ``chembl_scale`` (default ~9 700 compounds x 115 targets, ~20 000
    activities) is generated — the same heavy-tailed target-popularity
    structure as the paper's ChEMBL subset, scaled down so the sweep runs
    in seconds.
    """
    if ratings is None:
        ratings = make_chembl_like(ChemblLikeConfig(scale=chembl_scale, seed=seed)).ratings
    sweep = multicore_thread_sweep(ratings, num_latent=num_latent,
                                   thread_counts=thread_counts)
    return Fig3Result(sweep=sweep, dataset_shape=ratings.shape,
                      dataset_nnz=ratings.nnz)
