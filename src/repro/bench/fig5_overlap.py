"""Figure 5 — time spent computing, communicating and doing both.

Same model as Figure 4 but reported as the per-node-count breakdown into
compute-only, overlap ("both") and communicate-only shares, over the
1–128 node range the paper plots.  The paper's observations:

* at small node counts asynchronous MPI successfully overlaps a meaningful
  share of the communication with computation;
* at large node counts the overlap no longer helps — communication (and
  the MPI library overhead) dominates the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.fig4_strong_scaling import bluegene_like_config
from repro.datasets.scaling_workload import ScalingWorkloadConfig, make_scaling_workload
from repro.distributed.scaling import ScalingConfig, StrongScalingResult, strong_scaling_study
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table

__all__ = ["Fig5Result", "run_fig5", "DEFAULT_NODE_COUNTS"]

#: The paper's Figure 5 x-axis stops at 128 nodes / 2048 cores.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class Fig5Result:
    """Compute / both / communicate fractions per node count."""

    scaling: StrongScalingResult
    workload_shape: tuple
    workload_nnz: int

    @property
    def node_counts(self) -> List[int]:
        return [point.n_nodes for point in self.scaling.points]

    def fractions(self) -> Dict[str, List[float]]:
        """Series keyed by ``compute`` / ``both`` / ``communicate``."""
        series: Dict[str, List[float]] = {"compute": [], "both": [], "communicate": []}
        for point in self.scaling.points:
            shares = point.breakdown_fractions()
            for key in series:
                series[key].append(shares[key])
        return series

    def to_table(self) -> Table:
        return self.scaling.breakdown_table()


def run_fig5(
    ratings: RatingMatrix | None = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    config: Optional[ScalingConfig] = None,
    n_ratings: int = 10_000_000,
    seed: int = 13,
) -> Fig5Result:
    """Regenerate Figure 5's data (same workload and machine model as Figure 4)."""
    if ratings is None:
        ratings = make_scaling_workload(ScalingWorkloadConfig(
            n_ratings=n_ratings, seed=seed))
    config = config or bluegene_like_config()
    scaling = strong_scaling_study(ratings, node_counts=node_counts, config=config)
    return Fig5Result(scaling=scaling, workload_shape=ratings.shape,
                      workload_nnz=ratings.nnz)
