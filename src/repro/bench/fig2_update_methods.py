"""Figure 2 — time to update one item versus its number of ratings.

The paper measures the per-item update time of the three kernels
(sequential rank-one update, sequential Cholesky, parallel Cholesky) as a
function of the item's rating count, and uses the crossovers to justify the
hybrid policy (parallel Cholesky for items with >= ~1000 ratings).

Two curves are produced for every method:

* ``measured`` — wall-clock timings of this package's numpy kernels
  (honest, but the rank-one kernel is a Python-level loop so its crossover
  sits at much lower rating counts than the paper's C++/Eigen kernels);
* ``modelled`` — the compiled-kernel cost model
  (:data:`repro.parallel.cost_model.DEFAULT_COST_MODEL`), whose crossovers
  reproduce the paper's shape, including the ~1000-rating threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.batch_engine import make_update_engine
from repro.core.priors import GaussianPrior
from repro.core.updates import (
    UpdateMethod,
    sample_item_parallel_cholesky,
    sample_item_rank_one,
    sample_item_serial_cholesky,
)
from repro.parallel.cost_model import DEFAULT_COST_MODEL, UpdateCostModel
from repro.sparse.csr import CompressedAxis
from repro.utils.rng import SeedLike, as_generator
from repro.utils.tables import Table
from repro.utils.timing import time_call

__all__ = ["Fig2Result", "run_fig2", "DEFAULT_DEGREES",
           "Fig2BatchedResult", "run_fig2_batched", "DEFAULT_BATCHED_DEGREES"]

#: Rating counts swept on the x-axis (log-spaced like the paper's 1..100 000).
DEFAULT_DEGREES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass
class Fig2Result:
    """Per-method measured and modelled update times (seconds per update)."""

    degrees: List[int]
    measured: Dict[str, List[float]]
    modelled: Dict[str, List[float]]
    num_latent: int
    parallel_workers: int

    def crossover(self, source: str, method_a: str, method_b: str) -> int | None:
        """Smallest degree at which ``method_b`` becomes cheaper than ``method_a``."""
        series = self.measured if source == "measured" else self.modelled
        for degree, a, b in zip(self.degrees, series[method_a], series[method_b]):
            if not np.isnan(a) and not np.isnan(b) and b < a:
                return degree
        return None

    def to_table(self, source: str = "modelled") -> Table:
        series = self.measured if source == "measured" else self.modelled
        table = Table(
            ["#ratings"] + [f"{name} (s)" for name in series],
            title=f"Figure 2 — time to update one item ({source})",
        )
        for row, degree in enumerate(self.degrees):
            table.add_row(degree, *[series[name][row] for name in series])
        return table


def run_fig2(
    degrees: Sequence[int] = DEFAULT_DEGREES,
    num_latent: int = 32,
    parallel_workers: int = 4,
    repeats: int = 3,
    max_rank_one_degree: int = 2048,
    cost_model: UpdateCostModel | None = None,
    seed: SeedLike = 0,
) -> Fig2Result:
    """Regenerate Figure 2's data.

    ``max_rank_one_degree`` caps the measured rank-one curve (the Python
    loop becomes prohibitively slow beyond a few thousand ratings); the
    modelled curve covers the full range.
    """
    rng = as_generator(seed)
    cost_model = cost_model or DEFAULT_COST_MODEL
    prior = GaussianPrior.standard(num_latent)
    alpha = 2.0

    names = {
        UpdateMethod.RANK_ONE: "rank-one update",
        UpdateMethod.SERIAL_CHOLESKY: "serial Cholesky",
        UpdateMethod.PARALLEL_CHOLESKY: "parallel Cholesky",
    }
    measured: Dict[str, List[float]] = {name: [] for name in names.values()}
    modelled: Dict[str, List[float]] = {name: [] for name in names.values()}

    for degree in degrees:
        neighbours = rng.normal(size=(degree, num_latent))
        ratings = rng.normal(size=degree)
        noise = rng.standard_normal(num_latent)

        if degree <= max_rank_one_degree:
            t, _ = time_call(sample_item_rank_one, neighbours, ratings, prior,
                             alpha, rng=rng, noise=noise, repeats=repeats)
        else:
            t = float("nan")
        measured[names[UpdateMethod.RANK_ONE]].append(t)

        t, _ = time_call(sample_item_serial_cholesky, neighbours, ratings, prior,
                         alpha, rng=rng, noise=noise, repeats=repeats)
        measured[names[UpdateMethod.SERIAL_CHOLESKY]].append(t)

        t, _ = time_call(sample_item_parallel_cholesky, neighbours, ratings, prior,
                         alpha, rng=rng, noise=noise, repeats=repeats,
                         n_blocks=parallel_workers)
        measured[names[UpdateMethod.PARALLEL_CHOLESKY]].append(t)

        for method, name in names.items():
            modelled[name].append(float(cost_model.cost(
                degree, method, num_latent,
                workers=parallel_workers if method is UpdateMethod.PARALLEL_CHOLESKY else 1)))

    return Fig2Result(
        degrees=list(degrees),
        measured=measured,
        modelled=modelled,
        num_latent=num_latent,
        parallel_workers=parallel_workers,
    )


# ---------------------------------------------------------------------------
# batched-engine variant: amortised per-item cost of the stacked kernels
# ---------------------------------------------------------------------------

#: Degrees swept by the batched ablation (smaller than the Figure 2 sweep —
#: the point is the batching dimension, not the degree asymptotics).
DEFAULT_BATCHED_DEGREES = (1, 4, 16, 64, 256, 1024)


@dataclass
class Fig2BatchedResult:
    """Amortised per-item update time: per-item loop vs batched engine.

    For every degree ``d`` a batch of ``batch_size`` items with ``d``
    ratings each is updated once by the reference per-item loop and once by
    the batched engine (identical inputs and noise); times are per item.
    """

    degrees: List[int]
    batch_size: int
    num_latent: int
    per_item: List[float]
    batched: List[float]

    @property
    def speedups(self) -> List[float]:
        """Per-degree speedup of the batched engine over the per-item loop."""
        return [loop / vec for loop, vec in zip(self.per_item, self.batched)]

    @property
    def min_speedup(self) -> float:
        return min(self.speedups)

    def to_table(self) -> Table:
        table = Table(
            ["#ratings", "per-item loop (s)", "batched (s)", "speedup"],
            title=(f"Figure 2 (batched variant) — amortised per-item update "
                   f"time, batches of {self.batch_size}, K={self.num_latent}"),
        )
        for row, degree in enumerate(self.degrees):
            table.add_row(degree, self.per_item[row], self.batched[row],
                          self.speedups[row])
        return table


def _uniform_degree_axis(n_items: int, degree: int, n_source: int,
                         rng: np.random.Generator) -> CompressedAxis:
    """A synthetic compressed axis where every item has exactly ``degree``."""
    indptr = np.arange(0, (n_items + 1) * degree, max(degree, 1),
                       dtype=np.int64)
    if degree == 0:
        indptr = np.zeros(n_items + 1, dtype=np.int64)
    nnz = n_items * degree
    return CompressedAxis(
        indptr=indptr,
        indices=rng.integers(0, n_source, size=nnz).astype(np.int64),
        values=rng.normal(size=nnz),
    )


def run_fig2_batched(
    degrees: Sequence[int] = DEFAULT_BATCHED_DEGREES,
    num_latent: int = 32,
    batch_size: int = 256,
    n_source: int = 4096,
    repeats: int = 3,
    seed: SeedLike = 0,
) -> Fig2BatchedResult:
    """Measure the batched engine's amortised speedup over the per-item loop.

    This is the ablation behind the batched-engine acceptance criterion:
    at ``K = 32`` the stacked kernels must beat the per-item Python loop by
    a wide margin across the whole degree range, because the loop pays
    interpreter overhead per item while the engine pays it per bucket.
    """
    rng = as_generator(seed)
    prior = GaussianPrior.standard(num_latent)
    alpha = 2.0
    source = rng.normal(size=(n_source, num_latent))
    reference = make_update_engine("reference")
    batched = make_update_engine("batched")

    per_item: List[float] = []
    batched_times: List[float] = []
    for degree in degrees:
        axis = _uniform_degree_axis(batch_size, int(degree), n_source, rng)
        noise = rng.standard_normal((batch_size, num_latent))
        target_loop = np.zeros((batch_size, num_latent))
        target_batched = np.zeros((batch_size, num_latent))

        t_loop, _ = time_call(reference.update_items, target_loop, source,
                              axis, prior, alpha, noise, repeats=repeats)
        t_batched, _ = time_call(batched.update_items, target_batched, source,
                                 axis, prior, alpha, noise, repeats=repeats)
        per_item.append(t_loop / batch_size)
        batched_times.append(t_batched / batch_size)

    return Fig2BatchedResult(
        degrees=list(degrees),
        batch_size=batch_size,
        num_latent=num_latent,
        per_item=per_item,
        batched=batched_times,
    )
