"""End-to-end speed-up summary (conclusion of the paper).

The paper's conclusion reports that the full drug-discovery run on the
industrial ChEMBL-scale dataset went from **15 days** with the initial
(single-threaded Julia) implementation to **30 minutes** with the
distributed implementation — a ~720x end-to-end speed-up.

This driver models that pipeline with the library's own components:

* the "initial" implementation — one core, no hybrid kernel selection
  (everything uses the serial Cholesky), no cache benefit;
* the single-node multicore implementation — work stealing over one node's
  cores with the hybrid policy;
* the distributed implementation — the Figure 4 machine model at a chosen
  node count.

The absolute times are modelled, not measured; the quantity being
reproduced is the *relative* speed-up ladder and its order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.bench.fig4_strong_scaling import bluegene_like_config
from repro.core.updates import UpdateMethod
from repro.datasets.chembl import ChemblLikeConfig, make_chembl_like
from repro.distributed.scaling import ScalingConfig, strong_scaling_study
from repro.multicore.sweep import multicore_thread_sweep
from repro.parallel.cost_model import DEFAULT_COST_MODEL
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table

__all__ = ["SpeedupSummaryResult", "run_speedup_summary"]


@dataclass
class SpeedupSummaryResult:
    """Modelled end-to-end times and speed-ups for one training campaign."""

    n_iterations: int
    times_seconds: Dict[str, float]
    baseline_name: str = "single-core (initial implementation)"

    def speedups(self) -> Dict[str, float]:
        baseline = self.times_seconds[self.baseline_name]
        return {name: baseline / seconds
                for name, seconds in self.times_seconds.items()}

    def to_table(self) -> Table:
        table = Table(
            ["implementation", "modelled time (hours)", "speed-up"],
            title="End-to-end training campaign (paper: 15 days -> 30 minutes)",
        )
        speedups = self.speedups()
        for name, seconds in self.times_seconds.items():
            table.add_row(name, seconds / 3600.0, speedups[name])
        return table


def run_speedup_summary(
    ratings: RatingMatrix | None = None,
    chembl_scale: float = 50.0,
    n_iterations: int = 100,
    distributed_nodes: int = 128,
    num_latent: int = 64,
    config: Optional[ScalingConfig] = None,
    seed: int = 11,
) -> SpeedupSummaryResult:
    """Model the 15-days-to-30-minutes speed-up ladder on a ChEMBL-like workload."""
    if ratings is None:
        ratings = make_chembl_like(ChemblLikeConfig(scale=chembl_scale, seed=seed)).ratings
    config = config or bluegene_like_config(num_latent=num_latent)

    # Initial implementation: one core, serial Cholesky for everything.
    degrees = np.concatenate([ratings.movie_degrees(), ratings.user_degrees()])
    per_item = np.asarray(DEFAULT_COST_MODEL.cost(
        degrees, UpdateMethod.SERIAL_CHOLESKY, num_latent))
    # An interpreted (Julia-prototype-like) implementation carries a large
    # constant factor over the tuned kernels; 30x is a conservative stand-in.
    interpreter_penalty = 30.0
    single_core = float(per_item.sum()) * interpreter_penalty * n_iterations

    # Single node, all cores, hybrid kernels, work stealing.
    sweep = multicore_thread_sweep(
        ratings, num_latent=num_latent,
        thread_counts=(config.cluster.cores_per_node,))
    items_per_iteration = ratings.n_users + ratings.n_movies
    single_node = (items_per_iteration / sweep.throughput["TBB"][0]) * n_iterations

    # Distributed: the Figure 4 machine model at the requested node count.
    scaling = strong_scaling_study(ratings, node_counts=(1, distributed_nodes),
                                   config=config)
    distributed = scaling.point(distributed_nodes).iteration_time * n_iterations

    times = {
        "single-core (initial implementation)": single_core,
        "single node, multicore (TBB-like)": single_node,
        f"distributed ({distributed_nodes} nodes)": distributed,
    }
    return SpeedupSummaryResult(n_iterations=n_iterations, times_seconds=times)
