"""Serving throughput/latency ladder: in-process, sharded, and TCP.

Measures ranked-retrieval (``top_n``) traffic against one synthetic
posterior: the single-process
:class:`~repro.serving.service.PredictionService` baseline first, then the
:class:`~repro.serving.cluster.ShardedScorer` across a shards x workers
grid, then (``transports`` including ``"tcp"``) the same stream through
the network frontend.  The TCP rungs walk the dispatch gap one fix at a
time: ``tcp-json`` (sequential framed RPC, JSON payloads), ``tcp-bin``
(the negotiated binary array encoding), ``tcp-bin-pipelined`` (binary
plus many in-flight frames on one connection), and ``tcp-fused`` (a
concurrent client storm whose windows the server-side query fuser
batches).  Every rung answers the same query stream, so the rows are
directly comparable; per-query wall-clock latencies feed the p50/p95
columns and the aggregate queries-per-second.  For the pipelined rung a
query's latency is its window's wall clock divided by the window size —
the amortised cost a batch caller actually pays.

With ``"tcp"`` in the transports the ladder also times the *write*
path: ``tcp-wal-mem`` commits ``rate`` mutations through the replicated
in-memory log (validate → append → apply → ship to the follower → ack —
the replication-only floor), and the ``tcp-wal-fsyncN`` rungs add the
durable segment WAL with an fsync every N appends, walking the
durability/throughput trade (``fsync1`` is the strict
fsync-before-every-ack default).

The recorded document (``python -m repro.bench serving --record`` writes
``BENCH_pr7.json``) carries the same machine metadata as the engine
ladder — on a single-core container the sharded rungs can only measure
their IPC overhead, and the JSON will honestly show that (the committed
baseline is exactly such a container; see ``environment.cpu_count``).

The service's LRU score cache is sized *below* the user population here,
so the measured baseline is GEMV throughput, not cache hits — the regime
the cluster exists for.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.environment import machine_environment
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.state import BPMFState
from repro.serving.checkpoint import Snapshot, _CONFIG_FIELDS
from repro.serving.cluster import ShardedScorer
from repro.serving.service import PredictionService
from repro.utils.tables import Table
from repro.utils.validation import check_positive

__all__ = ["ServingBenchRow", "ServingBenchResult", "run_serving_bench",
           "make_bench_snapshot"]


@dataclass
class ServingBenchRow:
    """One timed serving configuration."""

    backend: str
    shards: Optional[int]
    workers: Optional[int]
    queries: int
    seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    speedup_vs_single: Optional[float] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "shards": self.shards,
            "workers": self.workers,
            "queries": self.queries,
            "seconds": self.seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "speedup_vs_single": self.speedup_vs_single,
        }


@dataclass
class ServingBenchResult:
    """All timed configurations plus workload and machine metadata."""

    rows: List[ServingBenchRow]
    workload: Dict[str, object]
    environment: Dict[str, object]
    top_n: int

    def to_table(self) -> Table:
        table = Table(
            ["backend", "shards", "workers", "queries", "qps", "p50 ms",
             "p95 ms", "vs single"],
            title=f"Serving ladder — top-{self.top_n} query wall clock",
        )
        for row in self.rows:
            table.add_row(
                row.backend,
                "-" if row.shards is None else row.shards,
                "-" if row.workers is None else row.workers,
                row.queries,
                round(row.qps, 1),
                round(row.p50_ms, 3),
                round(row.p95_ms, 3),
                ("-" if row.speedup_vs_single is None
                 else f"{row.speedup_vs_single:.2f}x"),
            )
        return table

    def to_json_payload(self) -> Dict[str, object]:
        """The ``BENCH_*.json`` document for this run."""
        return {
            "benchmark": "serving-ladder",
            "created": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "environment": dict(self.environment),
            "workload": dict(self.workload),
            "top_n": self.top_n,
            "results": [row.to_json() for row in self.rows],
        }


def make_bench_snapshot(n_users: int, n_items: int, num_latent: int,
                        seed: int = 0) -> Snapshot:
    """A synthetic posterior snapshot: random factors, default priors.

    Serving throughput depends only on the factor shapes, so there is no
    need to burn minutes of Gibbs sampling to measure it.
    """
    rng = np.random.default_rng(seed)
    config = BPMFConfig(num_latent=num_latent)
    state = BPMFState(
        user_factors=rng.standard_normal((n_users, num_latent)),
        movie_factors=rng.standard_normal((n_items, num_latent)),
        user_prior=GaussianPrior.standard(num_latent),
        movie_prior=GaussianPrior.standard(num_latent),
        iteration=1,
    )
    return Snapshot(
        state=state,
        config={key: float(getattr(config, key)) for key in _CONFIG_FIELDS},
        offset=3.5,
    )


def _time_queries(top_n_callable, users: np.ndarray, n: int,
                  warmup: int) -> Tuple[float, np.ndarray]:
    """Total seconds and per-query latencies for one query stream."""
    for user in users[:warmup]:
        top_n_callable(int(user), n=n)
    latencies = np.empty(users.shape[0] - warmup)
    start = time.perf_counter()
    for index, user in enumerate(users[warmup:]):
        begin = time.perf_counter()
        top_n_callable(int(user), n=n)
        latencies[index] = time.perf_counter() - begin
    return time.perf_counter() - start, latencies


def _time_tcp(make_service, users: np.ndarray, n: int, warmup: int,
              fuse_window_ms=2.0, binary: bool = True,
              pipeline: bool = False, pipeline_window: int = 32,
              n_clients: int = 1,
              trace: bool = False) -> Tuple[float, np.ndarray]:
    """Time the query stream through a TCP replica.

    With one client the stream is sequential (pure transport overhead on
    top of the in-process rung); with ``pipeline`` it is sent in windows
    of ``pipeline_window`` in-flight frames on one connection (each
    query's latency is its window's wall clock over the window size);
    with several clients, the stream is split across concurrent threads
    so the server's query fuser gets windows to coalesce, and
    ``seconds`` is the storm's wall clock.  ``binary`` picks the wire
    encoding the client negotiates.  ``trace`` runs both ends with a
    shared in-memory tracer, so every query carries trace context and
    opens its client/admission/execute spans — the cost of tracing
    *enabled*, judged against the identical untraced rung.
    """
    import threading

    from repro.obs import Tracer
    from repro.serving.net import ReplicaSet, ServingClient

    tracer = Tracer(capacity=4096) if trace else None
    with ReplicaSet(make_service, n_replicas=1,
                    fuse_window_ms=fuse_window_ms,
                    tracer=tracer) as replicas:
        with ServingClient(replicas.addresses, binary=binary,
                           tracer=tracer) as warm:
            for user in users[:warmup]:
                warm.top_n(int(user), n=n)
        timed = users[warmup:]
        if pipeline:
            with ServingClient(replicas.addresses, binary=binary) as client:
                client.top_n(int(users[0]), n=n)  # untimed primer
                windows = np.array_split(
                    timed, max(1, timed.shape[0] // pipeline_window))
                sink: List[np.ndarray] = []
                start = time.perf_counter()
                for window in windows:
                    begin = time.perf_counter()
                    client.top_n_pipelined([int(user) for user in window],
                                           n=n,
                                           max_in_flight=pipeline_window)
                    elapsed = time.perf_counter() - begin
                    sink.append(np.full(window.shape[0],
                                        elapsed / window.shape[0]))
                return time.perf_counter() - start, np.concatenate(sink)
        if n_clients == 1:
            with ServingClient(replicas.addresses, binary=binary,
                               tracer=tracer) as client:
                # Untimed primer: connect + handshake must not land in
                # the first timed sample.
                client.top_n(int(users[0]), n=n)
                latencies = np.empty(timed.shape[0])
                start = time.perf_counter()
                for index, user in enumerate(timed):
                    begin = time.perf_counter()
                    client.top_n(int(user), n=n)
                    latencies[index] = time.perf_counter() - begin
                return time.perf_counter() - start, latencies

        chunks = np.array_split(timed, n_clients)
        outputs: List[List[float]] = [[] for _ in range(n_clients)]
        barrier = threading.Barrier(n_clients + 1)

        def storm(chunk: np.ndarray, sink: List[float]) -> None:
            with ServingClient(replicas.addresses, binary=binary,
                               tracer=tracer) as client:
                client.top_n(int(users[0]), n=n)  # untimed primer
                barrier.wait()
                for user in chunk:
                    begin = time.perf_counter()
                    client.top_n(int(user), n=n)
                    sink.append(time.perf_counter() - begin)

        threads = [threading.Thread(target=storm, args=(chunk, sink))
                   for chunk, sink in zip(chunks, outputs)]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        return seconds, np.concatenate([np.asarray(sink)
                                        for sink in outputs])


def _time_tcp_wal(make_service, n_writes: int, sync_every: Optional[int],
                  n_items: int) -> Tuple[float, np.ndarray]:
    """Time a mutation stream through a 2-replica set's write leader.

    Each timed write is a full replicated commit: validate → append to
    the log (fsync per ``sync_every``) → apply → ship to the follower →
    ack.  ``sync_every=None`` runs the log in memory — the
    replication-only floor the fsync rungs are judged against.  The
    client pins the leader so the rung measures the commit, not an
    extra forward hop.
    """
    import tempfile

    from repro.serving.net import ReplicaSet, ServingClient

    with tempfile.TemporaryDirectory() as tmp:
        wal_kwargs = ({"wal_dir": tmp, "wal_sync_every": sync_every}
                      if sync_every is not None else {})
        with ReplicaSet(make_service, n_replicas=2,
                        **wal_kwargs) as replicas:
            with ServingClient(replicas.addresses[:1]) as client:
                user = client.fold_in(np.array([0]), np.array([4.0]))
                client.rate(user, np.array([0]),
                            np.array([3.0]))  # untimed primer
                latencies = np.empty(n_writes)
                start = time.perf_counter()
                for index in range(n_writes):
                    begin = time.perf_counter()
                    client.rate(user, np.array([index % n_items]),
                                np.array([float(1 + index % 5)]))
                    latencies[index] = time.perf_counter() - begin
                seconds = time.perf_counter() - start
        return seconds, latencies


def run_serving_bench(
    n_users: int = 2000,
    n_items: int = 4000,
    num_latent: int = 32,
    shard_counts: Sequence[int] = (1, 2, 4),
    workers_grid: Optional[Sequence[Tuple[int, int]]] = None,
    n_queries: int = 300,
    top_n: int = 10,
    warmup: int = 10,
    seed: int = 42,
    transports: Sequence[str] = ("inproc", "tcp"),
    fuse_window_ms: float = 2.0,
    fused_clients: int = 4,
    pipeline_window: int = 32,
    wal_writes: int = 300,
    wal_sync_ladder: Sequence[int] = (1, 8, 64),
) -> ServingBenchResult:
    """Time the query stream against every serving configuration.

    Parameters
    ----------
    n_users, n_items, num_latent:
        Synthetic posterior shape (items dominate top-N cost).
    shard_counts:
        Shard counts to ladder through with one worker per shard.
    workers_grid:
        Optional explicit ``(shards, workers)`` pairs *replacing* the
        one-worker-per-shard ladder (the shards x workers grid of the
        recorded document concatenates both by default: the ladder plus a
        fewer-workers-than-shards rung).
    n_queries, top_n, warmup:
        Query stream shape; ``warmup`` queries are excluded from timing
        (pool spawn and first-touch costs are paid there).
    transports:
        ``"inproc"`` runs the direct ladder, ``"tcp"`` adds the network
        rungs against fused-by-default single-process replicas:
        sequential JSON (``tcp-json``), sequential binary (``tcp-bin``),
        the same binary stream with end-to-end tracing enabled
        (``tcp-bin-traced`` — the tracing-overhead rung, judged against
        ``tcp-bin``), ``pipeline_window`` in-flight binary frames on one
        connection (``tcp-bin-pipelined``), and a ``fused_clients``-way
        concurrent storm (``tcp-fused``, fallback window
        ``fuse_window_ms``).
    pipeline_window:
        In-flight frames per window for the pipelined rung.
    wal_writes, wal_sync_ladder:
        Replicated-write rungs (with ``"tcp"``): ``wal_writes`` timed
        ``rate`` commits through the in-memory log (``tcp-wal-mem``)
        and through the durable WAL at each fsync cadence in
        ``wal_sync_ladder`` (``tcp-wal-fsyncN``).
    """
    check_positive("n_queries", n_queries)
    check_positive("top_n", top_n)
    if warmup >= n_queries:
        raise ValueError("warmup must be smaller than n_queries")
    unknown_transports = set(transports) - {"inproc", "tcp"}
    if unknown_transports:
        raise ValueError(f"unknown transports: {sorted(unknown_transports)}")
    snapshot = make_bench_snapshot(n_users, n_items, num_latent, seed=seed)
    rng = np.random.default_rng(seed + 1)
    users = rng.integers(0, n_users, size=n_queries)

    cases: List[Tuple[int, int]] = (
        list(workers_grid) if workers_grid is not None
        else [(shards, shards) for shards in shard_counts])
    if workers_grid is None and max(shard_counts) >= 4:
        cases.append((max(shard_counts), max(shard_counts) // 2))

    rows: List[ServingBenchRow] = []
    service = PredictionService(snapshot, cache_size=max(1, n_users // 16))
    seconds, latencies = _time_queries(service.top_n, users, top_n, warmup)
    baseline_qps = latencies.shape[0] / seconds
    rows.append(ServingBenchRow(
        backend="single", shards=None, workers=None,
        queries=latencies.shape[0], seconds=seconds, qps=baseline_qps,
        p50_ms=float(np.percentile(latencies, 50) * 1e3),
        p95_ms=float(np.percentile(latencies, 95) * 1e3),
        speedup_vs_single=1.0,
    ))

    if "inproc" in transports:
        for shards, workers in cases:
            with ShardedScorer(snapshot, n_shards=shards,
                               n_workers=workers) as scorer:
                seconds, latencies = _time_queries(scorer.top_n, users,
                                                   top_n, warmup)
            qps = latencies.shape[0] / seconds
            rows.append(ServingBenchRow(
                backend="sharded", shards=shards, workers=workers,
                queries=latencies.shape[0], seconds=seconds, qps=qps,
                p50_ms=float(np.percentile(latencies, 50) * 1e3),
                p95_ms=float(np.percentile(latencies, 95) * 1e3),
                speedup_vs_single=qps / baseline_qps,
            ))

    if "tcp" in transports:
        tcp_cases = [
            ("tcp-json", False, False, 1, False),
            ("tcp-bin", True, False, 1, False),
            ("tcp-bin-traced", True, False, 1, True),
            ("tcp-bin-pipelined", True, True, 1, False),
            ("tcp-fused", True, False, fused_clients, False),
        ]
        make_service = (lambda index:
                        PredictionService(snapshot,
                                          cache_size=max(1, n_users // 16)))
        for backend, binary, pipeline, n_clients, trace in tcp_cases:
            seconds, latencies = _time_tcp(
                make_service, users, top_n, warmup,
                fuse_window_ms=fuse_window_ms, binary=binary,
                pipeline=pipeline, pipeline_window=pipeline_window,
                n_clients=n_clients, trace=trace)
            qps = latencies.shape[0] / seconds
            rows.append(ServingBenchRow(
                backend=backend, shards=None, workers=None,
                queries=latencies.shape[0], seconds=seconds, qps=qps,
                p50_ms=float(np.percentile(latencies, 50) * 1e3),
                p95_ms=float(np.percentile(latencies, 95) * 1e3),
                speedup_vs_single=qps / baseline_qps,
            ))

        # Write path: qps is replicated commits per second; the read
        # baseline is not comparable, so "vs single" stays blank.
        wal_cases = [("tcp-wal-mem", None)] + [
            (f"tcp-wal-fsync{cadence}", cadence)
            for cadence in wal_sync_ladder]
        for backend, sync_every in wal_cases:
            seconds, latencies = _time_tcp_wal(
                make_service, wal_writes, sync_every, n_items)
            rows.append(ServingBenchRow(
                backend=backend, shards=None, workers=None,
                queries=latencies.shape[0], seconds=seconds,
                qps=latencies.shape[0] / seconds,
                p50_ms=float(np.percentile(latencies, 50) * 1e3),
                p95_ms=float(np.percentile(latencies, 95) * 1e3),
                speedup_vs_single=None,
            ))

    return ServingBenchResult(
        rows=rows,
        workload={
            "dataset": "synthetic-posterior",
            "n_users": n_users,
            "n_items": n_items,
            "num_latent": num_latent,
            "n_queries": n_queries,
            "warmup": warmup,
            "seed": seed,
            "transports": list(transports),
            "fuse_window_ms": fuse_window_ms,
            "fused_clients": fused_clients,
            "pipeline_window": pipeline_window,
            "wal_writes": wal_writes,
            "wal_sync_ladder": list(wal_sync_ladder),
        },
        environment=machine_environment(),
        top_n=top_n,
    )
