"""Serving throughput/latency ladder: single-process vs sharded cluster.

Measures ranked-retrieval (``top_n``) traffic against one synthetic
posterior: the single-process
:class:`~repro.serving.service.PredictionService` baseline first, then the
:class:`~repro.serving.cluster.ShardedScorer` across a shards x workers
grid.  Every rung answers the same query stream, so the rows are directly
comparable; per-query wall-clock latencies feed the p50/p95 columns and
the aggregate queries-per-second.

The recorded document (``python -m repro.bench serving --record`` writes
``BENCH_pr4.json``) carries the same machine metadata as the engine
ladder — on a single-core container the sharded rungs can only measure
their IPC overhead, and the JSON will honestly show that (the committed
baseline is exactly such a container; see ``environment.cpu_count``).

The service's LRU score cache is sized *below* the user population here,
so the measured baseline is GEMV throughput, not cache hits — the regime
the cluster exists for.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.environment import machine_environment
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.state import BPMFState
from repro.serving.checkpoint import Snapshot, _CONFIG_FIELDS
from repro.serving.cluster import ShardedScorer
from repro.serving.service import PredictionService
from repro.utils.tables import Table
from repro.utils.validation import check_positive

__all__ = ["ServingBenchRow", "ServingBenchResult", "run_serving_bench",
           "make_bench_snapshot"]


@dataclass
class ServingBenchRow:
    """One timed serving configuration."""

    backend: str
    shards: Optional[int]
    workers: Optional[int]
    queries: int
    seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    speedup_vs_single: Optional[float] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "shards": self.shards,
            "workers": self.workers,
            "queries": self.queries,
            "seconds": self.seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "speedup_vs_single": self.speedup_vs_single,
        }


@dataclass
class ServingBenchResult:
    """All timed configurations plus workload and machine metadata."""

    rows: List[ServingBenchRow]
    workload: Dict[str, object]
    environment: Dict[str, object]
    top_n: int

    def to_table(self) -> Table:
        table = Table(
            ["backend", "shards", "workers", "queries", "qps", "p50 ms",
             "p95 ms", "vs single"],
            title=f"Serving ladder — top-{self.top_n} query wall clock",
        )
        for row in self.rows:
            table.add_row(
                row.backend,
                "-" if row.shards is None else row.shards,
                "-" if row.workers is None else row.workers,
                row.queries,
                round(row.qps, 1),
                round(row.p50_ms, 3),
                round(row.p95_ms, 3),
                ("-" if row.speedup_vs_single is None
                 else f"{row.speedup_vs_single:.2f}x"),
            )
        return table

    def to_json_payload(self) -> Dict[str, object]:
        """The ``BENCH_*.json`` document for this run."""
        return {
            "benchmark": "serving-ladder",
            "created": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "environment": dict(self.environment),
            "workload": dict(self.workload),
            "top_n": self.top_n,
            "results": [row.to_json() for row in self.rows],
        }


def make_bench_snapshot(n_users: int, n_items: int, num_latent: int,
                        seed: int = 0) -> Snapshot:
    """A synthetic posterior snapshot: random factors, default priors.

    Serving throughput depends only on the factor shapes, so there is no
    need to burn minutes of Gibbs sampling to measure it.
    """
    rng = np.random.default_rng(seed)
    config = BPMFConfig(num_latent=num_latent)
    state = BPMFState(
        user_factors=rng.standard_normal((n_users, num_latent)),
        movie_factors=rng.standard_normal((n_items, num_latent)),
        user_prior=GaussianPrior.standard(num_latent),
        movie_prior=GaussianPrior.standard(num_latent),
        iteration=1,
    )
    return Snapshot(
        state=state,
        config={key: float(getattr(config, key)) for key in _CONFIG_FIELDS},
        offset=3.5,
    )


def _time_queries(top_n_callable, users: np.ndarray, n: int,
                  warmup: int) -> Tuple[float, np.ndarray]:
    """Total seconds and per-query latencies for one query stream."""
    for user in users[:warmup]:
        top_n_callable(int(user), n=n)
    latencies = np.empty(users.shape[0] - warmup)
    start = time.perf_counter()
    for index, user in enumerate(users[warmup:]):
        begin = time.perf_counter()
        top_n_callable(int(user), n=n)
        latencies[index] = time.perf_counter() - begin
    return time.perf_counter() - start, latencies


def run_serving_bench(
    n_users: int = 2000,
    n_items: int = 4000,
    num_latent: int = 32,
    shard_counts: Sequence[int] = (1, 2, 4),
    workers_grid: Optional[Sequence[Tuple[int, int]]] = None,
    n_queries: int = 300,
    top_n: int = 10,
    warmup: int = 10,
    seed: int = 42,
) -> ServingBenchResult:
    """Time the query stream against every serving configuration.

    Parameters
    ----------
    n_users, n_items, num_latent:
        Synthetic posterior shape (items dominate top-N cost).
    shard_counts:
        Shard counts to ladder through with one worker per shard.
    workers_grid:
        Optional explicit ``(shards, workers)`` pairs *replacing* the
        one-worker-per-shard ladder (the shards x workers grid of the
        recorded document concatenates both by default: the ladder plus a
        fewer-workers-than-shards rung).
    n_queries, top_n, warmup:
        Query stream shape; ``warmup`` queries are excluded from timing
        (pool spawn and first-touch costs are paid there).
    """
    check_positive("n_queries", n_queries)
    check_positive("top_n", top_n)
    if warmup >= n_queries:
        raise ValueError("warmup must be smaller than n_queries")
    snapshot = make_bench_snapshot(n_users, n_items, num_latent, seed=seed)
    rng = np.random.default_rng(seed + 1)
    users = rng.integers(0, n_users, size=n_queries)

    cases: List[Tuple[int, int]] = (
        list(workers_grid) if workers_grid is not None
        else [(shards, shards) for shards in shard_counts])
    if workers_grid is None and max(shard_counts) >= 4:
        cases.append((max(shard_counts), max(shard_counts) // 2))

    rows: List[ServingBenchRow] = []
    service = PredictionService(snapshot, cache_size=max(1, n_users // 16))
    seconds, latencies = _time_queries(service.top_n, users, top_n, warmup)
    baseline_qps = latencies.shape[0] / seconds
    rows.append(ServingBenchRow(
        backend="single", shards=None, workers=None,
        queries=latencies.shape[0], seconds=seconds, qps=baseline_qps,
        p50_ms=float(np.percentile(latencies, 50) * 1e3),
        p95_ms=float(np.percentile(latencies, 95) * 1e3),
        speedup_vs_single=1.0,
    ))

    for shards, workers in cases:
        with ShardedScorer(snapshot, n_shards=shards,
                           n_workers=workers) as scorer:
            seconds, latencies = _time_queries(scorer.top_n, users, top_n,
                                               warmup)
        qps = latencies.shape[0] / seconds
        rows.append(ServingBenchRow(
            backend="sharded", shards=shards, workers=workers,
            queries=latencies.shape[0], seconds=seconds, qps=qps,
            p50_ms=float(np.percentile(latencies, 50) * 1e3),
            p95_ms=float(np.percentile(latencies, 95) * 1e3),
            speedup_vs_single=qps / baseline_qps,
        ))

    return ServingBenchResult(
        rows=rows,
        workload={
            "dataset": "synthetic-posterior",
            "n_users": n_users,
            "n_items": n_items,
            "num_latent": num_latent,
            "n_queries": n_queries,
            "warmup": warmup,
            "seed": seed,
        },
        environment=machine_environment(),
        top_n=top_n,
    )
