"""Accuracy parity — "all versions reach the same level of prediction accuracy".

Section V-B of the paper states that every parallel implementation of BPMF
reaches the same test RMSE as the others.  This driver runs the sequential
reference, the multicore sampler and the distributed sampler (in both the
exact-parity "gather" mode and the production "stats" mode) on the same
dataset with the same random seed and reports their RMSE traces, the
pairwise final-RMSE differences and whether the factor matrices are
bit-for-bit identical where that is expected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.gibbs import BPMFResult, GibbsSampler
from repro.core.priors import BPMFConfig
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions
from repro.multicore.sampler import MulticoreGibbsSampler
from repro.sparse.split import RatingSplit
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table

__all__ = ["AccuracyParityResult", "run_accuracy_parity"]


@dataclass
class AccuracyParityResult:
    """Final RMSE per implementation and exactness flags."""

    results: Dict[str, BPMFResult]
    exact_match: Dict[str, bool]
    baseline_name: str = "sequential"

    @property
    def final_rmse(self) -> Dict[str, float]:
        return {name: result.final_rmse for name, result in self.results.items()}

    def max_rmse_gap(self) -> float:
        """Largest |RMSE difference| between any implementation and the baseline."""
        baseline = self.results[self.baseline_name].final_rmse
        return max(abs(result.final_rmse - baseline)
                   for result in self.results.values())

    def to_table(self) -> Table:
        table = Table(
            ["implementation", "final RMSE", "delta vs sequential", "bitwise identical"],
            title="Accuracy parity across BPMF implementations",
        )
        baseline = self.results[self.baseline_name].final_rmse
        for name, result in self.results.items():
            table.add_row(
                name,
                result.final_rmse,
                result.final_rmse - baseline,
                str(self.exact_match.get(name, False)),
            )
        return table


def run_accuracy_parity(
    train: RatingMatrix | None = None,
    split: RatingSplit | None = None,
    config: Optional[BPMFConfig] = None,
    n_ranks: int = 4,
    seed: int = 7,
) -> AccuracyParityResult:
    """Run all sampler variants on one dataset and compare their accuracy."""
    if train is None or split is None:
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=150, n_movies=100, rank=6, density=0.15, noise_std=0.3,
            seed=seed))
        train, split = data.split.train, data.split
    config = config or BPMFConfig(num_latent=6, burn_in=6, n_samples=14, alpha=4.0)

    results: Dict[str, BPMFResult] = {}
    results["sequential"] = GibbsSampler(config).run(train, split, seed=seed)
    results["multicore"] = MulticoreGibbsSampler(config).run(train, split, seed=seed)
    dist_exact, _ = DistributedGibbsSampler(
        config, DistributedOptions(n_ranks=n_ranks, hyper_mode="gather")
    ).run(train, split, seed=seed)
    results["distributed (gather)"] = dist_exact
    dist_stats, _ = DistributedGibbsSampler(
        config, DistributedOptions(n_ranks=n_ranks, hyper_mode="stats")
    ).run(train, split, seed=seed)
    results["distributed (stats)"] = dist_stats

    reference = results["sequential"].state
    exact_match = {
        name: bool(np.allclose(result.state.user_factors, reference.user_factors)
                   and np.allclose(result.state.movie_factors, reference.movie_factors))
        for name, result in results.items()
    }
    return AccuracyParityResult(results=results, exact_match=exact_match)
