"""Rank launcher and multi-process smoke for the socket MPI world.

Three entry modes:

``--rank R --world N --rendezvous HOST:PORT``
    Run ONE rank in this process: join the world and execute the chosen
    ``--program`` (``selftest`` exercises the verb surface, ``train``
    runs the distributed BPMF sampler over a synthetic dataset).  This
    is the form a real deployment's process manager invokes once per
    rank, on as many hosts as the rendezvous point can reach.

``--spawn --world N``
    Spawn N rank processes of this same module on localhost, wait for
    them, and — for the train program — verify the socket chain is
    bit-identical to the orchestrated ``SimCommWorld`` reference
    computed in-process.

``--smoke --world N [--out report.json]``
    The CI dist-smoke: three spawned phases — clean, benign faults
    (seeded delays/slow-reads through the chaos layer's
    ``net.send``/``net.recv`` sites; must stay bit-identical), and a
    lethal fault (an injected connection reset; every rank must *fail
    fast* instead of hanging).  Writes a JSON report of phase outcomes,
    parity booleans, fault logs and transport counters.

Exit codes: 0 success, 2 usage/validation, 3 transport failure
(``MpiTransportError`` — the expected outcome under lethal faults),
1 anything else.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mpi.net.world import (
    MpiNetError,
    MpiTransportError,
    SocketCommWorld,
    free_port,
)
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.serving.chaos.plan import FaultEvent, FaultInjector, FaultPlan
from repro.utils.validation import ValidationError

#: Synthetic workload of the train program — small enough for a CI
#: smoke, large enough that every rank pair exchanges factor blocks.
TRAIN_DEFAULTS = dict(users=60, movies=45, data_rank=4, density=0.25,
                      noise_std=0.3, test_fraction=0.2, data_seed=321,
                      num_latent=4, burn_in=2, n_samples=3, alpha=4.0,
                      seed=7, hyper_mode="gather", buffer_capacity=16)


def _parse_rendezvous(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"rendezvous must be HOST:PORT, got {value!r}")
    return host, int(port)


# ---------------------------------------------------------------------------
# fault schedules for the smoke phases
# ---------------------------------------------------------------------------

def benign_fault_plan(seed: int) -> FaultPlan:
    """Delays and slow reads only — traffic is perturbed, bits are not."""
    rng = random.Random(int(seed))
    events = []
    for step in sorted(rng.sample(range(2, 150), 12)):
        site = rng.choice(("net.send", "net.recv"))
        action = "delay" if site == "net.send" \
            else rng.choice(("delay", "slow"))
        events.append(FaultEvent(site=site, step=step, action=action,
                                 arg=round(rng.uniform(0.001, 0.01), 6)))
    return FaultPlan(seed=int(seed), events=events)


def lethal_fault_plan(seed: int) -> FaultPlan:
    """One injected connection reset mid-run — the world must die fast.

    The step counts ``recv`` *syscalls*, not frames — TCP coalescing
    makes one recv return many small frames, so the step stays low
    enough to land inside even a short training run.
    """
    rng = random.Random(int(seed))
    return FaultPlan(seed=int(seed), events=[
        FaultEvent(site="net.recv", step=rng.randint(6, 20),
                   action="reset", arg=0.0)])


def _build_injector(mode: str, seed: int, rank: int,
                    fault_rank: int) -> Optional[FaultInjector]:
    if mode == "benign":
        # Every rank gets its own seeded schedule of harmless faults.
        return FaultInjector(benign_fault_plan(seed * 1000 + rank))
    if mode == "lethal":
        # Exactly one rank's links get the reset; the failure must
        # propagate to every peer as a fast MpiTransportError.
        if rank == fault_rank:
            return FaultInjector(lethal_fault_plan(seed))
        return None
    return None


# ---------------------------------------------------------------------------
# rank programs
# ---------------------------------------------------------------------------

def _program_selftest(world: SocketCommWorld, args) -> Dict[str, object]:
    """Exercise every verb; raises on any wrong delivery."""
    comm = world.comm()
    rank, size = comm.rank, comm.size
    for dest in range(size):
        if dest != rank:
            comm.isend({"from": rank,
                        "block": np.arange(8, dtype=np.float64) * rank},
                       dest, tag=rank)
    comm.barrier()
    inbox = comm.drain()
    sources = sorted(message["from"] for message in inbox)
    if sources != [peer for peer in range(size) if peer != rank]:
        raise ValidationError(
            f"rank {rank} drained from {sources}, expected every peer")
    total = comm.allreduce(np.full(4, float(rank + 1)), key="selftest")
    expected = sum(range(1, size + 1))
    if not np.array_equal(total, np.full(4, float(expected))):
        raise ValidationError(f"allreduce returned {total}")
    token = comm.bcast({"token": "mpi-net"} if rank == 0 else None, root=0)
    if token != {"token": "mpi-net"}:
        raise ValidationError(f"bcast returned {token}")
    comm.barrier()
    return {"verbs": ["isend", "drain", "allreduce", "bcast", "barrier"],
            "ok": True}


def _train_dataset(args):
    from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset

    return make_low_rank_dataset(SyntheticConfig(
        n_users=args.users, n_movies=args.movies, rank=args.data_rank,
        density=args.density, noise_std=args.noise_std,
        test_fraction=args.test_fraction, seed=args.data_seed))


def _train_sampler(args, n_ranks: int):
    from repro.core.priors import BPMFConfig
    from repro.distributed.sampler import (
        DistributedGibbsSampler,
        DistributedOptions,
    )

    config = BPMFConfig(num_latent=args.num_latent, burn_in=args.burn_in,
                        n_samples=args.n_samples, alpha=args.alpha)
    options = DistributedOptions(n_ranks=n_ranks,
                                 hyper_mode=args.hyper_mode,
                                 buffer_capacity=args.buffer_capacity)
    return DistributedGibbsSampler(config, options)


def _program_train(world: SocketCommWorld, args) -> Dict[str, object]:
    """One rank of the distributed sampler; rank 0 writes the chain."""
    data = _train_dataset(args)
    sampler = _train_sampler(args, world.n_ranks)
    result, info = sampler.run(data.split.train, data.split, seed=args.seed,
                               comm_world=world)
    summary: Dict[str, object] = {
        "n_messages": info.n_messages,
        "bytes_sent": info.bytes_sent,
        "items_per_message": info.buffer_stats.items_per_message,
    }
    if world.rank == 0 and args.out:
        np.savez(args.out,
                 user_factors=result.state.user_factors,
                 movie_factors=result.state.movie_factors,
                 predictions=result.predictions,
                 rmse_burn_in=np.asarray(result.rmse_burn_in),
                 rmse_per_sample=np.asarray(result.rmse_per_sample),
                 rmse_running_mean=np.asarray(result.rmse_running_mean))
        summary["out"] = args.out
        summary["final_rmse"] = (result.rmse_running_mean[-1]
                                 if result.rmse_running_mean else None)
    return summary


PROGRAMS = {"selftest": _program_selftest, "train": _program_train}


def run_rank(args) -> int:
    """Join the world and run the chosen program (one rank, this process)."""
    injector = _build_injector(args.fault_mode, args.fault_seed, args.rank,
                               args.fault_rank)
    tracer = None
    report: Dict[str, object] = {"rank": args.rank, "world": args.world,
                                 "program": args.program,
                                 "fault_mode": args.fault_mode}
    started = time.monotonic()
    status, detail = 0, None
    try:
        world = SocketCommWorld.connect(
            args.rank, args.world, args.rendezvous,
            timeout=args.connect_timeout, injector=injector,
            op_timeout=args.op_timeout)
    except (MpiNetError, OSError, ValidationError) as error:
        report["error"] = f"{type(error).__name__}: {error}"
        report["ok"] = False
        _write_rank_report(args, report, started)
        print(f"[rank {args.rank}] connect failed: {error}", file=sys.stderr)
        return 3
    world.register_metrics(REGISTRY)
    try:
        if args.trace_dir:
            tracer = Tracer(sink_dir=args.trace_dir,
                            sink_name=f"mpi-rank{args.rank}.jsonl")
        program = PROGRAMS[args.program]
        if tracer is not None:
            with tracer.start("mpi.rank", attrs={"rank": args.rank,
                                                 "program": args.program}):
                report["result"] = program(world, args)
        else:
            report["result"] = program(world, args)
        report["ok"] = True
    except MpiTransportError as error:
        status, detail = 3, f"{type(error).__name__}: {error}"
    except (MpiNetError, ValidationError, OSError) as error:
        status, detail = 1, f"{type(error).__name__}: {error}"
    finally:
        report["transport"] = world.stats()
        if injector is not None:
            report["faults"] = {"triggered": injector.log,
                                "counts": injector.counts(),
                                "digest": injector.plan.digest()}
        if detail is not None:
            world.abort(detail)
        else:
            world.close()
    if detail is not None:
        report["ok"] = False
        report["error"] = detail
        print(f"[rank {args.rank}] {detail}", file=sys.stderr)
    _write_rank_report(args, report, started)
    return status


def _write_rank_report(args, report: Dict[str, object],
                       started: float) -> None:
    report["duration_s"] = round(time.monotonic() - started, 3)
    if args.metrics_out:
        report["metrics"] = REGISTRY.snapshot()
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2,
                                                default=str))
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(REGISTRY.snapshot(), indent=2, default=str))


# ---------------------------------------------------------------------------
# parent: spawn + verify
# ---------------------------------------------------------------------------

def _spawn_ranks(args, workdir: Path, fault_mode: str,
                 timeout: float) -> Dict[str, object]:
    """Launch one process per rank; wait; collect exits and reports."""
    port = free_port(args.host)
    processes: List[subprocess.Popen] = []
    for rank in range(args.world):
        command = [
            sys.executable, "-m", "repro.mpi.net",
            "--rank", str(rank), "--world", str(args.world),
            "--rendezvous", f"{args.host}:{port}",
            "--program", args.program,
            "--fault-mode", fault_mode,
            "--fault-seed", str(args.fault_seed),
            "--fault-rank", str(args.fault_rank),
            "--report", str(workdir / f"rank{rank}.json"),
            "--op-timeout", str(args.op_timeout),
        ]
        if args.program == "train":
            command += [
                "--users", str(args.users), "--movies", str(args.movies),
                "--num-latent", str(args.num_latent),
                "--burn-in", str(args.burn_in),
                "--n-samples", str(args.n_samples),
                "--hyper-mode", args.hyper_mode,
                "--buffer-capacity", str(args.buffer_capacity),
                "--seed", str(args.seed),
                "--data-seed", str(args.data_seed),
            ]
            if rank == 0:
                command += ["--out", str(workdir / "chain.npz")]
        if args.trace_dir:
            command += ["--trace-dir", args.trace_dir]
        processes.append(subprocess.Popen(command))
    deadline = time.monotonic() + timeout
    exit_codes: List[Optional[int]] = [None] * args.world
    hung = False
    for rank, process in enumerate(processes):
        remaining = max(deadline - time.monotonic(), 0.1)
        try:
            exit_codes[rank] = process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            hung = True
            process.kill()
            process.wait()
            exit_codes[rank] = -9
    reports = []
    for rank in range(args.world):
        path = workdir / f"rank{rank}.json"
        if path.exists():
            reports.append(json.loads(path.read_text()))
    faults_triggered = sum(len(report.get("faults", {}).get("triggered", []))
                           for report in reports)
    return {"exit_codes": exit_codes, "hung": hung, "reports": reports,
            "faults_triggered": faults_triggered,
            "chain": workdir / "chain.npz"}


def _reference_chain(args) -> Dict[str, np.ndarray]:
    """The orchestrated SimCommWorld chain for the same configuration."""
    data = _train_dataset(args)
    sampler = _train_sampler(args, args.world)
    result, _ = sampler.run(data.split.train, data.split, seed=args.seed)
    return {
        "user_factors": result.state.user_factors,
        "movie_factors": result.state.movie_factors,
        "predictions": result.predictions,
        "rmse_burn_in": np.asarray(result.rmse_burn_in),
        "rmse_per_sample": np.asarray(result.rmse_per_sample),
        "rmse_running_mean": np.asarray(result.rmse_running_mean),
    }


def _check_parity(chain_path: Path, reference: Dict[str, np.ndarray]
                  ) -> Tuple[bool, Dict[str, bool]]:
    """Bitwise comparison of the socket chain against the reference."""
    if not chain_path.exists():
        return False, {}
    with np.load(chain_path) as chain:
        fields = {key: bool(np.array_equal(chain[key], reference[key]))
                  for key in reference}
    return all(fields.values()), fields


def run_spawn(args) -> int:
    """``--spawn``: one multi-process run, parity-checked for train."""
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="repro-mpi-"))
    workdir.mkdir(parents=True, exist_ok=True)
    outcome = _spawn_ranks(args, workdir, args.fault_mode, args.timeout)
    ok = not outcome["hung"] and all(code == 0
                                     for code in outcome["exit_codes"])
    parity = None
    if ok and args.program == "train":
        parity, fields = _check_parity(outcome["chain"],
                                       _reference_chain(args))
        print(f"bit-parity vs SimCommWorld: {parity} {fields}")
        ok = ok and parity
    print(f"exit codes: {outcome['exit_codes']}  "
          f"faults: {outcome['faults_triggered']}")
    return 0 if ok else 1


def run_smoke(args) -> int:
    """``--smoke``: clean + benign-fault + lethal-fault phases."""
    workroot = Path(args.workdir or tempfile.mkdtemp(prefix="repro-mpi-"))
    report: Dict[str, object] = {
        "world": args.world, "program": args.program,
        "train": {key: getattr(args, key) for key in
                  ("users", "movies", "num_latent", "burn_in", "n_samples",
                   "hyper_mode", "buffer_capacity", "seed", "data_seed")},
        "fault_plans": {
            "benign_digest": benign_fault_plan(
                args.fault_seed * 1000).digest(),
            "lethal_digest": lethal_fault_plan(args.fault_seed).digest(),
        },
        "phases": [],
    }
    reference = _reference_chain(args) if args.program == "train" else None
    all_ok = True
    for phase, fault_mode, expect_clean in (
            ("baseline", "off", True),
            ("benign-faults", "benign", True),
            ("lethal-fault", "lethal", False)):
        workdir = workroot / phase
        workdir.mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        outcome = _spawn_ranks(args, workdir, fault_mode, args.timeout)
        duration = round(time.monotonic() - started, 3)
        entry: Dict[str, object] = {
            "phase": phase, "fault_mode": fault_mode,
            "exit_codes": outcome["exit_codes"], "hung": outcome["hung"],
            "faults_triggered": outcome["faults_triggered"],
            "duration_s": duration,
        }
        if expect_clean:
            phase_ok = not outcome["hung"] and all(
                code == 0 for code in outcome["exit_codes"])
            if phase_ok and reference is not None:
                parity, fields = _check_parity(outcome["chain"], reference)
                entry["bit_identical"] = parity
                entry["parity_fields"] = fields
                phase_ok = parity
            if fault_mode == "benign":
                # The schedule must actually have perturbed the wire.
                entry["faults_fired"] = outcome["faults_triggered"] > 0
        else:
            # Lethal: the world must die, and it must die *fast* — every
            # process exits (no hang) and at least one reports the
            # transport failure (exit 3).
            phase_ok = (not outcome["hung"]
                        and any(code != 0
                                for code in outcome["exit_codes"])
                        and any(code == 3
                                for code in outcome["exit_codes"]))
            entry["failed_fast"] = phase_ok
        entry["ok"] = phase_ok
        all_ok = all_ok and phase_ok
        report["phases"].append(entry)
        print(f"[{phase}] ok={phase_ok} exits={outcome['exit_codes']} "
              f"faults={outcome['faults_triggered']} {duration}s")
    report["ok"] = all_ok
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2, default=str))
        print(f"report written to {args.out}")
    return 0 if all_ok else 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mpi.net",
        description="socket-backed MPI world: rank runner, spawner, smoke")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--rank", type=int, default=None,
                      help="run this one rank in this process")
    mode.add_argument("--spawn", action="store_true",
                      help="spawn --world rank processes locally and verify")
    mode.add_argument("--smoke", action="store_true",
                      help="CI smoke: clean + benign + lethal fault phases")
    parser.add_argument("--world", type=int, default=4,
                        help="total number of ranks (default 4)")
    parser.add_argument("--rendezvous", type=_parse_rendezvous,
                        default=None, metavar="HOST:PORT",
                        help="rendezvous address (rank 0 binds it)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind/spawn host (default 127.0.0.1)")
    parser.add_argument("--program", choices=sorted(PROGRAMS),
                        default="train")
    parser.add_argument("--fault-mode", choices=("off", "benign", "lethal"),
                        default="off")
    parser.add_argument("--fault-seed", type=int, default=1)
    parser.add_argument("--fault-rank", type=int, default=1,
                        help="rank whose links carry the lethal fault")
    parser.add_argument("--out", default=None,
                        help="rank mode: chain .npz (rank 0); smoke: report "
                             "JSON path")
    parser.add_argument("--report", default=None,
                        help="per-rank JSON report path")
    parser.add_argument("--metrics-out", default=None,
                        help="write the obs metrics snapshot JSON here")
    parser.add_argument("--trace-dir", default=None,
                        help="emit per-rank span JSONL into this directory")
    parser.add_argument("--workdir", default=None,
                        help="spawn/smoke scratch directory (default: temp)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="spawn/smoke per-phase wall-clock limit")
    parser.add_argument("--connect-timeout", type=float, default=30.0)
    parser.add_argument("--op-timeout", type=float, default=120.0)
    train = parser.add_argument_group("train program")
    train.add_argument("--users", type=int,
                       default=TRAIN_DEFAULTS["users"])
    train.add_argument("--movies", type=int,
                       default=TRAIN_DEFAULTS["movies"])
    train.add_argument("--data-rank", type=int,
                       default=TRAIN_DEFAULTS["data_rank"])
    train.add_argument("--density", type=float,
                       default=TRAIN_DEFAULTS["density"])
    train.add_argument("--noise-std", type=float,
                       default=TRAIN_DEFAULTS["noise_std"])
    train.add_argument("--test-fraction", type=float,
                       default=TRAIN_DEFAULTS["test_fraction"])
    train.add_argument("--data-seed", type=int,
                       default=TRAIN_DEFAULTS["data_seed"])
    train.add_argument("--num-latent", type=int,
                       default=TRAIN_DEFAULTS["num_latent"])
    train.add_argument("--burn-in", type=int,
                       default=TRAIN_DEFAULTS["burn_in"])
    train.add_argument("--n-samples", type=int,
                       default=TRAIN_DEFAULTS["n_samples"])
    train.add_argument("--alpha", type=float,
                       default=TRAIN_DEFAULTS["alpha"])
    train.add_argument("--seed", type=int, default=TRAIN_DEFAULTS["seed"])
    train.add_argument("--hyper-mode", choices=("stats", "gather"),
                       default=TRAIN_DEFAULTS["hyper_mode"])
    train.add_argument("--buffer-capacity", type=int,
                       default=TRAIN_DEFAULTS["buffer_capacity"])
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rank is not None:
        if args.rendezvous is None:
            print("--rank requires --rendezvous HOST:PORT", file=sys.stderr)
            return 2
        return run_rank(args)
    if args.spawn:
        return run_spawn(args)
    if args.smoke:
        return run_smoke(args)
    print("choose a mode: --rank R, --spawn, or --smoke", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
