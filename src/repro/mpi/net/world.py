"""Socket-backed MPI world: real processes, real wire, same verbs.

:class:`SocketCommWorld` is the multi-process counterpart of
:class:`repro.mpi.simmpi.SimCommWorld`.  Each OS process owns exactly one
rank; :meth:`SocketCommWorld.connect` rendezvouses the ranks (everyone
reports its data listener to rank 0, rank 0 replies with the address
map) and builds a full TCP mesh — one framed, bidirectional link per
rank pair.  :meth:`SocketCommWorld.comm` then hands back a
:class:`SocketComm` with the verb surface the distributed samplers
already speak against :class:`~repro.mpi.simmpi.SimComm`: tagged
non-blocking ``isend``/``irecv``, blocking ``recv``, ``iprobe`` with
``ANY_TAG``/``ANY_SOURCE``, ``allreduce``, ``bcast`` and ``barrier``.

Wire format is the serving frontend's frame codec
(:mod:`repro.serving.net.protocol`): every envelope ships as an
``mpi_msg`` frame with the binary array payload form, so factor blocks
cross the wire as raw little-endian float64/int64 blocks — bit-exact by
construction, which is what lets a socket-world training chain match the
simulated world bit for bit.  JSON-only payload values round-trip
exactly too; the one wire artefact is that tuples come back as lists.

**Deterministic matching.**  A real network delivers messages from
*different* senders in racy order, which would make ``ANY_SOURCE``
matching irreproducible.  The world therefore keeps each mailbox sorted
by ``(barrier epoch, source rank, per-link sequence number)`` and
matches in that order.  Per-link FIFO is TCP's guarantee; the barrier is
a *flush* barrier (every rank exchanges a flush marker with every peer
on the data link itself, so completing the barrier proves all
pre-barrier traffic has been enqueued); together they make receive
matching after a barrier a pure function of the program, byte-timing
independent — exactly the order an orchestrated ``SimCommWorld`` run
produces when ranks are stepped in rank order.

**Collectives** are rooted at rank 0 (gather, reduce in rank order with
the *same* :class:`~repro.mpi.simmpi.ReduceOp` arithmetic as the
simulated world, scatter) and matched by a per-world collective sequence
number — every rank must issue its collectives in the same program
order, the usual SPMD contract.  Unlike ``SimComm`` (whose orchestrated
``allreduce`` returns ``None`` until the last contributor arrives), the
socket verbs *block* and return the result directly on every rank.

**Failure model.**  A dead or misbehaving link (peer exit, injected
reset, stream corruption) marks the world failed and wakes every
blocked verb with :class:`MpiTransportError` — training over sockets
fails fast instead of hanging.  Blocking receives also carry a default
timeout (:class:`MpiTimeoutError`) so a lost message can never wedge a
CI job.  Chaos-layer fault injection rides the existing
``net.connect``/``net.send``/``net.recv`` sites: pass a
:class:`~repro.serving.chaos.plan.FaultInjector` and every mesh socket
is wrapped in :class:`~repro.serving.chaos.shims.ChaosSocket`.
"""

from __future__ import annotations

import bisect
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.simmpi import ANY_SOURCE, ANY_TAG, ReduceOp
from repro.serving.chaos.plan import FaultInjector
from repro.serving.chaos.shims import ChaosSocket, InjectedConnectError
from repro.serving.net.protocol import (
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "MpiNetError", "MpiTransportError",
    "MpiTimeoutError", "SocketRequest", "SocketComm", "SocketCommWorld",
    "start_local_world", "free_port",
]

#: How long `connect` waits for the rendezvous and mesh to come up.
CONNECT_TIMEOUT = 30.0
#: Default ceiling on every blocking verb (recv/allreduce/barrier/...).
DEFAULT_OP_TIMEOUT = 120.0

_RECV_CHUNK = 1 << 16


class MpiNetError(ConnectionError):
    """Base class of socket-world failures."""


class MpiTransportError(MpiNetError):
    """A rank link died (peer exit, reset, or a corrupted stream)."""


class MpiTimeoutError(MpiNetError):
    """A blocking verb exceeded its timeout (lost message / hung peer)."""


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bound briefly, then released)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return int(probe.getsockname()[1])


# ---------------------------------------------------------------------------
# framed link plumbing
# ---------------------------------------------------------------------------

def _send_frame(sock, frame: Frame, binary: bool = True) -> int:
    """Encode and ship one frame; returns the wire byte count."""
    data = encode_frame(frame, binary=binary)
    sock.sendall(data)
    return len(data)


class _FrameStream:
    """Blocking single-threaded frame reader over one socket."""

    def __init__(self, sock):
        self.sock = sock
        self.decoder = FrameDecoder()
        self._ready: List[Frame] = []

    def read_frame(self, deadline: float) -> Frame:
        while not self._ready:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MpiTimeoutError("timed out waiting for a frame")
            self.sock.settimeout(remaining)
            try:
                data = self.sock.recv(_RECV_CHUNK)
            except socket.timeout as error:
                raise MpiTimeoutError(
                    "timed out waiting for a frame") from error
            if not data:
                raise MpiTransportError("peer closed during handshake")
            self._ready.extend(self.decoder.feed(data))
        return self._ready.pop(0)


@dataclass
class _Envelope:
    """One delivered point-to-point message awaiting a matching recv."""

    epoch: int
    source: int
    seq: int
    tag: int
    payload: Any

    @property
    def sort_key(self) -> Tuple[int, int, int]:
        return (self.epoch, self.source, self.seq)


class _Peer:
    """One mesh link: the socket plus its framing and traffic counters."""

    def __init__(self, rank: int, sock):
        self.rank = rank
        self.sock = sock
        self.send_lock = threading.Lock()
        self.departed = False  # peer sent a goodbye before closing
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------

class SocketRequest:
    """Handle returned by the non-blocking verbs (mirrors ``SimRequest``).

    ``test`` polls without blocking; ``wait`` blocks until completion
    (for receives: until a matching message arrives) and returns the
    payload.
    """

    def __init__(self, completed: bool = False, payload: Any = None,
                 poll: Optional[Callable[[], Tuple[bool, Any]]] = None,
                 waiter: Optional[Callable[[Optional[float]], Any]] = None):
        self._completed = completed
        self._payload = payload
        self._poll = poll
        self._waiter = waiter

    def test(self) -> bool:
        """Non-blocking completion check."""
        if self._completed:
            return True
        if self._poll is not None:
            done, payload = self._poll()
            if done:
                self._completed = True
                self._payload = payload
        return self._completed

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until complete; returns the payload (``None`` for sends)."""
        if self._completed:
            return self._payload
        if self._waiter is None:  # pragma: no cover - defensive
            raise ValidationError("request has no completion path")
        self._payload = self._waiter(timeout)
        self._completed = True
        return self._payload


# ---------------------------------------------------------------------------
# the world
# ---------------------------------------------------------------------------

class SocketCommWorld:
    """One process's endpoint of a full-mesh socket world.

    Construct through :meth:`connect` (real rendezvous) or
    :func:`start_local_world` (N in-process ranks on localhost sockets,
    for tests and single-host examples).  The world owns one receiver
    thread per peer link; :meth:`close` tears everything down.
    """

    def __init__(self, rank: int, n_ranks: int, peers: Dict[int, _Peer],
                 op_timeout: float = DEFAULT_OP_TIMEOUT):
        check_positive("n_ranks", n_ranks)
        if not 0 <= rank < n_ranks:
            raise ValidationError(f"rank {rank} out of range [0, {n_ranks})")
        if set(peers) != {r for r in range(n_ranks) if r != rank}:
            raise ValidationError("peer links must cover every other rank")
        self.rank = rank
        self.n_ranks = n_ranks
        self.op_timeout = float(op_timeout)
        self._peers = peers
        self._cond = threading.Condition()
        self._mailbox: List[_Envelope] = []
        self._mailbox_keys: List[Tuple[int, int, int]] = []
        self._coll: List[Dict[str, Any]] = []
        self._flushes: Dict[int, set] = {}
        self._send_seq: Dict[int, int] = {r: 0 for r in range(n_ranks)}
        self._epoch = 0
        self._collective_seq = 0
        self._failure: Optional[str] = None
        self._closing = False
        self.n_allreduce = 0
        self.n_bcast = 0
        self.n_barrier = 0
        self._threads = [
            threading.Thread(target=self._recv_loop, args=(peer,),
                             daemon=True,
                             name=f"repro-mpi-net-{rank}<-{peer.rank}")
            for peer in peers.values()
        ]
        for thread in self._threads:
            thread.start()

    # -- construction ------------------------------------------------------

    @classmethod
    def connect(cls, rank: int, n_ranks: int,
                rendezvous: Tuple[str, int],
                timeout: float = CONNECT_TIMEOUT,
                injector: Optional[FaultInjector] = None,
                op_timeout: float = DEFAULT_OP_TIMEOUT) -> "SocketCommWorld":
        """Join the world: rendezvous at ``rendezvous``, then full-mesh.

        Every rank binds an ephemeral data listener and reports it to the
        rendezvous point (hosted by rank 0); rank 0 answers with the full
        address map, after which rank ``r`` dials every lower rank and
        accepts every higher one.  With ``injector`` set, connects check
        the chaos ``net.connect`` site and every mesh socket is wrapped
        in :class:`ChaosSocket` (``net.send``/``net.recv`` sites).
        """
        check_positive("n_ranks", n_ranks)
        if not 0 <= rank < n_ranks:
            raise ValidationError(f"rank {rank} out of range [0, {n_ranks})")
        host, port = str(rendezvous[0]), int(rendezvous[1])
        deadline = time.monotonic() + float(timeout)
        listener = socket.create_server((host, 0), backlog=max(n_ranks, 1))
        try:
            my_port = int(listener.getsockname()[1])
            addresses = cls._rendezvous(rank, n_ranks, (host, port),
                                        (host, my_port), deadline)
            peers: Dict[int, _Peer] = {}
            try:
                # Dial the lower ranks; their listeners are up (bound
                # before rendezvous), so connects at worst queue in the
                # accept backlog.
                for peer_rank in range(rank):
                    peer_host, peer_port = addresses[peer_rank]
                    sock = cls._dial((peer_host, peer_port), deadline,
                                     injector)
                    _send_frame(sock, Frame("mpi_hello", {"rank": rank}),
                                binary=False)
                    peers[peer_rank] = _Peer(peer_rank, sock)
                # Accept the higher ranks; the opening mpi_hello names the
                # dialling rank.
                while len(peers) < n_ranks - 1:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise MpiTimeoutError(
                            f"rank {rank}: mesh accept timed out with "
                            f"{n_ranks - 1 - len(peers)} peers missing")
                    listener.settimeout(remaining)
                    try:
                        sock, _ = listener.accept()
                    except socket.timeout as error:
                        raise MpiTimeoutError(
                            f"rank {rank}: mesh accept timed out") from error
                    if injector is not None:
                        sock = ChaosSocket(sock, injector)
                    stream = _FrameStream(sock)
                    hello = stream.read_frame(deadline)
                    if hello.kind != "mpi_hello" or "rank" not in hello.payload:
                        raise ProtocolError(
                            f"expected an mpi_hello on the mesh link, got "
                            f"{hello.kind!r}")
                    peer_rank = int(hello.payload["rank"])
                    # Back to a blocking socket for the receiver loop (the
                    # handshake read set a finite timeout).
                    sock.settimeout(None)
                    sock.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                    peer = _Peer(peer_rank, sock)
                    # Frames that rode in behind the hello belong to the
                    # link's receiver loop.
                    peer_decoder_backlog = stream._ready
                    peers[peer_rank] = peer
                    peer._backlog = (peer_decoder_backlog,
                                     stream.decoder)  # type: ignore[attr-defined]
            except BaseException:
                for peer in peers.values():
                    peer.sock.close()
                raise
        finally:
            listener.close()
        world = cls(rank, n_ranks, peers, op_timeout=op_timeout)
        return world

    @staticmethod
    def _dial(address: Tuple[str, int], deadline: float,
              injector: Optional[FaultInjector]):
        """Connect to ``address``, retrying until ``deadline``."""
        if injector is not None:
            event = injector.check("net.connect")
            if event is not None:
                if event.action == "delay":
                    time.sleep(event.arg)
                elif event.action == "fail":
                    raise InjectedConnectError(
                        f"injected connect failure to {address}")
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection(
                    address, timeout=max(deadline - time.monotonic(), 0.1))
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if injector is not None:
                    return ChaosSocket(sock, injector)
                return sock
            except OSError as error:
                last_error = error
                time.sleep(0.05)
        raise MpiTimeoutError(
            f"could not connect to {address} before the deadline"
        ) from last_error

    @classmethod
    def _rendezvous(cls, rank: int, n_ranks: int,
                    rendezvous: Tuple[str, int], my_address: Tuple[str, int],
                    deadline: float) -> Dict[int, Tuple[str, int]]:
        """Exchange data-listener addresses through rank 0."""
        if n_ranks == 1:
            return {0: my_address}
        if rank == 0:
            server = socket.create_server(rendezvous,
                                          backlog=max(n_ranks, 1))
            conns: List[Tuple[socket.socket, int]] = []
            addresses = {0: my_address}
            try:
                while len(addresses) < n_ranks:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise MpiTimeoutError(
                            f"rendezvous timed out with "
                            f"{n_ranks - len(addresses)} ranks missing")
                    server.settimeout(remaining)
                    try:
                        conn, _ = server.accept()
                    except socket.timeout as error:
                        raise MpiTimeoutError(
                            "rendezvous accept timed out") from error
                    stream = _FrameStream(conn)
                    hello = stream.read_frame(deadline)
                    peer_rank = int(hello.payload["rank"])
                    addresses[peer_rank] = (str(hello.payload["host"]),
                                            int(hello.payload["port"]))
                    conns.append((conn, peer_rank))
                reply = {"peers": {str(r): list(addr)
                                   for r, addr in addresses.items()}}
                for conn, _peer in conns:
                    _send_frame(conn, Frame("mpi_hello", reply),
                                binary=False)
            finally:
                for conn, _peer in conns:
                    conn.close()
                server.close()
            return addresses
        # Non-zero ranks dial the rendezvous point (rank 0 may be slower
        # to bind it, hence the retry loop) and wait for the map.
        sock = cls._dial(rendezvous, deadline, injector=None)
        try:
            _send_frame(sock, Frame("mpi_hello", {
                "rank": rank, "host": my_address[0], "port": my_address[1],
            }), binary=False)
            reply = _FrameStream(sock).read_frame(deadline)
        finally:
            sock.close()
        peers = reply.payload.get("peers")
        if not isinstance(peers, dict) or len(peers) != n_ranks:
            raise ProtocolError(f"malformed rendezvous reply: {reply.payload}")
        return {int(r): (str(addr[0]), int(addr[1]))
                for r, addr in peers.items()}

    # -- rank handle -------------------------------------------------------

    def comm(self) -> "SocketComm":
        """This process's communicator endpoint."""
        return SocketComm(self, self.rank)

    @property
    def size(self) -> int:
        return self.n_ranks

    # -- receiver threads --------------------------------------------------

    def _recv_loop(self, peer: _Peer) -> None:
        backlog = getattr(peer, "_backlog", None)
        decoder = FrameDecoder()
        if backlog is not None:
            frames, decoder = backlog
            for frame in frames:
                self._dispatch(frame, peer)
        try:
            while True:
                data = peer.sock.recv(_RECV_CHUNK)
                if not data:
                    # EOF after a goodbye is a clean peer exit; the bye
                    # rode the same FIFO stream, so everything the peer
                    # ever sent has already been dispatched.
                    if peer.departed or self._closing:
                        return
                    raise MpiTransportError(
                        f"rank {peer.rank} closed the link")
                with self._cond:
                    peer.received_bytes += len(data)
                for frame in decoder.feed(data):
                    self._dispatch(frame, peer)
        except (OSError, ProtocolError, MpiNetError) as error:
            with self._cond:
                if not self._closing and self._failure is None:
                    self._failure = (f"link to rank {peer.rank} failed: "
                                     f"{error}")
                self._cond.notify_all()

    def _dispatch(self, frame: Frame, peer: _Peer) -> None:
        payload = frame.payload
        if frame.kind == "mpi_msg":
            envelope = _Envelope(
                epoch=int(payload["epoch"]), source=int(payload["src"]),
                seq=int(payload["seq"]), tag=int(payload["tag"]),
                payload=payload.get("data"))
            with self._cond:
                peer.received_messages += 1
                self._insert(envelope)
                self._cond.notify_all()
            return
        if frame.kind == "mpi_ctl":
            kind = payload.get("ctl")
            with self._cond:
                peer.received_messages += 1
                if kind == "flush":
                    self._flushes.setdefault(
                        int(payload["cseq"]), set()).add(int(payload["src"]))
                elif kind == "coll":
                    self._coll.append(payload)
                elif kind == "bye":
                    peer.departed = True
                else:
                    self._failure = (f"unknown mpi_ctl {kind!r} from rank "
                                     f"{peer.rank}")
                self._cond.notify_all()
            return
        with self._cond:
            self._failure = (f"unexpected {frame.kind!r} frame from rank "
                             f"{peer.rank}")
            self._cond.notify_all()

    def _insert(self, envelope: _Envelope) -> None:
        """Keep the mailbox sorted by (epoch, source, seq) — the
        deterministic matching order."""
        index = bisect.bisect_right(self._mailbox_keys, envelope.sort_key)
        self._mailbox_keys.insert(index, envelope.sort_key)
        self._mailbox.insert(index, envelope)

    # -- blocking machinery ------------------------------------------------

    def _check_alive(self) -> None:
        if self._closing:
            raise MpiTransportError(f"rank {self.rank}: world is closed")
        if self._failure is not None:
            raise MpiTransportError(f"rank {self.rank}: {self._failure}")

    def _await(self, try_pop: Callable[[], Tuple[bool, Any]],
               timeout: Optional[float], what: str) -> Any:
        """Wait under the condition until ``try_pop`` yields, fail fast
        on link death, raise :class:`MpiTimeoutError` past ``timeout``."""
        deadline = time.monotonic() + (self.op_timeout if timeout is None
                                       else float(timeout))
        with self._cond:
            while True:
                # Match before checking health: anything already delivered
                # is still valid even if a link died a microsecond later
                # (peers racing through clean shutdown must not poison a
                # verb whose data is sitting in the mailbox).
                done, value = try_pop()
                if done:
                    return value
                self._check_alive()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MpiTimeoutError(
                        f"rank {self.rank}: {what} timed out")
                self._cond.wait(min(remaining, 0.5))

    # -- point to point (world side) ---------------------------------------

    def _post(self, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.n_ranks:
            raise ValidationError(f"destination rank {dest} out of range")
        seq = self._send_seq[dest]
        self._send_seq[dest] = seq + 1
        if dest == self.rank:
            envelope = _Envelope(epoch=self._epoch, source=self.rank,
                                 seq=seq, tag=int(tag), payload=payload)
            with self._cond:
                self._check_alive()
                self._insert(envelope)
                self._cond.notify_all()
            return
        frame = Frame("mpi_msg", {"src": self.rank, "dst": dest,
                                  "tag": int(tag), "seq": seq,
                                  "epoch": self._epoch, "data": payload})
        self._send(dest, frame)

    def _send(self, dest: int, frame: Frame) -> None:
        peer = self._peers[dest]
        with self._cond:
            self._check_alive()
        try:
            with peer.send_lock:
                n_bytes = _send_frame(peer.sock, frame)
        except (OSError, ProtocolError) as error:
            with self._cond:
                if self._failure is None:
                    self._failure = f"send to rank {dest} failed: {error}"
                self._cond.notify_all()
            raise MpiTransportError(
                f"rank {self.rank}: send to rank {dest} failed: "
                f"{error}") from error
        with self._cond:
            peer.sent_messages += 1
            peer.sent_bytes += n_bytes

    def _try_match(self, source: int, tag: int) -> Tuple[bool, Any]:
        """Pop the first matching envelope (callers hold the lock)."""
        for index, envelope in enumerate(self._mailbox):
            source_ok = source == ANY_SOURCE or envelope.source == source
            tag_ok = tag == ANY_TAG or envelope.tag == tag
            if source_ok and tag_ok:
                del self._mailbox[index]
                del self._mailbox_keys[index]
                return True, envelope.payload
        return False, None

    # -- collectives (world side) ------------------------------------------

    def _next_collective(self) -> int:
        cseq = self._collective_seq
        self._collective_seq = cseq + 1
        return cseq

    def _pop_coll(self, cseq: int, source: Optional[int]) -> Tuple[bool, Any]:
        for index, payload in enumerate(self._coll):
            if int(payload.get("cseq", -1)) != cseq:
                continue
            if source is not None and int(payload.get("src", -1)) != source:
                continue
            del self._coll[index]
            return True, payload
        return False, None

    def _barrier(self, timeout: Optional[float]) -> None:
        cseq = self._next_collective()
        self.n_barrier += 1
        if self.n_ranks == 1:
            self._epoch += 1
            return
        marker = Frame("mpi_ctl", {"ctl": "flush", "cseq": cseq,
                                   "src": self.rank})
        for dest in self._peers:
            self._send(dest, marker)
        expected = set(self._peers)

        def everyone_flushed() -> Tuple[bool, Any]:
            arrived = self._flushes.get(cseq, set())
            if expected <= arrived:
                del self._flushes[cseq]
                return True, None
            return False, None

        self._await(everyone_flushed, timeout, f"barrier #{cseq}")
        # All pre-barrier traffic on every link has been enqueued (the
        # marker travelled behind it); later sends open a new epoch.
        self._epoch += 1

    def _allreduce(self, array: np.ndarray, op: str, key: str,
                   timeout: Optional[float]) -> np.ndarray:
        cseq = self._next_collective()
        self.n_allreduce += 1
        contribution = np.asarray(array, dtype=np.float64)
        if self.n_ranks == 1:
            return ReduceOp.apply(op, [contribution.copy()])
        if self.rank == 0:
            parts: Dict[int, np.ndarray] = {0: contribution.copy()}
            for _ in range(self.n_ranks - 1):
                payload = self._await(
                    lambda: self._pop_coll(cseq, source=None), timeout,
                    f"allreduce #{cseq} gather")
                if payload.get("key") != key or payload.get("op") != op:
                    raise ValidationError(
                        f"collective mismatch at #{cseq}: rank 0 runs "
                        f"({key!r}, {op!r}), rank {payload.get('src')} sent "
                        f"({payload.get('key')!r}, {payload.get('op')!r})")
                parts[int(payload["src"])] = np.asarray(payload["data"],
                                                        dtype=np.float64)
            # Reduce in rank order with the simulated world's arithmetic,
            # so the result is bit-identical to SimComm.allreduce.
            result = ReduceOp.apply(op, [parts[rank]
                                         for rank in range(self.n_ranks)])
            reply = Frame("mpi_ctl", {"ctl": "coll", "cseq": cseq,
                                      "src": 0, "key": key, "op": op,
                                      "data": result})
            for dest in self._peers:
                self._send(dest, reply)
            return result.copy()
        self._send(0, Frame("mpi_ctl", {"ctl": "coll", "cseq": cseq,
                                        "src": self.rank, "key": key,
                                        "op": op, "data": contribution}))
        payload = self._await(lambda: self._pop_coll(cseq, source=0),
                              timeout, f"allreduce #{cseq} result")
        if payload.get("key") != key or payload.get("op") != op:
            raise ValidationError(
                f"collective mismatch at #{cseq}: rank {self.rank} runs "
                f"({key!r}, {op!r}), rank 0 answered "
                f"({payload.get('key')!r}, {payload.get('op')!r})")
        return np.array(payload["data"], dtype=np.float64)

    def _bcast(self, payload: Any, root: int, timeout: Optional[float]) -> Any:
        if not 0 <= root < self.n_ranks:
            raise ValidationError(f"bcast root {root} out of range")
        cseq = self._next_collective()
        self.n_bcast += 1
        if self.n_ranks == 1:
            return payload
        if self.rank == root:
            frame = Frame("mpi_ctl", {"ctl": "coll", "cseq": cseq,
                                      "src": root, "key": "bcast",
                                      "op": "bcast", "data": payload})
            for dest in self._peers:
                self._send(dest, frame)
            return payload
        reply = self._await(lambda: self._pop_coll(cseq, source=root),
                            timeout, f"bcast #{cseq}")
        return reply.get("data")

    # -- audit / metrics ---------------------------------------------------

    def pending_messages(self) -> int:
        """Messages delivered but not yet received by a verb."""
        with self._cond:
            return len(self._mailbox)

    def stats(self) -> Dict[str, object]:
        """Per-peer transport counters (an obs ``mpi.*`` provider)."""
        with self._cond:
            sent = {str(peer.rank): {"messages": peer.sent_messages,
                                     "bytes": peer.sent_bytes}
                    for peer in self._peers.values()}
            received = {str(peer.rank): {"messages": peer.received_messages,
                                         "bytes": peer.received_bytes}
                        for peer in self._peers.values()}
            return {
                "rank": self.rank,
                "world": self.n_ranks,
                "epoch": self._epoch,
                "pending": len(self._mailbox),
                "sent": sent,
                "received": received,
                "allreduce": self.n_allreduce,
                "bcast": self.n_bcast,
                "barrier": self.n_barrier,
            }

    def register_metrics(self, registry) -> None:
        """Expose :meth:`stats` as an obs provider under ``mpi.{rank=R}``."""
        registry.register_provider("mpi", self.stats, rank=self.rank)

    def total_bytes_sent(self) -> int:
        with self._cond:
            return sum(peer.sent_bytes for peer in self._peers.values())

    def total_messages_sent(self) -> int:
        with self._cond:
            return sum(peer.sent_messages for peer in self._peers.values())

    # -- teardown ----------------------------------------------------------

    def abort(self, reason: str = "aborted") -> None:
        """Tear the world down *as a failure*: no goodbye is sent, so
        peers blocked on this rank fail fast with
        :class:`MpiTransportError` instead of waiting out a timeout.
        Error paths should call this; clean exits call :meth:`close`."""
        with self._cond:
            if self._failure is None:
                self._failure = str(reason)
            self._cond.notify_all()
        self.close()

    def close(self) -> None:
        """Close every link and stop the receiver threads (idempotent).

        A healthy world says goodbye first (an ``mpi_ctl`` ``bye`` frame
        per link) so peers treat the following EOF as a clean exit — a
        rank finishing a hair earlier must not read as a crash to a peer
        still draining its final barrier.  A failed world skips the bye.
        """
        with self._cond:
            if self._closing:
                return
            graceful = self._failure is None
            self._closing = True
            self._cond.notify_all()
        if graceful:
            bye = Frame("mpi_ctl", {"ctl": "bye", "src": self.rank})
            for peer in self._peers.values():
                try:
                    with peer.send_lock:
                        _send_frame(peer.sock, bye)
                except OSError:
                    pass
        for peer in self._peers.values():
            # shutdown() (not just close()) — the receiver thread blocked in
            # recv() holds the kernel file description open, so a bare close
            # would neither wake it nor send FIN to the peer.
            try:
                peer.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                peer.sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "SocketCommWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the communicator endpoint
# ---------------------------------------------------------------------------

@dataclass
class SocketComm:
    """One rank's verb surface over a :class:`SocketCommWorld`.

    Mirrors :class:`repro.mpi.simmpi.SimComm`, with two deliberate
    differences a per-process program needs: blocking verbs *wait*
    (instead of raising when no message has been posted yet), and
    ``allreduce`` returns the reduced array directly on every rank (the
    orchestrated ``None``-until-last / ``fetch_allreduce`` dance exists
    only because the simulated world has no concurrency).
    """

    world: SocketCommWorld
    rank: int

    @property
    def size(self) -> int:
        return self.world.n_ranks

    # -- point to point ----------------------------------------------------

    def isend(self, payload: Any, dest: int, tag: int = 0,
              description: str = "") -> SocketRequest:
        """Non-blocking send (the bytes are handed to the kernel here)."""
        self.world._post(dest, tag, payload)
        return SocketRequest(completed=True, payload=None)

    def send(self, payload: Any, dest: int, tag: int = 0,
             description: str = "") -> None:
        """Blocking send (identical to isend over TCP's buffering)."""
        self.isend(payload, dest, tag, description=description)

    def irecv(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> SocketRequest:
        """Non-blocking receive; ``test`` polls, ``wait`` blocks."""
        def poll() -> Tuple[bool, Any]:
            with self.world._cond:
                done, payload = self.world._try_match(source, tag)
                if not done:
                    self.world._check_alive()
                return done, payload

        def waiter(timeout: Optional[float]) -> Any:
            return self.recv(source, tag, timeout=timeout)

        return SocketRequest(poll=poll, waiter=waiter)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None) -> Any:
        """Blocking receive of the first matching message."""
        return self.world._await(
            lambda: self.world._try_match(source, tag), timeout,
            f"recv(source={source}, tag={tag})")

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is waiting (no consumption)."""
        with self.world._cond:
            for envelope in self.world._mailbox:
                source_ok = (source == ANY_SOURCE
                             or envelope.source == source)
                tag_ok = tag == ANY_TAG or envelope.tag == tag
                if source_ok and tag_ok:
                    return True
            self.world._check_alive()
            return False

    def drain(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> List[Any]:
        """Receive every *currently delivered* matching message.

        Deterministic only after a barrier (the flush guarantee); mid-
        stream it returns whatever has arrived, like MPI's probe loop.
        """
        payloads = []
        while self.iprobe(source, tag):
            payloads.append(self.recv(source, tag))
        return payloads

    # -- collectives -------------------------------------------------------

    def allreduce(self, array: np.ndarray, op: str = ReduceOp.SUM,
                  key: str = "allreduce",
                  timeout: Optional[float] = None) -> np.ndarray:
        """All-ranks reduction; blocks and returns the result everywhere.

        Reduction happens at rank 0 in rank order with the simulated
        world's :class:`ReduceOp` arithmetic — bit-identical to
        ``SimComm.allreduce`` over the same contributions.  ``key``/``op``
        mismatches between ranks raise instead of deadlocking.
        """
        return self.world._allreduce(array, op, key, timeout)

    def fetch_allreduce(self, key: str = "allreduce") -> np.ndarray:
        """Orchestration-only verb: the socket world has no deferred
        collectives (``allreduce`` already returned the result)."""
        raise ValidationError(
            "SocketComm.allreduce returns the reduced array directly; "
            "fetch_allreduce only exists for the orchestrated SimComm world")

    def bcast(self, payload: Any, root: int = 0, tag: int = 999_999) -> Any:
        """Broadcast ``payload`` from ``root``; blocks on the other ranks."""
        return self.world._bcast(payload, root, timeout=None)

    def barrier(self, timeout: Optional[float] = None) -> None:
        """Flush barrier: completes only after every peer entered it *and*
        all pre-barrier point-to-point traffic has been delivered."""
        self.world._barrier(timeout)


# ---------------------------------------------------------------------------
# in-process convenience: N ranks on localhost sockets
# ---------------------------------------------------------------------------

def start_local_world(
        n_ranks: int,
        injectors: Optional[Sequence[Optional[FaultInjector]]] = None,
        op_timeout: float = DEFAULT_OP_TIMEOUT,
        host: str = "127.0.0.1") -> List[SocketCommWorld]:
    """Stand up ``n_ranks`` socket worlds inside this process.

    Every rank gets its own :class:`SocketCommWorld` over real localhost
    TCP links — the full wire path (framing, binary payloads, receiver
    threads, flush barriers) without spawning OS processes.  Tests, the
    quickstart example and the bench ladder use this; the launcher
    (``python -m repro.mpi.net``) builds the same mesh across real
    processes.  Caller ranks must run on separate threads (the verbs
    block); each should close its world when done.
    """
    check_positive("n_ranks", n_ranks)
    if injectors is not None and len(injectors) != n_ranks:
        raise ValidationError("need one injector slot per rank")
    rendezvous = (host, free_port(host))
    worlds: List[Optional[SocketCommWorld]] = [None] * n_ranks
    errors: List[Optional[BaseException]] = [None] * n_ranks

    def connect(rank: int) -> None:
        try:
            worlds[rank] = SocketCommWorld.connect(
                rank, n_ranks, rendezvous,
                injector=injectors[rank] if injectors else None,
                op_timeout=op_timeout)
        except BaseException as error:  # re-raised by the parent below
            errors[rank] = error

    threads = [threading.Thread(target=connect, args=(rank,), daemon=True,
                                name=f"repro-mpi-connect-{rank}")
               for rank in range(n_ranks)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=CONNECT_TIMEOUT + 5.0)
    failures = [error for error in errors if error is not None]
    if failures or any(world is None for world in worlds):
        for world in worlds:
            if world is not None:
                world.close()
        if failures:
            raise failures[0]
        raise MpiTimeoutError("local world failed to connect")
    return [world for world in worlds if world is not None]
