"""Socket-backed MPI world (``repro.mpi.net``).

Real multi-process message passing with the :class:`~repro.mpi.simmpi.SimComm`
verb surface: :class:`SocketCommWorld` full-meshes the ranks over TCP
using the serving stack's framed codec, :class:`SocketComm` speaks
tagged isend/irecv/recv/iprobe plus allreduce/bcast/barrier, and
``python -m repro.mpi.net`` launches the rank processes.  See
:mod:`repro.mpi.net.world` for the determinism and failure model.
"""

from repro.mpi.net.world import (
    ANY_SOURCE,
    ANY_TAG,
    CONNECT_TIMEOUT,
    DEFAULT_OP_TIMEOUT,
    MpiNetError,
    MpiTimeoutError,
    MpiTransportError,
    SocketComm,
    SocketCommWorld,
    SocketRequest,
    free_port,
    start_local_world,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CONNECT_TIMEOUT",
    "DEFAULT_OP_TIMEOUT",
    "MpiNetError",
    "MpiTimeoutError",
    "MpiTransportError",
    "SocketComm",
    "SocketCommWorld",
    "SocketRequest",
    "free_port",
    "start_local_world",
]
