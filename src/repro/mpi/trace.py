"""Per-rank time accounting: compute, communicate, and overlap ("both").

Figure 5 of the paper breaks the distributed run's wall-clock into the
fraction of time each rank spends purely computing, purely communicating
(waiting for or progressing messages with no useful compute available),
and doing *both* (computation proceeding while transfers are in flight —
the overlap that asynchronous MPI makes possible).

:class:`RankTimeline` accumulates the three buckets for one rank;
:class:`PhaseBreakdown` aggregates them across ranks into the normalised
percentages the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from repro.utils.validation import ValidationError, check_non_negative

__all__ = ["RankTimeline", "PhaseBreakdown", "combine_breakdowns"]


@dataclass
class RankTimeline:
    """Accumulated seconds in each activity class for one rank."""

    rank: int
    compute: float = 0.0
    communicate: float = 0.0
    both: float = 0.0

    def add_compute(self, seconds: float) -> None:
        check_non_negative("seconds", seconds)
        self.compute += seconds

    def add_communicate(self, seconds: float) -> None:
        check_non_negative("seconds", seconds)
        self.communicate += seconds

    def add_both(self, seconds: float) -> None:
        check_non_negative("seconds", seconds)
        self.both += seconds

    def add_overlapped_phase(self, compute_seconds: float,
                             comm_busy_seconds: float,
                             wait_seconds: float) -> None:
        """Account one phase given its raw compute / in-flight / wait times.

        ``comm_busy_seconds`` is the time during which transfers involving
        this rank were in flight; the part of it that coincides with
        computation is "both", computation with no transfer in flight is
        "compute", and ``wait_seconds`` (idle, waiting for data after local
        compute finished) plus any non-overlappable message overhead is
        "communicate".
        """
        check_non_negative("compute_seconds", compute_seconds)
        check_non_negative("comm_busy_seconds", comm_busy_seconds)
        check_non_negative("wait_seconds", wait_seconds)
        overlap = min(compute_seconds, comm_busy_seconds)
        self.both += overlap
        self.compute += compute_seconds - overlap
        # Transfer time extending beyond the compute window surfaces as wait
        # time on whichever rank ends up blocked on it, so only the explicit
        # wait is charged here (no double counting).
        self.communicate += wait_seconds

    @property
    def total(self) -> float:
        return self.compute + self.communicate + self.both

    def fractions(self) -> Dict[str, float]:
        """Normalised shares; all zeros map to 100% compute."""
        total = self.total
        if total <= 0:
            return {"compute": 1.0, "both": 0.0, "communicate": 0.0}
        return {
            "compute": self.compute / total,
            "both": self.both / total,
            "communicate": self.communicate / total,
        }


@dataclass
class PhaseBreakdown:
    """Aggregate compute / both / communicate shares across ranks."""

    compute: float
    both: float
    communicate: float

    def __post_init__(self):
        total = self.compute + self.both + self.communicate
        if total <= 0:
            raise ValidationError("breakdown must have positive total time")

    @property
    def total(self) -> float:
        return self.compute + self.both + self.communicate

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {
            "compute": self.compute / total,
            "both": self.both / total,
            "communicate": self.communicate / total,
        }

    @classmethod
    def from_timelines(cls, timelines: Iterable[RankTimeline]) -> "PhaseBreakdown":
        timelines = list(timelines)
        if not timelines:
            raise ValidationError("cannot aggregate zero timelines")
        return cls(
            compute=float(sum(t.compute for t in timelines)),
            both=float(sum(t.both for t in timelines)),
            communicate=float(sum(t.communicate for t in timelines)),
        )


def combine_breakdowns(breakdowns: Iterable[PhaseBreakdown]) -> PhaseBreakdown:
    """Sum several breakdowns (e.g. one per iteration) into one."""
    breakdowns = list(breakdowns)
    if not breakdowns:
        raise ValidationError("cannot combine zero breakdowns")
    return PhaseBreakdown(
        compute=float(sum(b.compute for b in breakdowns)),
        both=float(sum(b.both for b in breakdowns)),
        communicate=float(sum(b.communicate for b in breakdowns)),
    )
