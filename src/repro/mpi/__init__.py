"""Simulated message-passing substrate (the stand-in for MPI-3).

The execution environment has no MPI runtime and a single core, so the
distributed experiments run on an in-process substrate with two layers:

* **Functional layer** (:mod:`repro.mpi.simmpi`) — ``SimCommWorld`` gives
  every simulated rank its own mailbox and the familiar ``Isend`` /
  ``Irecv`` / ``Allreduce`` / ``Barrier`` verbs.  Ranks keep *separate
  copies* of the factor matrices; an item only becomes visible on another
  rank when a message carrying it is delivered.  This is what makes the
  distributed sampler's correctness checkable: forget to send an item and
  the result diverges from the sequential reference.
* **Performance layer** (:mod:`repro.mpi.network`,
  :mod:`repro.mpi.trace`) — a cluster/network model (per-message overhead,
  link latency and bandwidth, rack topology with a shared inter-rack
  uplink, per-node cache capacity) and a per-rank time-line accounting of
  compute / communicate / overlap, used by the strong-scaling driver to
  regenerate Figures 4 and 5.

Send-buffer aggregation (:mod:`repro.mpi.buffers`) reproduces the paper's
optimisation of batching updated items into fixed-size buffers instead of
sending each item individually.
"""

from repro.mpi.network import ClusterSpec, NetworkModel
from repro.mpi.simmpi import SimCommWorld, SimComm, SimRequest, MessageRecord
from repro.mpi.buffers import SendBuffer, BufferStats
from repro.mpi.trace import RankTimeline, PhaseBreakdown, combine_breakdowns

__all__ = [
    "ClusterSpec",
    "NetworkModel",
    "SimCommWorld",
    "SimComm",
    "SimRequest",
    "MessageRecord",
    "SendBuffer",
    "BufferStats",
    "RankTimeline",
    "PhaseBreakdown",
    "combine_breakdowns",
]
