"""In-process message-passing world (functional MPI stand-in).

``SimCommWorld`` hosts ``n_ranks`` mailboxes inside one Python process and
hands each simulated rank a :class:`SimComm` endpoint with the MPI verbs
the distributed sampler needs: non-blocking point-to-point sends and
receives with tags, blocking receive, probe, allreduce, broadcast and
barrier.  Delivery is immediate and reliable (the performance layer in
:mod:`repro.mpi.trace` models *time*; this layer models *data movement*),
but the discipline is real: a rank can only see another rank's data if a
message carrying it was posted, and every message is logged so tests and
the benchmark harness can audit the traffic.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.utils.validation import ValidationError, check_positive

__all__ = ["MessageRecord", "SimRequest", "SimComm", "SimCommWorld", "ReduceOp"]

#: Tag value matching any tag on the receive side (mirrors MPI_ANY_TAG).
ANY_TAG = -1
#: Source value matching any source on the receive side (mirrors MPI_ANY_SOURCE).
ANY_SOURCE = -1


@dataclass(frozen=True)
class MessageRecord:
    """Audit record of one posted message."""

    message_id: int
    source: int
    destination: int
    tag: int
    n_bytes: int
    description: str = ""


@dataclass
class _Envelope:
    """A message sitting in a destination mailbox."""

    record: MessageRecord
    payload: Any


@dataclass
class SimRequest:
    """Handle returned by the non-blocking operations.

    ``wait``/``test`` mirror ``MPI_Wait``/``MPI_Test``: for receives they
    return the payload once a matching message is available.
    """

    _completed: bool = False
    _payload: Any = None
    _poll: Optional[Callable[[], Tuple[bool, Any]]] = None

    def test(self) -> bool:
        """Non-blocking completion check."""
        if self._completed:
            return True
        if self._poll is not None:
            done, payload = self._poll()
            if done:
                self._completed = True
                self._payload = payload
        return self._completed

    def wait(self) -> Any:
        """Block (conceptually) until complete and return the payload."""
        if not self.test():
            raise ValidationError(
                "SimRequest.wait would deadlock: no matching message has been "
                "posted yet (the simulated world has no concurrent progress)")
        return self._payload


class ReduceOp:
    """Reduction operators for allreduce (a tiny subset of MPI_Op)."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"

    _FUNCS = {
        "sum": lambda arrays: sum(arrays[1:], start=arrays[0].copy()),
        "max": lambda arrays: np.maximum.reduce(arrays),
        "min": lambda arrays: np.minimum.reduce(arrays),
    }

    @classmethod
    def apply(cls, op: str, arrays: List[np.ndarray]) -> np.ndarray:
        if op not in cls._FUNCS:
            raise ValidationError(f"unsupported reduce op {op!r}")
        return cls._FUNCS[op](arrays)


class SimCommWorld:
    """The shared state of all simulated ranks.

    Parameters
    ----------
    n_ranks:
        Number of simulated MPI ranks.
    """

    def __init__(self, n_ranks: int):
        check_positive("n_ranks", n_ranks)
        self.n_ranks = n_ranks
        self._mailboxes: List[Deque[_Envelope]] = [deque() for _ in range(n_ranks)]
        self._message_log: List[MessageRecord] = []
        self._message_counter = itertools.count()
        self._collective_slots: Dict[str, Dict[int, Any]] = {}

    # -- rank handles --------------------------------------------------------

    def comm(self, rank: int) -> "SimComm":
        """Endpoint for one rank."""
        if not 0 <= rank < self.n_ranks:
            raise ValidationError(f"rank {rank} out of range [0, {self.n_ranks})")
        return SimComm(self, rank)

    def comms(self) -> List["SimComm"]:
        """Endpoints for every rank, indexed by rank."""
        return [self.comm(rank) for rank in range(self.n_ranks)]

    # -- message plumbing ----------------------------------------------------

    def _post(self, source: int, destination: int, tag: int, payload: Any,
              n_bytes: int, description: str) -> MessageRecord:
        if not 0 <= destination < self.n_ranks:
            raise ValidationError(f"destination rank {destination} out of range")
        record = MessageRecord(
            message_id=next(self._message_counter),
            source=source,
            destination=destination,
            tag=tag,
            n_bytes=n_bytes,
            description=description,
        )
        self._mailboxes[destination].append(_Envelope(record, payload))
        self._message_log.append(record)
        return record

    def _match(self, rank: int, source: int, tag: int) -> Optional[_Envelope]:
        mailbox = self._mailboxes[rank]
        for index, envelope in enumerate(mailbox):
            source_ok = source == ANY_SOURCE or envelope.record.source == source
            tag_ok = tag == ANY_TAG or envelope.record.tag == tag
            if source_ok and tag_ok:
                del mailbox[index]
                return envelope
        return None

    # -- audit ---------------------------------------------------------------

    @property
    def message_log(self) -> List[MessageRecord]:
        """All messages posted so far, in posting order."""
        return list(self._message_log)

    def traffic_matrix(self) -> np.ndarray:
        """Bytes sent from rank i to rank j, as an ``(n, n)`` array."""
        matrix = np.zeros((self.n_ranks, self.n_ranks))
        for record in self._message_log:
            matrix[record.source, record.destination] += record.n_bytes
        return matrix

    def pending_messages(self) -> int:
        """Messages posted but not yet received (should be 0 after a clean run)."""
        return sum(len(mailbox) for mailbox in self._mailboxes)

    def reset_log(self) -> None:
        self._message_log.clear()


@dataclass
class SimComm:
    """One rank's communicator endpoint."""

    world: SimCommWorld
    rank: int

    @property
    def size(self) -> int:
        return self.world.n_ranks

    # -- point to point ------------------------------------------------------

    def isend(self, payload: Any, dest: int, tag: int = 0,
              description: str = "") -> SimRequest:
        """Non-blocking send (delivery is immediate in the functional layer)."""
        n_bytes = _payload_bytes(payload)
        self.world._post(self.rank, dest, tag, payload, n_bytes, description)
        return SimRequest(_completed=True, _payload=None)

    def send(self, payload: Any, dest: int, tag: int = 0,
             description: str = "") -> None:
        """Blocking send (identical to isend in this world)."""
        self.isend(payload, dest, tag, description=description)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimRequest:
        """Non-blocking receive; completes when a matching message exists."""
        def poll() -> Tuple[bool, Any]:
            envelope = self.world._match(self.rank, source, tag)
            if envelope is None:
                return False, None
            return True, envelope.payload

        return SimRequest(_poll=poll)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; raises if no matching message has been posted."""
        envelope = self.world._match(self.rank, source, tag)
        if envelope is None:
            raise ValidationError(
                f"rank {self.rank}: recv(source={source}, tag={tag}) would "
                "deadlock — no matching message has been posted")
        return envelope.payload

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is waiting."""
        mailbox = self.world._mailboxes[self.rank]
        for envelope in mailbox:
            source_ok = source == ANY_SOURCE or envelope.record.source == source
            tag_ok = tag == ANY_TAG or envelope.record.tag == tag
            if source_ok and tag_ok:
                return True
        return False

    def drain(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> List[Any]:
        """Receive every currently waiting matching message."""
        payloads = []
        while self.iprobe(source, tag):
            payloads.append(self.recv(source, tag))
        return payloads

    # -- collectives -----------------------------------------------------------

    def allreduce(self, array: np.ndarray, op: str = ReduceOp.SUM,
                  key: str = "allreduce") -> np.ndarray:
        """All-ranks reduction.

        The orchestrator calls this once per rank (any order); every call
        contributes the rank's array, and the reduced result is returned as
        soon as all contributions for the collective ``key`` are in.  Ranks
        calling with mismatched keys raise, mirroring an MPI collective
        mismatch hang.
        """
        slot = self.world._collective_slots.setdefault(key, {})
        if self.rank in slot:
            raise ValidationError(
                f"rank {self.rank} called collective {key!r} twice")
        slot[self.rank] = np.asarray(array, dtype=np.float64).copy()
        if len(slot) < self.size:
            # Not everyone has contributed yet; the caller retries via
            # complete_allreduce once the orchestration loop has stepped the
            # remaining ranks.
            return None  # type: ignore[return-value]
        arrays = [slot[rank] for rank in range(self.size)]
        result = ReduceOp.apply(op, arrays)
        if self.size == 1:
            del self.world._collective_slots[key]
            return result.copy()
        # Keep the result so the other size-1 ranks can fetch it; the slot is
        # cleared when the last of them has fetched.
        self.world._collective_slots[key] = {"__result__": result, "__fetched__": 0,
                                             "__n__": self.size - 1}
        return result.copy()

    def fetch_allreduce(self, key: str = "allreduce") -> np.ndarray:
        """Fetch the result of a completed collective (for ranks that contributed early)."""
        slot = self.world._collective_slots.get(key)
        if not slot or "__result__" not in slot:
            raise ValidationError(f"collective {key!r} has not completed")
        result = slot["__result__"].copy()
        slot["__fetched__"] += 1
        if slot["__fetched__"] >= slot["__n__"] :
            del self.world._collective_slots[key]
        return result

    def bcast(self, payload: Any, root: int = 0, tag: int = 999_999) -> Any:
        """Broadcast from ``root``: root posts one message per other rank."""
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.isend(payload, dest, tag=tag, description="bcast")
            return payload
        return self.recv(source=root, tag=tag)

    def barrier(self) -> None:
        """No-op in the functional layer (time is handled by the trace model)."""


def _payload_bytes(payload: Any) -> int:
    """Approximate wire size of a payload (arrays count exactly, rest via repr)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return int(sum(_payload_bytes(item) for item in payload))
    if isinstance(payload, dict):
        return int(sum(_payload_bytes(v) for v in payload.values()))
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    return len(repr(payload).encode("utf8"))
