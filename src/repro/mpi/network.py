"""Cluster and network performance model.

The distributed experiments of the paper run on two machines:

* *Lynx* — 20 dual-socket Westmere nodes (12 cores / 24 threads, 96 GB);
* *Fermi* — an IBM BlueGene/Q with 16-core nodes grouped in 32-node racks.

Figure 4's headline observation is topological: scaling is good (even
super-linear, thanks to shrinking per-node working sets) up to 32 nodes =
one rack, and degrades sharply once the allocation spans racks.  The model
here captures exactly the ingredients needed for that shape:

* a fixed software overhead per message (why the paper aggregates items
  into send buffers);
* link latency and bandwidth that differ between intra-rack and
  inter-rack communication;
* a *shared inter-rack uplink* per rack, so inter-rack traffic from all
  nodes of a rack contends for the same pipe;
* a per-node cache capacity: when a node's working set (its slice of U and
  V plus the items it receives) drops below the cache size, its per-item
  compute cost shrinks, which is what produces super-linear speed-up.

All parameters are explicit and documented so ablations can switch each
effect off independently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ClusterSpec", "NetworkModel"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated machine.

    Parameters
    ----------
    cores_per_node:
        Hardware threads used per node (16 on the BlueGene/Q in the paper,
        hence the "#cores = 16 x #nodes" axis of Figure 4).
    rack_size:
        Nodes per rack; communication within a rack is cheap, across racks
        it shares the rack uplink.
    cache_bytes:
        Per-node last-level-cache capacity used by the cache-speed-up
        model.
    cache_speedup:
        Maximum multiplicative speed-up of per-item compute when the whole
        working set fits in cache (super-linear-scaling knob; set to 1.0 to
        disable).
    node_compute_efficiency:
        Fraction of ideal multi-core throughput a node achieves on its own
        share (intra-node parallel efficiency when the per-node scheduler
        is not simulated explicitly).
    """

    cores_per_node: int = 16
    rack_size: int = 32
    cache_bytes: float = 32 * 1024 * 1024
    cache_speedup: float = 1.35
    node_compute_efficiency: float = 0.9

    def __post_init__(self):
        check_positive("cores_per_node", self.cores_per_node)
        check_positive("rack_size", self.rack_size)
        check_positive("cache_bytes", self.cache_bytes)
        if self.cache_speedup < 1.0:
            raise ValueError("cache_speedup must be >= 1.0")
        if not (0.0 < self.node_compute_efficiency <= 1.0):
            raise ValueError("node_compute_efficiency must be in (0, 1]")

    def rack_of(self, node: int) -> int:
        """Rack index of a node."""
        check_non_negative("node", node)
        return node // self.rack_size

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of(a) == self.rack_of(b)

    def n_racks(self, n_nodes: int) -> int:
        return int(np.ceil(n_nodes / self.rack_size))

    def cache_factor(self, working_set_bytes: float) -> float:
        """Compute-speed multiplier in [1, cache_speedup] for a working set.

        Full speed-up when the working set fits entirely in cache, linear
        fall-off until 8x the cache size, no speed-up beyond that.
        """
        check_non_negative("working_set_bytes", working_set_bytes)
        if self.cache_speedup == 1.0:
            return 1.0
        ratio = working_set_bytes / self.cache_bytes
        if ratio <= 1.0:
            return self.cache_speedup
        if ratio >= 8.0:
            return 1.0
        # Linear interpolation in log2 space between fit (x1) and 8x (x0.0).
        t = (np.log2(ratio)) / 3.0
        return float(self.cache_speedup - t * (self.cache_speedup - 1.0))


@dataclass(frozen=True)
class NetworkModel:
    """Message-cost model with rack topology and uplink contention.

    Parameters
    ----------
    per_message_overhead:
        CPU seconds spent in the MPI library per message posted (the
        overhead the paper's send-buffer aggregation amortises).  This part
        cannot be overlapped with computation.
    intra_latency, inter_latency:
        One-way wire latency within a rack / across racks.
    intra_bandwidth, inter_bandwidth:
        Point-to-point link bandwidth (bytes/second) within / across racks.
    uplink_bandwidth:
        Aggregate bandwidth of one rack's uplink; all inter-rack traffic of
        a rack's nodes shares it.
    item_header_bytes:
        Per-item metadata carried in a message (index + bookkeeping).
    """

    per_message_overhead: float = 4.0e-6
    intra_latency: float = 2.0e-6
    inter_latency: float = 1.0e-5
    intra_bandwidth: float = 4.0e9
    inter_bandwidth: float = 1.2e9
    uplink_bandwidth: float = 6.0e9
    item_header_bytes: int = 8

    def __post_init__(self):
        for name in ("per_message_overhead", "intra_latency", "inter_latency"):
            check_non_negative(name, getattr(self, name))
        for name in ("intra_bandwidth", "inter_bandwidth", "uplink_bandwidth"):
            check_positive(name, getattr(self, name))
        check_non_negative("item_header_bytes", self.item_header_bytes)

    def latency(self, cluster: ClusterSpec, src: int, dst: int) -> float:
        return self.intra_latency if cluster.same_rack(src, dst) else self.inter_latency

    def bandwidth(self, cluster: ClusterSpec, src: int, dst: int) -> float:
        return self.intra_bandwidth if cluster.same_rack(src, dst) else self.inter_bandwidth

    def transfer_time(self, cluster: ClusterSpec, src: int, dst: int,
                      n_bytes: float) -> float:
        """Wire time of one message (excludes the CPU posting overhead)."""
        check_non_negative("n_bytes", n_bytes)
        return self.latency(cluster, src, dst) + n_bytes / self.bandwidth(cluster, src, dst)

    def message_bytes(self, n_items: int, num_latent: int,
                      value_bytes: int = 8) -> float:
        """Payload size of a buffer carrying ``n_items`` factor vectors."""
        check_non_negative("n_items", n_items)
        check_positive("num_latent", num_latent)
        return n_items * (num_latent * value_bytes + self.item_header_bytes)

    def allreduce_time(self, cluster: ClusterSpec, n_nodes: int,
                       n_bytes: float) -> float:
        """Recursive-doubling allreduce estimate (hyperparameter statistics)."""
        check_positive("n_nodes", n_nodes)
        if n_nodes == 1:
            return 0.0
        rounds = int(np.ceil(np.log2(n_nodes)))
        crosses_racks = cluster.n_racks(n_nodes) > 1
        latency = self.inter_latency if crosses_racks else self.intra_latency
        bandwidth = self.inter_bandwidth if crosses_racks else self.intra_bandwidth
        return rounds * (self.per_message_overhead + latency + n_bytes / bandwidth)

    def uplink_serialization(self, total_interrack_bytes_from_rack: float) -> float:
        """Extra time for a rack's inter-rack traffic to drain through its uplink."""
        check_non_negative("total_interrack_bytes_from_rack",
                           total_interrack_bytes_from_rack)
        return total_interrack_bytes_from_rack / self.uplink_bandwidth
