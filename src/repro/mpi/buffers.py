"""Send-buffer aggregation (Section IV-C of the paper).

*"the overhead of calling these routines is too much to individually send
each item ... Hence we store items that need to be sent in a temporary
buffer and only send when the buffer is full."*

:class:`SendBuffer` implements exactly that policy for one destination
rank: items are appended and a flush callback is invoked whenever the
buffer reaches its capacity (and once more at the end of the phase for the
remainder).  :class:`BufferStats` records how many messages and how many
items were sent, which is what the buffering ablation benchmark compares
against the one-message-per-item strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SendBuffer", "BufferStats"]


@dataclass
class BufferStats:
    """Counters describing the message traffic produced by one buffer."""

    n_items: int = 0
    n_messages: int = 0
    n_flushes_full: int = 0
    n_flushes_partial: int = 0

    @property
    def items_per_message(self) -> float:
        return self.n_items / self.n_messages if self.n_messages else 0.0

    def merge(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(
            n_items=self.n_items + other.n_items,
            n_messages=self.n_messages + other.n_messages,
            n_flushes_full=self.n_flushes_full + other.n_flushes_full,
            n_flushes_partial=self.n_flushes_partial + other.n_flushes_partial,
        )


class SendBuffer:
    """Aggregates per-item factor updates destined for one rank.

    Parameters
    ----------
    destination:
        Target rank (carried through to the flush callback).
    capacity:
        Number of items per message.  ``capacity=1`` degenerates to the
        unbuffered one-message-per-item scheme (the ablation baseline).
    num_latent:
        Factor dimension, used to pre-allocate the payload.
    on_flush:
        Callback ``(destination, item_ids, payload)`` invoked per message;
        typically :meth:`repro.mpi.simmpi.SimComm.isend`.
    """

    def __init__(self, destination: int, capacity: int, num_latent: int,
                 on_flush: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None):
        check_positive("capacity", capacity)
        check_positive("num_latent", num_latent)
        self.destination = destination
        self.capacity = capacity
        self.num_latent = num_latent
        self.on_flush = on_flush
        self.stats = BufferStats()
        self._ids: List[int] = []
        self._payload: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def empty(self) -> bool:
        return not self._ids

    def add(self, item_id: int, factor: np.ndarray) -> bool:
        """Append one item; flushes automatically when full.

        Returns ``True`` when the append triggered a flush.
        """
        factor = np.asarray(factor, dtype=np.float64)
        if factor.shape != (self.num_latent,):
            raise ValueError(
                f"factor must have shape ({self.num_latent},), got {factor.shape}")
        self._ids.append(int(item_id))
        self._payload.append(factor.copy())
        self.stats.n_items += 1
        if len(self._ids) >= self.capacity:
            self.flush(partial=False)
            return True
        return False

    def flush(self, partial: bool = True) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Emit the buffered items as one message; no-op when empty.

        Returns the ``(item_ids, payload)`` pair that was flushed (also
        handed to ``on_flush``), or ``None`` when there was nothing to send.
        """
        if not self._ids:
            return None
        ids = np.array(self._ids, dtype=np.int64)
        payload = np.vstack(self._payload)
        self._ids.clear()
        self._payload.clear()
        self.stats.n_messages += 1
        if partial:
            self.stats.n_flushes_partial += 1
        else:
            self.stats.n_flushes_full += 1
        if self.on_flush is not None:
            self.on_flush(self.destination, ids, payload)
        return ids, payload
