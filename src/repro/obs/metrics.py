"""A unified metrics registry for the serving fleet.

Three primitive kinds, all thread-safe and allocation-light:

* :class:`Counter` — monotonically increasing integer.
* :class:`Gauge` — a point-in-time value (queue depth, lag).
* :class:`Histogram` — fixed-bucket latency distribution.  Only the
  per-bucket counts (plus count/sum/min/max) are stored, so p50/p95/p99
  are derivable by linear interpolation inside the owning bucket without
  ever retaining samples — constant memory no matter how many requests
  cross it.

Metrics live in a :class:`MetricsRegistry` under dotted names
(``serving.server.queue_wait_ms``, ``wal.append.fsync_ms``), optionally
qualified by labels (``replica=0``) so one process-wide registry can
host a whole :class:`~repro.serving.net.replica.ReplicaSet` without
name collisions.  :data:`REGISTRY` is the process-wide default.

The nine pre-existing per-component ``stats()`` dicts are re-homed onto
this namespace by *provider registration*: a component registers its
``stats``/``metrics`` callable under a dotted prefix, and
:meth:`MetricsRegistry.snapshot` flattens whatever it returns (nested
dicts included) into dotted names next to the native metrics.  The flat
dicts themselves keep flowing through the ``stats``/``health`` frames
unchanged — they are the backwards-compatible aliases; the dotted view
is the normalized schema.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "REGISTRY", "LATENCY_BUCKETS_MS", "dotted_stats"]

#: Default histogram bucket upper bounds, in milliseconds: log-spaced
#: from 50 microseconds to 10 seconds.  Values above the last bound land
#: in an implicit overflow bucket whose percentile estimate is the
#: recorded maximum.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0)


class Counter:
    """A monotonically increasing integer (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += int(amount)

    @property
    def value(self) -> int:
        return self._value

    def snapshot_value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value; the last ``set`` wins (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value

    def snapshot_value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with sample-free percentile estimates.

    ``observe`` increments exactly one bucket count; ``percentile``
    walks the cumulative counts to the owning bucket and interpolates
    linearly between its bounds.  The estimate error is therefore
    bounded by the bucket width — the standard trade for O(buckets)
    memory — and the recorded min/max tighten the edge buckets.
    """

    __slots__ = ("_lock", "bounds", "_counts", "count", "total",
                 "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKETS_MS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._lock = threading.Lock()
        self.bounds = tuple(float(bound) for bound in bounds)
        # One extra slot: the overflow bucket past the last bound.
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                cumulative += bucket_count
                if cumulative >= target:
                    upper = (self.bounds[index]
                             if index < len(self.bounds) else self.max)
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    lower = max(lower, self.min if self.min is not None
                                else lower)
                    upper = min(upper, self.max if self.max is not None
                                else upper)
                    if upper <= lower:
                        return float(upper)
                    # Linear interpolation inside the owning bucket.
                    into = (target - (cumulative - bucket_count)) \
                        / bucket_count
                    return float(lower + (upper - lower) * into)
            return float(self.max)  # pragma: no cover - unreachable

    def snapshot_value(self) -> Dict[str, float]:
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
        return {
            "count": count,
            "sum": round(total, 6),
            "min": round(low, 6) if low is not None else None,
            "max": round(high, 6) if high is not None else None,
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
        }


def dotted_stats(prefix: str, flat: Dict[str, object]) -> Dict[str, object]:
    """Flatten one component's stats dict onto dotted metric names.

    Nested dicts recurse (``{"wal": {"appended": 3}}`` under prefix
    ``serving.service`` becomes ``serving.service.wal.appended``); lists
    and scalars pass through as values.
    """
    out: Dict[str, object] = {}
    for key, value in flat.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(dotted_stats(name, value))
        else:
            out[name] = value
    return out


def _render(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Dotted-name metric store plus stats-provider aggregation.

    ``counter``/``gauge``/``histogram`` get-or-create by ``(name,
    labels)`` — safe to call on a hot path, though callers that care
    hold onto the returned object instead.  ``register_provider`` binds
    a component's ``stats()``-style callable under a prefix; a second
    registration with the same ``(prefix, labels)`` replaces the first,
    which is exactly what a restarted replica wants.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                            object] = {}
        self._providers: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                              Callable[[], Dict[str, object]]] = {}

    @staticmethod
    def _labels(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted((str(key), str(value))
                            for key, value in labels.items()))

    def _get(self, name: str, factory, labels: Dict[str, object]):
        key = (str(name), self._labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        metric = self._get(name, Counter, labels)
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is not a counter")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        metric = self._get(name, Gauge, labels)
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is not a gauge")
        return metric

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = LATENCY_BUCKETS_MS,
                  **labels) -> Histogram:
        metric = self._get(name, lambda: Histogram(bounds), labels)
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is not a histogram")
        return metric

    def register_provider(self, prefix: str,
                          provider: Callable[[], Dict[str, object]],
                          **labels) -> None:
        """Surface a component's stats dict under ``prefix`` at snapshot
        time.  Same ``(prefix, labels)`` replaces — replica restarts
        re-register their fresh server/coordinator cleanly."""
        key = (str(prefix), self._labels(labels))
        with self._lock:
            self._providers[key] = provider

    def unregister_provider(self, prefix: str, **labels) -> None:
        key = (str(prefix), self._labels(labels))
        with self._lock:
            self._providers.pop(key, None)

    def snapshot(self) -> Dict[str, object]:
        """Every metric and provider value, flattened to rendered names.

        Rendered names are ``dotted.name`` or ``dotted.name{k=v,...}``
        with sorted labels; histogram values are their summary dicts.
        Providers that raise are skipped — a half-torn-down component
        must never poison the whole snapshot.
        """
        with self._lock:
            metrics = list(self._metrics.items())
            providers = list(self._providers.items())
        out: Dict[str, object] = {}
        for (name, labels), metric in metrics:
            out[_render(name, labels)] = metric.snapshot_value()
        for (prefix, labels), provider in providers:
            try:
                flat = provider()
            except Exception:  # noqa: BLE001 - snapshot must stay total
                continue
            if not isinstance(flat, dict):
                continue
            for name, value in dotted_stats(prefix, flat).items():
                out[_render(name, labels)] = value
        return out

    def names(self) -> List[str]:
        """Rendered names of every registered metric (not providers)."""
        with self._lock:
            return sorted(_render(name, labels)
                          for name, labels in self._metrics)


#: The process-wide default registry.  Components take a ``registry``
#: argument and fall back to this, so scripts that never wire one still
#: get a single unified namespace.
REGISTRY = MetricsRegistry()
